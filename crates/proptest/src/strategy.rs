//! Value-generation strategies: ranges, tuples, `Just`, and `prop_map`.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// This subset generates directly (no shrinking): `generate` draws one
/// value from the strategy's distribution using the case RNG.
pub trait Strategy {
    /// The generated type (must be `Debug` so failures can report it).
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `map` to every generated value.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // For floats the half-open draw is indistinguishable in practice.
        rng.uniform_f64(*self.start(), *self.end())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range");
                    let span = (hi - lo) as u64;
                    (lo + rng.uniform_u64(0, span) as i128) as $t
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.uniform_u64(0, span) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = TestRng::for_case("cover", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = (3u64..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all of 3..7 should appear: {seen:?}");
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = TestRng::for_case("signed", 0);
        for _ in 0..100 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(42u64).generate(&mut rng), 42);
    }
}
