//! # proptest (in-tree subset)
//!
//! A dependency-free, offline-compatible implementation of the slice of
//! the [proptest](https://docs.rs/proptest) API this workspace uses:
//! range and tuple strategies, `prop_map`, `prop::collection::vec`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream are deliberate and small:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; cases are seeded deterministically per (test, case index)
//!   so every failure replays exactly under `cargo test`.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * **No `any::<T>()` / `prop_oneof!`** — the workspace's strategies are
//!   ranges, tuples and vectors, so only those are implemented.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current property case unless `cond` holds.
///
/// Unlike `assert!`, the failure is reported through the proptest runner
/// together with the generated inputs of the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares property-based tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` inside the example is the macro's actual calling
// convention, not a stray unit test.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(stringify!($name), |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        __proptest_rng,
                    );
                )*
                let __proptest_inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", $arg));
                        s.push_str("; ");
                    )*
                    s
                };
                let result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                result.map_err(|e| e.with_inputs(&__proptest_inputs))
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.0, n in 3u64..17, k in 0usize..5) {
            prop_assert!((1.5..9.0).contains(&x));
            prop_assert!((3..17).contains(&n));
            prop_assert!(k < 5);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0.0f64..1.0, 10u64..20).prop_map(|(f, u)| f + u as f64),
        ) {
            prop_assert!((10.0..21.0).contains(&pair));
        }

        #[test]
        fn vec_strategy_respects_length(values in prop::collection::vec(-1.0f64..1.0, 2..10)) {
            prop_assert!(values.len() >= 2 && values.len() < 10);
            for v in &values {
                prop_assert!((-1.0..1.0).contains(v), "out of range: {v}");
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strategy = (0.0f64..1.0, 0u64..100);
        let mut a = TestRng::for_case("seed", 7);
        let mut b = TestRng::for_case("seed", 7);
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        let mut c = TestRng::for_case("seed", 8);
        assert_ne!(strategy.generate(&mut a), strategy.generate(&mut c));
    }

    #[test]
    #[should_panic(expected = "x was")]
    fn failures_panic_with_inputs() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |rng| {
            let x = crate::strategy::Strategy::generate(&(0u64..10), rng);
            let body = move || -> Result<(), TestCaseError> {
                prop_assert!(x > 100, "x was {x}");
                Ok(())
            };
            body()
        });
    }
}
