//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for generated collections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    #[allow(clippy::expect_used)] // drawn value is bounded by a usize range
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            usize::try_from(rng.uniform_u64(self.min as u64, self.max as u64))
                .expect("length fits usize")
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn fixed_length_vectors() {
        let mut rng = TestRng::for_case("fixed", 0);
        let v = vec(0.0f64..1.0, 5).generate(&mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn ranged_length_vectors() {
        let mut rng = TestRng::for_case("ranged", 0);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..100 {
            let v = vec(0u64..10, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            lens.insert(v.len());
        }
        assert_eq!(lens.len(), 3);
    }
}
