//! The case runner: configuration, deterministic RNG, and failure type.

use std::fmt;

/// Configuration of a property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the payload is the rendered message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Attaches the generated inputs of the failing case to the message.
    #[must_use]
    pub fn with_inputs(self, inputs: &str) -> Self {
        let TestCaseError::Fail(message) = self;
        if inputs.is_empty() {
            TestCaseError::Fail(message)
        } else {
            TestCaseError::Fail(format!("{message}\n  inputs: {inputs}"))
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let TestCaseError::Fail(message) = self;
        f.write_str(message)
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic generator (splitmix64) for case inputs.
///
/// Each case is seeded from the test name and case index, so a failing
/// case replays identically on the next `cargo test` run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one `(test name, case index)` pair.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // One warm-up step decorrelates adjacent case indices.
        rng.next_u64();
        rng
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }
}

/// Runs every case of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `case` once per configured case with a per-case RNG.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting the case index and the
    /// failure message (which includes the generated inputs).
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for index in 0..self.config.cases {
            let mut rng = TestRng::for_case(name, index);
            if let Err(error) = case(&mut rng) {
                panic!(
                    "proptest case {index}/{total} of `{name}` failed: {error}",
                    total = self.config.cases,
                );
            }
        }
    }
}
