//! Regenerates the corresponding paper study (trains the pipeline first;
//! pass --quick for a reduced training grid).
use dora_experiments::pipeline::{Pipeline, Scale};
fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pipeline = Pipeline::build(scale, 42);
    println!(
        "{}",
        dora_experiments::model_selection::run(&pipeline).render()
    );
}
