//! Regenerates Fig. 3 (load time and PPW vs frequency; fD/fE regimes).
fn main() {
    let config = dora_campaign::ScenarioConfig::default();
    println!("{}", dora_experiments::fig03::run(&config).render());
}
