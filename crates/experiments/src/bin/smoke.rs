//! End-to-end smoke run: quick-train DORA, then compare it with the
//! interactive baseline on a handful of workloads.

// Smoke binary fails fast by design; budgeted under [panic-budget] in
// xtask/xtask.toml.
#![allow(clippy::expect_used)]

use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::{Policy, Subset};
use dora_campaign::workload::WorkloadSet;
use dora_experiments::Pipeline;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let pipeline = if full {
        Pipeline::full()
    } else {
        Pipeline::quick()
    };
    println!(
        "trained on {} observations; leakage points: {}",
        pipeline.observations.len(),
        pipeline.leakage_observations.len()
    );
    let eval = dora::trainer::evaluate_models(&pipeline.models, &pipeline.observations);
    println!(
        "train-set MAPE: time {:.2}% power {:.2}%",
        eval.load_time.mape * 100.0,
        eval.power.mape * 100.0
    );

    let all = WorkloadSet::paper54();
    let subset = WorkloadSet::from_workloads(
        ["Amazon", "MSN", "ESPN", "IMDB", "Alibaba", "Imgur"]
            .iter()
            .flat_map(|p| {
                all.workloads()
                    .iter()
                    .filter(move |w| w.page.name == *p)
                    .cloned()
            })
            .collect(),
    );
    let policies = [
        Policy::Interactive,
        Policy::Performance,
        Policy::Dora,
        Policy::DeadlineOnly,
        Policy::EnergyOnly,
    ];
    let result = CampaignDriver::new()
        .executor(pipeline.executor)
        .evaluate(
            &subset,
            &policies,
            Some(&pipeline.models),
            &pipeline.scenario,
        )
        .expect("models provided");
    for p in &policies {
        let name = p.name();
        println!(
            "{:<12} mean nPPW {:.3}  deadline-met {:.0}%",
            name,
            result.mean_normalized_ppw(name, "interactive", Subset::All),
            result.deadline_met_fraction(name) * 100.0
        );
    }
    for r in result.results_for("DORA") {
        println!(
            "  DORA {:<22} t={:.2}s P={:.2}W ppw={:.4} met={} switches={} fmean={:.2}GHz",
            r.workload_id,
            r.load_time.value(),
            r.mean_power.value(),
            r.ppw.value(),
            r.met_deadline,
            r.switches,
            r.mean_frequency.as_ghz()
        );
    }
}
