//! Runs the generalization experiment on synthesized pages (trains the
//! pipeline first; pass --quick for a reduced grid).
use dora_experiments::pipeline::{Pipeline, Scale};
fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pipeline = Pipeline::build(scale, 42);
    println!(
        "{}",
        dora_experiments::generalization::run(&pipeline).render()
    );
}
