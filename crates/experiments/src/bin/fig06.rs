//! Regenerates the corresponding paper exhibit (trains the pipeline first;
//! pass --quick for a reduced training grid).
use dora_experiments::pipeline::{Pipeline, Scale};
fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let pipeline = Pipeline::build(scale, 42);
    println!(
        "{}",
        dora_experiments::fig06::run(&pipeline, &pipeline.scenario).render()
    );
}
