//! Regenerates Table III (page and co-runner classification).
fn main() {
    let config = dora_experiments::table03::default_config();
    println!("{}", dora_experiments::table03::run(&config).render());
}
