//! Regenerates every table and figure of the paper in one run and writes
//! the combined report to stdout (tee it into `EXPERIMENTS.md`'s measured
//! section). Pass `--quick` for a reduced training grid.

// The driver reports wall-clock elapsed time for the whole run; this is
// host-side reporting, not simulation state.
#![allow(clippy::disallowed_methods)]

use dora_experiments::pipeline::{Pipeline, Scale};
use std::time::Instant;

fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let t0 = Instant::now();
    eprintln!("[all] training pipeline ({scale:?})...");
    let pipeline = Pipeline::build(scale, 42);
    eprintln!(
        "[all] trained on {} observations in {:.1}s",
        pipeline.observations.len(),
        t0.elapsed().as_secs_f64()
    );

    banner("Table II");
    println!(
        "{}",
        dora_experiments::table02::run(&pipeline.scenario.board).render()
    );

    banner("Table III");
    println!(
        "{}",
        dora_experiments::table03::run(&dora_experiments::table03::default_config()).render()
    );

    banner("Fig. 1");
    println!(
        "{}",
        dora_experiments::fig01::run(&pipeline.scenario).render()
    );

    banner("Fig. 2");
    println!(
        "{}",
        dora_experiments::fig02::run(&pipeline.scenario).render()
    );

    banner("Fig. 3");
    println!(
        "{}",
        dora_experiments::fig03::run(&pipeline.scenario).render()
    );

    banner("Fig. 5");
    println!("{}", dora_experiments::fig05::run(&pipeline).render());

    banner("Fig. 6");
    println!(
        "{}",
        dora_experiments::fig06::run(&pipeline, &pipeline.scenario).render()
    );

    banner("Fig. 7");
    println!("{}", dora_experiments::fig07::run(&pipeline).render());

    banner("Fig. 8");
    println!("{}", dora_experiments::fig08::run(&pipeline).render());

    banner("Fig. 9");
    println!("{}", dora_experiments::fig09::run(&pipeline).render());

    banner("Fig. 10");
    println!("{}", dora_experiments::fig10::run(&pipeline).render());

    banner("Fig. 11");
    println!("{}", dora_experiments::fig11::run(&pipeline).render());

    banner("Section V-A (model selection)");
    println!(
        "{}",
        dora_experiments::model_selection::run(&pipeline).render()
    );

    banner("Section IV-C (decision interval)");
    let study = dora_experiments::interval_study::run(&pipeline);
    println!("{}", study.render());
    let adaptation = dora_experiments::interval_study::run_adaptation(&pipeline);
    println!(
        "{}",
        dora_experiments::interval_study::IntervalStudy::render_adaptation(&adaptation)
    );

    banner("Section V-H (overhead)");
    println!("{}", dora_experiments::overhead::run(&pipeline).render());

    banner("Beyond the paper: design-choice ablations");
    println!("{}", dora_experiments::ablation::run(&pipeline).render());

    banner("Beyond the paper: generalization to unseen pages");
    println!(
        "{}",
        dora_experiments::generalization::run(&pipeline).render()
    );

    eprintln!(
        "[all] complete in {:.1}s wall clock",
        t0.elapsed().as_secs_f64()
    );
}
