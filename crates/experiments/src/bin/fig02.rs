//! Regenerates Fig. 2 (interference cost in load time and energy).
fn main() {
    let config = dora_campaign::ScenarioConfig::default();
    println!("{}", dora_experiments::fig02::run(&config).render());
}
