//! Regenerates Table II (device specification).
fn main() {
    let config = dora_soc::BoardConfig::nexus5();
    println!("{}", dora_experiments::table02::run(&config).render());
}
