//! Regenerates Table II (device specification).
fn main() {
    let config = dora_soc::SocProfile::msm8974().board_config();
    println!("{}", dora_experiments::table02::run(&config).render());
}
