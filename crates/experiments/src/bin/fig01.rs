//! Regenerates Fig. 1 (Reddit load time vs frequency under interference).
fn main() {
    let config = dora_campaign::ScenarioConfig::default();
    println!("{}", dora_experiments::fig01::run(&config).render());
}
