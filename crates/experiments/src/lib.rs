//! # dora-experiments
//!
//! Regenerators for every table and figure in the DORA paper's evaluation.
//!
//! Each `figNN`/`tableNN` module computes the data behind the
//! corresponding exhibit and renders it as aligned ASCII rows/series —
//! the same numbers the paper plots, modulo the simulator substrate. Each
//! module also has a matching binary (`cargo run --release -p
//! dora-experiments --bin figNN`), and `--bin all` regenerates the whole
//! evaluation and writes the measured columns of `EXPERIMENTS.md`.
//!
//! The [`pipeline`] module owns the shared heavy lifting: the offline
//! training campaign (Section IV-C) producing the [`dora::DoraModels`]
//! bundle that every DORA-family experiment uses.
//!
//! | Module | Paper exhibit |
//! |---|---|
//! | [`fig01`] | Fig. 1 — Reddit load time vs frequency under interference |
//! | [`fig02`] | Fig. 2 — load time & energy cost vs co-runner intensity |
//! | [`fig03`] | Fig. 3 — load time + PPW vs frequency (ESPN, MSN) |
//! | [`table02`] | Table II — device specification |
//! | [`table03`] | Table III — page & co-runner classification |
//! | [`fig05`] | Fig. 5 — model error CDFs |
//! | [`fig06`] | Fig. 6 — PPW sensitivity around fopt (Youtube+high) |
//! | [`fig07`] | Fig. 7 — mean PPW & load-time CDF per governor |
//! | [`fig08`] | Fig. 8 — per-workload normalized PPW, 7 governors |
//! | [`fig09`] | Fig. 9 — Amazon/IMDB drill-down across intensities |
//! | [`fig10`] | Fig. 10 — leakage ablation & ambient sweep |
//! | [`fig11`] | Fig. 11 — fopt vs deadline (MSN+high) |
//! | [`overhead`] | Section V-H — governor overhead accounting |
//! | [`interval_study`] | Section IV-C — 50/100/250 ms decision cadences |
//! | [`model_selection`] | Section V-A — Eq. 2/3/4 surface comparison |
//! | [`ablation`] | this reproduction's own design-choice ablations |
//! | [`generalization`] | DORA on synthesized never-seen pages |

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Burn-down: exhibit regenerators still unwrap/expect on documented pipeline
// invariants; each file is budgeted under [panic-budget] in xtask/xtask.toml
// and the budget only ratchets down.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod generalization;
pub mod interval_study;
pub mod model_selection;
pub mod overhead;
pub mod pipeline;
pub mod report;
pub mod table02;
pub mod table03;

pub use pipeline::Pipeline;
