//! Fig. 7 — headline comparison: energy efficiency and load-time CDF.
//!
//! (a) Mean PPW normalized to `interactive` for `performance`, `DL`,
//! `EE` and `DORA` over the Webpage-Inclusive, Webpage-Neutral and
//! combined workload sets. Paper: DORA +16 % overall (+18 % inclusive,
//! +10 % neutral); EE +19 % but with QoS violations.
//!
//! (b) The load-time CDF per governor against the 3 s deadline. Paper:
//! EE leaves ~21 % of workloads past the deadline (up to 6 s); DORA
//! tracks the feasible frontier.
//!
//! Also reproduces footnote 8's `Offline_opt` spot check on ten
//! workloads, and the Section V-C headline numbers.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, fmt_gain, render_series, Table};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::{Evaluation, Policy, Subset};
use dora_campaign::workload::WorkloadSet;
use dora_sim_core::Rng;

/// The Fig. 7 dataset.
#[derive(Debug, Clone)]
pub struct Fig07 {
    /// The full five-governor evaluation over all 54 workloads.
    pub evaluation: Evaluation,
    /// `Offline_opt` spot check: (workload id, offline PPW / DORA PPW).
    pub offline_check: Vec<(String, f64)>,
}

/// The governors panel (a) compares, baseline first.
pub const GOVERNORS: [&str; 5] = ["interactive", "performance", "DL", "EE", "DORA"];

/// Runs the full evaluation.
///
/// # Panics
///
/// Panics on internal policy errors (models are always supplied here).
pub fn run(pipeline: &Pipeline) -> Fig07 {
    let driver = CampaignDriver::new().executor(pipeline.executor);
    let evaluation = driver
        .evaluate(
            &pipeline.workloads,
            &Policy::FIG7,
            Some(&pipeline.models),
            &pipeline.scenario,
        )
        .expect("models supplied");

    // Footnote 8: Offline_opt enumerated for ten randomly chosen
    // workloads (the full enumeration is what the authors call
    // "prohibitively high"; here it is merely slow).
    let mut rng = Rng::seed_from_u64(pipeline.scenario.seed ^ 0x0FF1);
    let mut indices: Vec<usize> = (0..pipeline.workloads.len()).collect();
    rng.shuffle(&mut indices);
    let ten = WorkloadSet::from_workloads(
        indices[..10]
            .iter()
            .map(|&i| pipeline.workloads.workloads()[i].clone())
            .collect(),
    );
    let spot = driver
        .evaluate(
            &ten,
            &[Policy::OfflineOpt, Policy::Dora],
            Some(&pipeline.models),
            &pipeline.scenario,
        )
        .expect("models supplied");
    let offline_check = spot
        .results_for("DORA")
        .iter()
        .map(|d| {
            let o = spot
                .results_for("offline_opt")
                .iter()
                .find(|o| o.workload_id == d.workload_id)
                .expect("same workloads")
                .ppw;
            (d.workload_id.clone(), o.value() / d.ppw.value())
        })
        .collect();

    Fig07 {
        evaluation,
        offline_check,
    }
}

impl Fig07 {
    /// Panel (a): mean normalized PPW per governor and subset.
    pub fn panel_a(&self) -> Vec<(String, f64, f64, f64)> {
        GOVERNORS
            .iter()
            .map(|g| {
                (
                    (*g).to_string(),
                    self.evaluation
                        .mean_normalized_ppw(g, "interactive", Subset::Inclusive),
                    self.evaluation
                        .mean_normalized_ppw(g, "interactive", Subset::Neutral),
                    self.evaluation
                        .mean_normalized_ppw(g, "interactive", Subset::All),
                )
            })
            .collect()
    }

    /// The Section V-C headlines: (mean DORA gain, max DORA gain,
    /// deadline-feasibility fraction of the performance governor, DORA's
    /// deadline-met fraction).
    pub fn headlines(&self) -> (f64, f64, f64, f64) {
        let ratios = self.evaluation.normalized_ppw("DORA", "interactive");
        let mean = ratios.iter().map(|(_, r)| r).sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().map(|(_, r)| *r).fold(0.0, f64::max);
        (
            mean - 1.0,
            max - 1.0,
            self.evaluation.deadline_met_fraction("performance"),
            self.evaluation.deadline_met_fraction("DORA"),
        )
    }

    /// Renders both panels, the offline spot check, and CDF series.
    pub fn render(&self) -> String {
        let mut a = Table::new(vec![
            "Governor".into(),
            "inclusive".into(),
            "neutral".into(),
            "all".into(),
        ]);
        for (g, inc, neu, all) in self.panel_a() {
            a.row(vec![g, fmt_gain(inc), fmt_gain(neu), fmt_gain(all)]);
        }
        let mut b = Table::new(vec![
            "Governor".into(),
            "met 3s (%)".into(),
            "median load (s)".into(),
            "p90 load (s)".into(),
            "max load (s)".into(),
        ]);
        let mut series = String::new();
        for g in GOVERNORS {
            let samples = self.evaluation.load_time_samples(g);
            b.row(vec![
                g.to_string(),
                fmt_f(self.evaluation.deadline_met_fraction(g) * 100.0, 1),
                fmt_f(samples.quantile(0.5), 2),
                fmt_f(samples.quantile(0.9), 2),
                fmt_f(samples.quantile(1.0), 2),
            ]);
            series.push_str(&render_series(
                &format!("{g}_load_time_cdf"),
                &samples.cdf_points(),
            ));
        }
        let mut spot = Table::new(vec!["Workload".into(), "offline_opt PPW / DORA PPW".into()]);
        for (id, ratio) in &self.offline_check {
            spot.row(vec![id.clone(), fmt_f(*ratio, 3)]);
        }
        let (mean, max, perf_met, dora_met) = self.headlines();
        format!(
            "Fig. 7(a): mean energy efficiency vs interactive\n{}\n\
             Fig. 7(b): load-time distribution (3s deadline)\n{}\n\
             Offline_opt spot check (10 workloads, footnote 8)\n{}\n\
             headlines: DORA mean {} / max {} vs interactive; \
             deadline feasible under performance: {}%; DORA meets: {}%\n\n{}",
            a.render(),
            b.render(),
            spot.render(),
            fmt_gain(1.0 + mean),
            fmt_gain(1.0 + max),
            fmt_f(perf_met * 100.0, 1),
            fmt_f(dora_met * 100.0, 1),
            series,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "full 54-workload x 5-governor evaluation; exercised by the fig07 binary"]
    fn reproduces_fig7_shape() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline);
        let (mean, max, perf_met, dora_met) = fig.headlines();
        // Paper band: +16% average (we accept 8-30%), up to +35%.
        assert!(mean > 0.08 && mean < 0.35, "mean gain {mean:.3}");
        assert!(max > mean, "max gain {max:.3}");
        // DORA meets the deadline essentially whenever performance does.
        assert!(dora_met >= perf_met - 0.06, "{dora_met} vs {perf_met}");
        // EE beats DORA on PPW but violates deadlines.
        let ee = fig
            .evaluation
            .mean_normalized_ppw("EE", "interactive", Subset::All);
        assert!(ee >= 1.0 + mean - 0.02);
        assert!(fig.evaluation.deadline_met_fraction("EE") < dora_met);
        // Offline-opt never hugely exceeds DORA (paper: DORA matches it).
        for (id, ratio) in &fig.offline_check {
            assert!(*ratio < 1.25, "{id}: offline/DORA = {ratio:.3}");
        }
    }
}
