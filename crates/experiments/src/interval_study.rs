//! Section IV-C — the decision-interval study.
//!
//! "For DORA's decision making granularity, we evaluate three decision
//! intervals of 50ms, 100ms, and 250ms. We observe that while 250ms is
//! too slow to capture web page phases, 50ms and 100ms decision intervals
//! perform similarly. Therefore, we choose the less intrusive 100ms
//! decision interval for DORA."
//!
//! This module reruns that sweep: DORA at each cadence over a
//! representative workload slice, reporting mean PPW (normalized to
//! `interactive`), deadline behaviour and switch counts.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, fmt_gain, Table};
use dora::{DoraConfig, DoraGovernor};
use dora_campaign::runner::run_scenario;
use dora_campaign::workload::WorkloadSet;
use dora_governors::InteractiveGovernor;
use dora_sim_core::SimDuration;

/// One cadence's aggregate outcome.
#[derive(Debug, Clone)]
pub struct IntervalRow {
    /// The decision interval.
    pub interval: SimDuration,
    /// Mean PPW normalized to `interactive` over the slice.
    pub mean_nppw: f64,
    /// Fraction of workloads meeting the 3 s deadline.
    pub met_fraction: f64,
    /// Mean DVFS switches per load.
    pub mean_switches: f64,
    /// Mean load time, seconds.
    pub mean_load_s: f64,
}

/// The study dataset.
#[derive(Debug, Clone)]
pub struct IntervalStudy {
    /// One row per cadence (50, 100, 250 ms).
    pub rows: Vec<IntervalRow>,
    /// Number of workloads in the evaluation slice.
    pub workloads: usize,
}

/// The pages of the evaluation slice: a complexity spread, both splits.
const SLICE_PAGES: [&str; 4] = ["Amazon", "Reddit", "ESPN", "IMDB"];

/// Runs the study.
pub fn run(pipeline: &Pipeline) -> IntervalStudy {
    let all = WorkloadSet::paper54();
    let slice: Vec<_> = all
        .workloads()
        .iter()
        .filter(|w| SLICE_PAGES.contains(&w.page.name))
        .cloned()
        .collect();
    let config = &pipeline.scenario;

    // Baseline per workload.
    let baseline: Vec<f64> = slice
        .iter()
        .map(|w| {
            let mut g = InteractiveGovernor::new(config.board.dvfs.clone());
            run_scenario(w, &mut g, config).ppw.value()
        })
        .collect();

    let rows = [50u64, 100, 250]
        .iter()
        .map(|&ms| {
            let interval = SimDuration::from_millis(ms);
            let mut ratios = Vec::new();
            let mut met = 0usize;
            let mut switches = 0u64;
            let mut load_total = 0.0;
            for (w, &base) in slice.iter().zip(&baseline) {
                let mut governor = DoraGovernor::new(
                    pipeline.models.clone(),
                    w.page.features,
                    DoraConfig {
                        decision_interval: interval,
                        ..DoraConfig::default()
                    },
                );
                let r = run_scenario(w, &mut governor, config);
                ratios.push(r.ppw.value() / base);
                met += usize::from(r.met_deadline);
                switches += r.switches;
                load_total += r.load_time.value();
            }
            IntervalRow {
                interval,
                mean_nppw: ratios.iter().sum::<f64>() / ratios.len() as f64,
                met_fraction: met as f64 / slice.len() as f64,
                mean_switches: switches as f64 / slice.len() as f64,
                mean_load_s: load_total / slice.len() as f64,
            }
        })
        .collect();
    IntervalStudy {
        rows,
        workloads: slice.len(),
    }
}

/// One cadence's outcome under *dynamic* interference: the co-runner
/// switches from a low- to a high-intensity kernel mid-load, so a slower
/// decision cadence reacts later to the MPKI jump (Section V-D's
/// "adaptive nature of DORA").
#[derive(Debug, Clone)]
pub struct AdaptationRow {
    /// The decision interval.
    pub interval: SimDuration,
    /// Load time of the page across the interference step, seconds.
    pub load_time_s: f64,
    /// DVFS switches during the load.
    pub switches: u64,
    /// Mean frequency over the load, GHz.
    pub mean_freq_ghz: f64,
}

/// Runs the dynamic-interference probe: MSN loading while the co-runner
/// steps from `kmeans` (low) to `backprop` (high) 0.6 s into the load,
/// under a 2.5 s deadline that the post-step conditions make tight.
pub fn run_adaptation(pipeline: &Pipeline) -> Vec<AdaptationRow> {
    use dora_browser::engine::RenderEngine;
    use dora_coworkloads::Kernel;
    use dora_governors::{Governor, GovernorObservation};
    use dora_soc::board::Board;

    let catalog = dora_browser::Catalog::alexa18();
    let page = catalog.page("MSN").expect("MSN in catalog");
    let [low, _, high] = Kernel::representatives();
    let config = &pipeline.scenario;
    let step_at = SimDuration::from_millis(600);

    [50u64, 100, 250]
        .iter()
        .map(|&ms| {
            let interval = SimDuration::from_millis(ms);
            let mut governor = DoraGovernor::new(
                pipeline.models.clone(),
                page.features,
                DoraConfig {
                    qos_target: dora::units::Seconds::new(2.5),
                    decision_interval: interval,
                    ..DoraConfig::default()
                },
            );
            let mut board = Board::new(config.board.clone(), config.seed);
            board
                .assign(2, Box::new(low.spawn(config.seed)))
                .expect("fresh board");
            // Thermal/hysteresis warm-up at the governor's own cadence.
            let engine = RenderEngine::default();
            let job = engine.spawn(page, config.seed);
            board.step(config.warmup);
            board.assign(0, Box::new(job.main)).expect("core 0 free");
            board.assign(1, Box::new(job.aux)).expect("core 1 free");

            let t0 = board.time();
            let switches0 = board.switch_count();
            let mut snap = board.counter_set().snapshot();
            let mut next_decision = board.time() + interval;
            let mut swapped = false;
            let mut freq_integral = 0.0;
            let mut elapsed = 0.0;
            let quantum = board.config().quantum;
            while !board.task_finished(0)
                && board.time().duration_since(t0) < SimDuration::from_secs(30)
            {
                if !swapped && board.time().duration_since(t0) >= step_at {
                    board.clear_core(2).expect("core 2 exists");
                    board
                        .assign(2, Box::new(high.spawn(config.seed)))
                        .expect("core 2 cleared");
                    swapped = true;
                }
                freq_integral += board.frequency().as_ghz() * quantum.as_secs_f64();
                elapsed += quantum.as_secs_f64();
                board.step(quantum);
                if board.time() >= next_decision {
                    let now = board.counter_set().snapshot();
                    let delta = now.delta(&snap);
                    snap = now;
                    let utilization: Vec<_> = delta
                        .cores()
                        .iter()
                        .map(dora_soc::counters::CoreCounters::utilization)
                        .collect();
                    let obs = GovernorObservation {
                        now: board.time(),
                        interval,
                        frequency: board.frequency(),
                        cluster: 0,
                        per_core_utilization: utilization,
                        shared_l2_mpki: delta.shared_l2_mpki(),
                        corun_utilization: delta.core(2).utilization(),
                        temperature: board.temperature(),
                    };
                    let f = governor.decide(&obs);
                    board.set_frequency(f).expect("table frequency");
                    next_decision = board.time() + interval;
                }
            }
            let load_time_s = board
                .finish_time(0)
                .map_or(30.0, |t| t.duration_since(t0).as_secs_f64());
            AdaptationRow {
                interval,
                load_time_s,
                switches: board.switch_count() - switches0,
                mean_freq_ghz: if elapsed > 0.0 {
                    freq_integral / elapsed
                } else {
                    board.frequency().as_ghz()
                },
            }
        })
        .collect()
}

impl IntervalStudy {
    /// Renders the study table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Interval".into(),
            "PPW vs interactive".into(),
            "met 3s (%)".into(),
            "mean load (s)".into(),
            "switches/load".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.interval.to_string(),
                fmt_gain(r.mean_nppw),
                fmt_f(r.met_fraction * 100.0, 1),
                fmt_f(r.mean_load_s, 2),
                fmt_f(r.mean_switches, 1),
            ]);
        }
        format!(
            "Section IV-C: decision-interval study ({} workloads)\n{}\
             expectation: 50ms ~ 100ms, 250ms lags (too slow for page phases)\n",
            self.workloads,
            t.render()
        )
    }

    /// Renders the dynamic-interference probe rows.
    pub fn render_adaptation(rows: &[AdaptationRow]) -> String {
        let mut t = Table::new(vec![
            "Interval".into(),
            "load (s)".into(),
            "switches".into(),
            "mean f (GHz)".into(),
        ]);
        for r in rows {
            t.row(vec![
                r.interval.to_string(),
                fmt_f(r.load_time_s, 3),
                r.switches.to_string(),
                fmt_f(r.mean_freq_ghz, 2),
            ]);
        }
        format!(
            "Section V-D probe: co-runner steps low->high 0.6s into the load\n{}",
            t.render()
        )
    }

    /// The paper's conclusion as a predicate: 100 ms within a small margin
    /// of 50 ms, and at least as good as 250 ms.
    pub fn hundred_ms_is_the_sweet_spot(&self) -> bool {
        let at = |ms: u64| {
            self.rows
                .iter()
                .find(|r| r.interval == SimDuration::from_millis(ms))
                .expect("all three cadences present")
        };
        let fast = at(50);
        let medium = at(100);
        let slow = at(250);
        medium.mean_nppw > fast.mean_nppw - 0.03 && medium.mean_nppw >= slow.mean_nppw - 0.01
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "needs the trained pipeline; exercised by the interval_study binary"]
    fn hundred_ms_holds_up() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let study = run(&pipeline);
        assert_eq!(study.rows.len(), 3);
        assert!(study.hundred_ms_is_the_sweet_spot(), "{:#?}", study.rows);
        // All cadences stay deadline-correct on this (feasible) slice.
        for r in &study.rows {
            assert!(r.met_fraction > 0.6, "{r:?}");
        }
        // Under dynamic interference the slow cadence reacts late and the
        // load stretches (the paper's "250ms is too slow" observation).
        let adaptation = run_adaptation(&pipeline);
        assert_eq!(adaptation.len(), 3);
        let fast = adaptation[0].load_time_s;
        let slow = adaptation[2].load_time_s;
        assert!(
            slow > fast + 0.05,
            "250ms should lag 50ms: {fast:.3}s vs {slow:.3}s"
        );
        // 100ms performs like 50ms (the paper's pick).
        assert!(
            (adaptation[1].load_time_s - fast).abs() < 0.15,
            "{adaptation:#?}"
        );
    }
}
