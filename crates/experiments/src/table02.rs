//! Table II — device specification.
//!
//! Renders the simulated platform's specification in the paper's Table II
//! format, straight from the live `BoardConfig` so the document can never
//! drift from the code.

use crate::report::Table;
use dora_soc::board::BoardConfig;

/// The rendered specification rows.
#[derive(Debug, Clone)]
pub struct Table02 {
    rows: Vec<(String, String)>,
}

/// Builds Table II from a board configuration.
pub fn run(config: &BoardConfig) -> Table02 {
    let dvfs = &config.dvfs;
    let rows = vec![
        ("Platform".to_string(), config.name.clone()),
        (
            "Application Processor".to_string(),
            format!(
                "{}-core (simulated Krait-class, in-order timing model)",
                config.num_cores
            ),
        ),
        (
            "Cores enabled".to_string(),
            config
                .cores_enabled
                .iter()
                .enumerate()
                .map(|(i, &e)| format!("cpu{i}:{}", if e { "on" } else { "off" }))
                .collect::<Vec<_>>()
                .join(" "),
        ),
        (
            "L2 Unified Cache".to_string(),
            format!(
                "Shared {:.0}MB (occupancy-contention model)",
                config.l2_capacity_bytes / (1024.0 * 1024.0)
            ),
        ),
        (
            "Memory".to_string(),
            "LPDDR3 (3-tier bus: 200 / 460.8 / 800 MHz)".to_string(),
        ),
        (
            "DVFS settings".to_string(),
            format!(
                "{} settings, {:.0}MHz – {:.1}MHz",
                dvfs.len(),
                dvfs.min_frequency().as_mhz(),
                dvfs.max_frequency().as_mhz()
            ),
        ),
        (
            "Voltage range".to_string(),
            format!(
                "{:.3}V – {:.3}V",
                dvfs.opps()[0].voltage,
                dvfs.opps()[dvfs.len() - 1].voltage
            ),
        ),
        (
            "Platform power floor".to_string(),
            format!(
                "{:.2}W (display + rails)",
                config.power.platform_floor.value()
            ),
        ),
        (
            "Thermal".to_string(),
            format!(
                "lumped RC, R={:.0}K/W, tau={:.0}s, ambient {:.0}C",
                config.thermal.resistance_k_per_w,
                config.thermal.time_constant.value(),
                config.thermal.ambient.value()
            ),
        ),
        (
            "DVFS switch stall".to_string(),
            format!("{}", config.dvfs_switch_stall),
        ),
    ];
    Table02 { rows }
}

impl Table02 {
    /// The `(field, value)` rows.
    pub fn rows(&self) -> &[(String, String)] {
        &self.rows
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["Field".into(), "Value".into()]);
        for (k, v) in &self.rows {
            t.row(vec![k.clone(), v.clone()]);
        }
        format!("Table II: Device Specification (simulated)\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_paper_table2_shape() {
        let t = run(&dora_soc::SocProfile::msm8974().board_config());
        let text = t.render();
        assert!(text.contains("Nexus 5"));
        assert!(text.contains("14 settings"));
        assert!(text.contains("2265.6MHz"));
        assert!(text.contains("Shared 2MB"));
        assert!(text.contains("LPDDR3"));
        assert!(t.rows().len() >= 8);
    }
}
