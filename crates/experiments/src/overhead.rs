//! Section V-H — DORA's runtime overhead.
//!
//! Three cost sources: (1) periodic counter sampling, (2) computing
//! `fopt`, (3) the DVFS transition itself. The paper measures (1)+(2)
//! below 1 % and (3) up to 3 % of execution time. Here (3) is simulated
//! directly (the board stalls all cores for the configured switch
//! latency), and (1)+(2) are charged analytically: one Algorithm 1
//! evaluation is a 14-point model sweep, generously costed at 20 µs of
//! CPU per decision.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, Table};
use dora::{DoraConfig, DoraGovernor};
use dora_campaign::runner::run_scenario;
use dora_governors::Governor;

/// Charged CPU time per Algorithm 1 evaluation (seconds).
// paper: Section V-H — sampling + fopt computation measured below 1% of
// execution time; 20 µs per decision at the 20 ms interval charges ~0.1%,
// a deliberately generous stand-in for the measured cost.
pub const DECISION_COST_S: f64 = 20e-6;

/// One workload's overhead accounting.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload id.
    pub workload_id: String,
    /// Page load time under DORA, seconds.
    pub load_time_s: f64,
    /// Algorithm 1 evaluations during the load.
    pub decisions: u64,
    /// DVFS transitions during the load.
    pub switches: u64,
    /// Monitoring + decision overhead as a fraction of load time.
    pub decide_frac: f64,
    /// Switching overhead as a fraction of load time.
    pub switch_frac: f64,
}

/// The Section V-H dataset.
#[derive(Debug, Clone)]
pub struct Overhead {
    /// One row per measured workload.
    pub rows: Vec<OverheadRow>,
}

/// Measures DORA's overhead across all 54 workloads.
pub fn run(pipeline: &Pipeline) -> Overhead {
    let switch_stall_s = pipeline.scenario.board.dvfs_switch_stall.as_secs_f64();
    let rows = pipeline
        .workloads
        .workloads()
        .iter()
        .map(|w| {
            let mut governor = DoraGovernor::new(
                pipeline.models.clone(),
                w.page.features,
                DoraConfig::default(),
            );
            let before_decisions = governor.decision_count();
            let r = run_scenario(w, &mut governor, &pipeline.scenario);
            // The scenario includes warm-up decisions; count only the
            // measured window's share by prorating with wall time:
            // decisions fire at a fixed cadence, so load-window decisions
            // = load_time / interval.
            let _ = before_decisions;
            let interval_s = governor.decision_interval().as_secs_f64();
            let load_s = r.load_time.value();
            let decisions = (load_s / interval_s).ceil() as u64;
            OverheadRow {
                workload_id: r.workload_id.clone(),
                load_time_s: load_s,
                decisions,
                switches: r.switches,
                decide_frac: decisions as f64 * DECISION_COST_S / load_s,
                switch_frac: r.switches as f64 * switch_stall_s / load_s,
            }
        })
        .collect();
    Overhead { rows }
}

impl Overhead {
    /// `(mean, max)` of the monitoring+decision overhead fraction.
    pub fn decide_overhead(&self) -> (f64, f64) {
        let mean = self.rows.iter().map(|r| r.decide_frac).sum::<f64>() / self.rows.len() as f64;
        let max = self.rows.iter().map(|r| r.decide_frac).fold(0.0, f64::max);
        (mean, max)
    }

    /// `(mean, max)` of the switching overhead fraction.
    pub fn switch_overhead(&self) -> (f64, f64) {
        let mean = self.rows.iter().map(|r| r.switch_frac).sum::<f64>() / self.rows.len() as f64;
        let max = self.rows.iter().map(|r| r.switch_frac).fold(0.0, f64::max);
        (mean, max)
    }

    /// Renders the accounting.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Workload".into(),
            "load (s)".into(),
            "decisions".into(),
            "switches".into(),
            "decide (%)".into(),
            "switch (%)".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload_id.clone(),
                fmt_f(r.load_time_s, 2),
                r.decisions.to_string(),
                r.switches.to_string(),
                fmt_f(r.decide_frac * 100.0, 3),
                fmt_f(r.switch_frac * 100.0, 3),
            ]);
        }
        let (dm, dx) = self.decide_overhead();
        let (sm, sx) = self.switch_overhead();
        format!(
            "Section V-H: DORA overhead accounting\n{}\
             monitoring+decision: mean {}%, max {}% (paper: <1%)\n\
             frequency switching: mean {}%, max {}% (paper: up to 3%)\n",
            t.render(),
            fmt_f(dm * 100.0, 3),
            fmt_f(dx * 100.0, 3),
            fmt_f(sm * 100.0, 3),
            fmt_f(sx * 100.0, 3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "54 DORA runs; exercised by the overhead binary"]
    fn overheads_land_in_paper_bands() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let o = run(&pipeline);
        assert_eq!(o.rows.len(), 54);
        let (dm, dx) = o.decide_overhead();
        assert!(dm < 0.01, "decision overhead mean {dm:.4}");
        assert!(dx < 0.02, "decision overhead max {dx:.4}");
        let (sm, sx) = o.switch_overhead();
        assert!(sm < 0.01, "switch overhead mean {sm:.4}");
        assert!(sx < 0.05, "switch overhead max {sx:.4}");
    }
}
