//! Fig. 8 — per-workload energy efficiency, seven governors.
//!
//! Every workload's PPW under `interactive`, `performance`, the measured
//! static `fD`/`fE` pins, `DORA`, `DL` and `EE`, normalized to
//! `interactive` and sorted by DORA's improvement. The paper's reading:
//! for workloads where `fE ≥ fD` (easy deadlines) DORA rides the EE
//! frontier (+24 % on average); where `fE < fD` it pivots to DL's
//! deadline-first behaviour while EE blows through the deadline.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, Table};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::{Evaluation, Policy};
use dora_soc::Frequency;
use std::collections::BTreeMap;

/// One workload's row in the figure.
#[derive(Debug, Clone)]
pub struct Fig08Row {
    /// Workload id (`page+kernel`).
    pub workload_id: String,
    /// Normalized PPW per governor, keyed by governor name.
    pub normalized_ppw: BTreeMap<String, f64>,
    /// Whether the workload is in the `fE < fD` regime (deadline-bound).
    pub deadline_bound: bool,
}

/// The Fig. 8 dataset.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// Rows sorted ascending by DORA's normalized PPW (the paper's
    /// x-axis ordering).
    pub rows: Vec<Fig08Row>,
    /// The evaluation behind the rows.
    pub evaluation: Evaluation,
}

/// The seven governors of the figure (baseline first).
pub const GOVERNORS: [&str; 7] = ["interactive", "performance", "fD", "fE", "DORA", "DL", "EE"];

/// Runs the evaluation and assembles the sorted rows.
///
/// # Panics
///
/// Panics on internal policy errors (models are always supplied here).
pub fn run(pipeline: &Pipeline) -> Fig08 {
    let evaluation = CampaignDriver::new()
        .executor(pipeline.executor)
        .evaluate(
            &pipeline.workloads,
            &Policy::FIG8,
            Some(&pipeline.models),
            &pipeline.scenario,
        )
        .expect("models supplied");

    let base: BTreeMap<String, f64> = evaluation
        .results_for("interactive")
        .iter()
        .map(|r| (r.workload_id.clone(), r.ppw.value()))
        .collect();
    let mut rows: Vec<Fig08Row> = pipeline
        .workloads
        .workloads()
        .iter()
        .map(|w| {
            let id = w.id();
            let mut normalized_ppw = BTreeMap::new();
            for g in GOVERNORS {
                let ppw = evaluation
                    .results_for(g)
                    .iter()
                    .find(|r| r.workload_id == id)
                    .expect("every governor ran every workload")
                    .ppw;
                normalized_ppw.insert(g.to_string(), ppw.value() / base[&id]);
            }
            let oracle = &evaluation.oracles()[&id];
            let deadline_bound = match oracle.fd {
                Some(fd) => oracle.fe < fd,
                None => true, // infeasible: maximally deadline-bound
            };
            Fig08Row {
                workload_id: id,
                normalized_ppw,
                deadline_bound,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.normalized_ppw["DORA"].total_cmp(&b.normalized_ppw["DORA"]));
    Fig08 { rows, evaluation }
}

impl Fig08 {
    /// Mean DORA gain over the non-deadline-bound (`fE ≥ fD`) regime —
    /// the paper's "+24 % for workloads 20 and beyond".
    pub fn mean_gain_easy_regime(&self) -> f64 {
        let easy: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| !r.deadline_bound)
            .map(|r| r.normalized_ppw["DORA"])
            .collect();
        if easy.is_empty() {
            0.0
        } else {
            easy.iter().sum::<f64>() / easy.len() as f64 - 1.0
        }
    }

    /// How often DORA's static oracle twin matches it: fraction of
    /// deadline-bound workloads where DORA tracks `fD`'s PPW within 5 %,
    /// and of easy workloads where it tracks `fE` within 5 %.
    pub fn regime_tracking(&self) -> (f64, f64) {
        let close = |r: &Fig08Row, twin: &str| {
            (r.normalized_ppw["DORA"] - r.normalized_ppw[twin]).abs()
                / r.normalized_ppw[twin].max(1e-9)
                < 0.05
        };
        let bound: Vec<&Fig08Row> = self.rows.iter().filter(|r| r.deadline_bound).collect();
        let easy: Vec<&Fig08Row> = self.rows.iter().filter(|r| !r.deadline_bound).collect();
        let frac = |rows: &[&Fig08Row], twin: &str| {
            if rows.is_empty() {
                1.0
            } else {
                rows.iter().filter(|r| close(r, twin)).count() as f64 / rows.len() as f64
            }
        };
        (frac(&bound, "fD"), frac(&easy, "fE"))
    }

    /// The measured oracle frequencies for a workload.
    pub fn oracle_frequencies(&self, workload_id: &str) -> Option<(Option<Frequency>, Frequency)> {
        self.evaluation
            .oracles()
            .get(workload_id)
            .map(|o| (o.fd, o.fe))
    }

    /// Renders the sorted per-workload table.
    pub fn render(&self) -> String {
        let mut header: Vec<String> = vec!["#".into(), "Workload".into(), "regime".into()];
        header.extend(GOVERNORS.iter().map(|g| (*g).to_string()));
        let mut t = Table::new(header);
        for (i, r) in self.rows.iter().enumerate() {
            let mut cells = vec![
                (i + 1).to_string(),
                r.workload_id.clone(),
                if r.deadline_bound { "fE<fD" } else { "fE>=fD" }.to_string(),
            ];
            cells.extend(GOVERNORS.iter().map(|g| fmt_f(r.normalized_ppw[*g], 3)));
            t.row(cells);
        }
        let (track_fd, track_fe) = self.regime_tracking();
        format!(
            "Fig. 8: per-workload PPW normalized to interactive, sorted by DORA\n{}\
             easy-regime (fE>=fD) mean DORA gain: {}\n\
             DORA tracks fD on {}% of deadline-bound workloads, fE on {}% of easy ones\n",
            t.render(),
            fmt_f(self.mean_gain_easy_regime() * 100.0, 1) + "%",
            fmt_f(track_fd * 100.0, 0),
            fmt_f(track_fe * 100.0, 0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "54 workloads x (7 governors + 14-point oracle sweep); exercised by the fig08 binary"]
    fn reproduces_fig8_shape() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline);
        assert_eq!(fig.rows.len(), 54);
        // Rows are sorted by DORA gain.
        for pair in fig.rows.windows(2) {
            assert!(pair[0].normalized_ppw["DORA"] <= pair[1].normalized_ppw["DORA"]);
        }
        // Both regimes are populated (the paper splits at workload ~19).
        let bound = fig.rows.iter().filter(|r| r.deadline_bound).count();
        assert!((8..=46).contains(&bound), "deadline-bound count {bound}");
        // In the easy regime DORA's gain is substantial.
        assert!(
            fig.mean_gain_easy_regime() > 0.10,
            "easy-regime gain {:.3}",
            fig.mean_gain_easy_regime()
        );
        // DORA hugs its per-regime twin for most workloads.
        let (track_fd, track_fe) = fig.regime_tracking();
        assert!(track_fe > 0.5, "fE tracking {track_fe:.2}");
        assert!(track_fd > 0.3, "fD tracking {track_fd:.2}");
    }
}
