//! Fig. 2 — what interference costs: load time (a) and energy (b).
//!
//! Part (a): measured load times of four pages (AliExpress, Hao123, ESPN,
//! Imgur) at the top frequency under low/medium/high-intensity
//! co-runners. In the paper ESPN meets the 3 s deadline regardless of
//! interference, AliExpress never does, and Hao123/Imgur degrade from
//! meeting to missing as intensity rises.
//!
//! Part (b): the additional energy `E_Δ` of running the browser and the
//! co-runner together versus separately, as a fraction of the co-run
//! energy (`E_Δ/(E_B+E_O+E_Δ)`, up to ~29 % in the paper).
//!
//! **Separate-run accounting.** On the bench "separately" means two DAQ
//! captures. Here the mission is fixed — load the page once and give the
//! kernel `T_co` seconds of core time — and compared:
//! `E_sep = E_B(alone load) + E_K(kernel alone for T_co) − E_idle(T_b)`
//! (the idle-platform term removes the double-paid display window), so
//! `E_Δ = E_co − E_sep` isolates the true co-running surcharge: longer
//! occupancy, extra cache misses and DRAM traffic.

use crate::report::{fmt_f, Table};
use dora_browser::catalog::{Catalog, CatalogPage};
use dora_campaign::runner::{run_page, ScenarioConfig};
use dora_coworkloads::Kernel;
use dora_governors::PinnedGovernor;
use dora_sim_core::units::{Seconds, Watts};
use dora_sim_core::SimDuration;
use dora_soc::board::Board;
use dora_soc::Frequency;

/// The four pages the paper measures.
pub const PAGES: [&str; 4] = ["Aliexpress", "Hao123", "ESPN", "Imgur"];

/// Per-page measurements for the figure.
#[derive(Debug, Clone)]
pub struct Fig02Row {
    /// Page name.
    pub page: String,
    /// Load time under the low/medium/high representatives, seconds.
    pub load_s: [f64; 3],
    /// Additional-energy fraction `E_Δ/E_co` for low and high intensity.
    pub extra_energy_frac: [f64; 2],
}

/// The Fig. 2 dataset.
#[derive(Debug, Clone)]
pub struct Fig02 {
    /// One row per measured page.
    pub rows: Vec<Fig02Row>,
    /// The frequency everything was measured at (the paper uses 2.2 GHz).
    pub freq: Frequency,
}

/// Mean idle device power at `freq` after thermal settling.
fn idle_power(config: &ScenarioConfig, freq: Frequency) -> Watts {
    let mut board = Board::new(config.board.clone(), config.seed);
    board.set_frequency(freq).expect("table frequency");
    board.step(SimDuration::from_secs(30));
    let e0 = board.energy();
    board.step(SimDuration::from_secs(10));
    (board.energy() - e0) / Seconds::new(10.0)
}

/// The kernel's alone-run marginal energy per instruction (joules), i.e.
/// its energy increment over the idle platform divided by the work done.
fn kernel_joules_per_instruction(
    config: &ScenarioConfig,
    kernel: &Kernel,
    freq: Frequency,
    idle_power: Watts,
) -> f64 {
    let mut board = Board::new(config.board.clone(), config.seed);
    board.set_frequency(freq).expect("table frequency");
    board
        .assign(2, Box::new(kernel.spawn(config.seed)))
        .expect("fresh board");
    board.step(config.warmup);
    let e0 = board.energy();
    let i0 = board.counters(2).instructions;
    board.step(SimDuration::from_secs(10));
    let energy = board.energy() - e0 - idle_power * Seconds::new(10.0);
    let instructions = board.counters(2).instructions - i0;
    (energy.value() / instructions).max(0.0)
}

/// Measures the figure.
pub fn run(config: &ScenarioConfig) -> Fig02 {
    let catalog = Catalog::alexa18();
    let freq = config.board.dvfs.max_frequency();
    let [low, medium, high] = Kernel::representatives();
    let p_idle = idle_power(config, freq);

    // Attribute energies as increments over the idle platform, with the
    // kernel's share normalized to the work it actually completed during
    // the co-run window: E_Δ = Ê_co − Ê_B − Ê_O, reported as a fraction
    // of the attributable co-run energy Ê_co = E_B + E_O + E_Δ (the
    // paper's denominator).
    let extra_energy = |page: &CatalogPage, kernel: &Kernel| -> f64 {
        let mut pin = PinnedGovernor::new("pin", freq);
        let co = run_page(page, Some(kernel), &mut pin, config);
        let mut pin = PinnedGovernor::new("pin", freq);
        let alone = run_page(page, None, &mut pin, config);
        let j_per_instr = kernel_joules_per_instruction(config, kernel, freq, p_idle);
        let e_co_hat = (co.energy - p_idle * co.load_time).value();
        let e_browser_hat = (alone.energy - p_idle * alone.load_time).value();
        let e_kernel_hat = j_per_instr * co.corun_instructions;
        ((e_co_hat - e_browser_hat - e_kernel_hat) / e_co_hat).max(0.0)
    };

    let rows = PAGES
        .iter()
        .map(|name| {
            let page = catalog.page(name).expect("page in catalog");
            let load = |kernel: &Kernel| -> f64 {
                let mut pin = PinnedGovernor::new("pin", freq);
                run_page(page, Some(kernel), &mut pin, config)
                    .load_time
                    .value()
            };
            Fig02Row {
                page: (*name).to_string(),
                load_s: [load(&low), load(&medium), load(&high)],
                extra_energy_frac: [extra_energy(page, &low), extra_energy(page, &high)],
            }
        })
        .collect();

    Fig02 { rows, freq }
}

impl Fig02 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut a = Table::new(vec![
            "Page".into(),
            "low (s)".into(),
            "medium (s)".into(),
            "high (s)".into(),
            "meets 3s".into(),
        ]);
        for r in &self.rows {
            let verdict = if r.load_s[2] <= 3.0 {
                "always"
            } else if r.load_s[0] <= 3.0 {
                "only under light interference"
            } else {
                "never"
            };
            a.row(vec![
                r.page.clone(),
                fmt_f(r.load_s[0], 2),
                fmt_f(r.load_s[1], 2),
                fmt_f(r.load_s[2], 2),
                verdict.to_string(),
            ]);
        }
        let mut b = Table::new(vec![
            "Page".into(),
            "extra energy, low co-run (%)".into(),
            "extra energy, high co-run (%)".into(),
        ]);
        for r in &self.rows {
            b.row(vec![
                r.page.clone(),
                fmt_f(r.extra_energy_frac[0] * 100.0, 1),
                fmt_f(r.extra_energy_frac[1] * 100.0, 1),
            ]);
        }
        format!(
            "Fig. 2(a): load time vs co-runner intensity @ {}\n{}\n\
             Fig. 2(b): additional energy of co-running vs running separately\n{}",
            self.freq,
            a.render(),
            b.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(5))
            .build()
    }

    #[test]
    fn reproduces_fig2_shape() {
        let fig = run(&quick());
        assert_eq!(fig.rows.len(), 4);
        for r in &fig.rows {
            // (a) load time non-decreasing in intensity.
            assert!(r.load_s[0] <= r.load_s[1] + 0.05, "{r:?}");
            assert!(r.load_s[1] <= r.load_s[2] + 0.05, "{r:?}");
            // (b) extra energy positive and below 40%, growing with
            // intensity.
            assert!(r.extra_energy_frac[1] > 0.0, "{r:?}");
            assert!(r.extra_energy_frac[1] < 0.40, "{r:?}");
            assert!(
                r.extra_energy_frac[1] >= r.extra_energy_frac[0] - 0.02,
                "{r:?}"
            );
        }
        // Paper's page-level verdicts: ESPN always meets 3 s, AliExpress
        // never does.
        let espn = fig.rows.iter().find(|r| r.page == "ESPN").expect("row");
        assert!(
            espn.load_s[2] <= 3.0,
            "ESPN must absorb interference: {espn:?}"
        );
        let ali = fig
            .rows
            .iter()
            .find(|r| r.page == "Aliexpress")
            .expect("row");
        assert!(
            ali.load_s[0] > 3.0,
            "AliExpress misses even light co-run: {ali:?}"
        );
    }

    #[test]
    fn interference_sensitive_pages_flip_verdict() {
        // Hao123/Imgur: meet under low interference, miss under high —
        // the "depends" middle band of Fig. 2(a).
        let fig = run(&quick());
        let flips = fig
            .rows
            .iter()
            .filter(|r| r.load_s[0] <= 3.0 && r.load_s[2] > 3.0)
            .count();
        assert!(flips >= 1, "no page flips its 3s verdict: {:#?}", fig.rows);
    }
}
