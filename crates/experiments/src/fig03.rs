//! Fig. 3 — the optimal operating mode: `fopt = max(fD, fE)`.
//!
//! For two workloads the paper sweeps frequency and plots load time and
//! PPW side by side:
//!
//! * **ESPN** (high complexity): the PPW-optimal `fE` misses the 3 s
//!   deadline, so `fopt = fD` (a high setting);
//! * **MSN** (low complexity): the deadline is easy, `fD < fE`, so
//!   `fopt = fE` (an interior setting).
//!
//! Running flat out instead of at `fopt` costs 17 % (ESPN) and 28 % (MSN)
//! of PPW in the paper; the module reports the same "PPW left on the
//! table at fmax" number.

use crate::report::{fmt_f, render_series, Table};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::runner::{OracleFrequencies, ScenarioConfig};
use dora_campaign::workload::WorkloadSet;
use dora_campaign::Executor;
use dora_coworkloads::Intensity;

/// One workload's sweep and verdicts.
#[derive(Debug, Clone)]
pub struct Fig03Side {
    /// Page name.
    pub page: String,
    /// The oracle sweep (every table frequency).
    pub oracle: OracleFrequencies,
    /// PPW sacrificed by running at `fmax` instead of `fopt`, as a
    /// fraction of the `fopt` PPW.
    pub fmax_ppw_loss: f64,
}

/// The Fig. 3 dataset: ESPN (left) and MSN (right).
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// ESPN side (expected `fD > fE`).
    pub espn: Fig03Side,
    /// MSN side (expected `fD < fE`).
    pub msn: Fig03Side,
}

fn side(page: &str, config: &ScenarioConfig, executor: &Executor) -> Fig03Side {
    let set = WorkloadSet::paper54();
    let workload = set
        .find_by_class(page, Intensity::High)
        .expect("page in the 54-workload set");
    let o = CampaignDriver::new()
        .executor(*executor)
        .oracle(workload, config);
    let ppw_at = |mhz: f64| -> f64 {
        o.sweep
            .iter()
            .find(|p| (p.frequency.as_mhz() - mhz).abs() < 1e-9)
            .expect("table frequency in sweep")
            .result
            .ppw
            .value()
    };
    let ppw_fopt = ppw_at(o.fopt.as_mhz());
    let ppw_fmax = ppw_at(config.board.dvfs.max_frequency().as_mhz());
    Fig03Side {
        page: page.to_string(),
        fmax_ppw_loss: (1.0 - ppw_fmax / ppw_fopt).max(0.0),
        oracle: o,
    }
}

/// Measures both sides of the figure.
pub fn run(config: &ScenarioConfig) -> Fig03 {
    run_with(config, &Executor::auto())
}

/// [`run`] on a caller-chosen executor.
pub fn run_with(config: &ScenarioConfig, executor: &Executor) -> Fig03 {
    Fig03 {
        espn: side("ESPN", config, executor),
        msn: side("MSN", config, executor),
    }
}

impl Fig03Side {
    fn render(&self, deadline_s: f64) -> String {
        let mut t = Table::new(vec![
            "Freq (GHz)".into(),
            "load (s)".into(),
            "PPW".into(),
            "meets deadline".into(),
        ]);
        for p in &self.oracle.sweep {
            t.row(vec![
                fmt_f(p.frequency.as_ghz(), 3),
                fmt_f(p.result.load_time.value(), 2),
                fmt_f(p.result.ppw.value(), 4),
                p.result.met_deadline.to_string(),
            ]);
        }
        let fd = self
            .oracle
            .fd
            .map_or("none".to_string(), |f| format!("{f}"));
        format!(
            "{} + high-intensity co-runner (deadline {deadline_s}s)\n{}\
             fD={fd}  fE={}  fopt={}  PPW loss at fmax: {}\n",
            self.page,
            t.render(),
            self.oracle.fe,
            self.oracle.fopt,
            fmt_f(self.fmax_ppw_loss * 100.0, 1) + "%",
        )
    }

    /// The `(GHz, PPW)` series for plotting.
    pub fn ppw_series(&self) -> Vec<(f64, f64)> {
        self.oracle
            .sweep
            .iter()
            .map(|p| (p.frequency.as_ghz(), p.result.ppw.value()))
            .collect()
    }
}

impl Fig03 {
    /// Renders both panels plus plot-ready series.
    pub fn render(&self) -> String {
        format!(
            "Fig. 3: load time and energy efficiency vs frequency\n\n{}\n{}\n{}{}",
            self.espn.render(3.0),
            self.msn.render(3.0),
            render_series("espn_ppw", &self.espn.ppw_series()),
            render_series("msn_ppw", &self.msn.ppw_series()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_sim_core::SimDuration;

    fn quick() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(5))
            .build()
    }

    #[test]
    fn reproduces_fig3_regimes() {
        let fig = run(&quick());
        // MSN: deadline easy, fopt = fE, strictly interior.
        let msn = &fig.msn.oracle;
        let fd_msn = msn.fd.expect("MSN meets 3s at some frequency");
        assert!(fd_msn <= msn.fe, "MSN should be in the fD <= fE regime");
        assert_eq!(msn.fopt, msn.fe);
        assert!(msn.fe < quick().board.dvfs.max_frequency());
        // ESPN: deadline hard — fD (if any) sits above fE, fopt = fD or
        // fmax.
        let espn = &fig.espn.oracle;
        match espn.fd {
            Some(fd) => {
                assert!(fd >= espn.fe, "ESPN should be in the fD > fE regime");
                assert_eq!(espn.fopt, fd);
            }
            None => {
                assert_eq!(espn.fopt, quick().board.dvfs.max_frequency());
            }
        }
        // Running at fmax instead of fopt visibly wastes PPW for MSN
        // (paper: 28%).
        assert!(
            fig.msn.fmax_ppw_loss > 0.10,
            "MSN fmax loss {:.3}",
            fig.msn.fmax_ppw_loss
        );
    }
}
