//! Plain-text rendering helpers shared by the experiment modules.
//!
//! Every experiment reduces to tables (aligned columns) or series
//! (`x<TAB>y` rows a plotting tool can ingest directly). Keeping the
//! renderer in one place makes all regenerated exhibits look alike.

use std::fmt::Write as _;

/// A simple aligned-column table builder.
///
/// # Example
///
/// ```
/// use dora_experiments::report::Table;
///
/// let mut t = Table::new(vec!["page".into(), "load (s)".into()]);
/// t.row(vec!["Reddit".into(), "1.31".into()]);
/// let text = t.render();
/// assert!(text.contains("Reddit"));
/// assert!(text.lines().count() >= 3); // header, rule, row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given decimals, right-aligned semantics left
/// to the table.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a ratio as a percentage delta against 1.0 (e.g. `+16.2%`).
pub fn fmt_gain(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Renders an `(x, y)` series as tab-separated lines under a `# name`
/// banner — directly consumable by gnuplot or a spreadsheet.
pub fn render_series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {name}\n");
    for (x, y) in points {
        let _ = writeln!(out, "{x:.6}\t{y:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "value".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "value" header starts at the same offset in every row.
        let header_pos = lines[0].find("value").expect("header present");
        assert_eq!(&lines[2][header_pos..header_pos + 1], "1");
        assert_eq!(&lines[3][header_pos..header_pos + 2], "22");
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only".into()]);
        t.row(vec!["x".into(), "y".into(), "z".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(!text.contains('z'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_gain(1.162), "+16.2%");
        assert_eq!(fmt_gain(0.95), "-5.0%");
    }

    #[test]
    fn series_renders_tab_separated() {
        let s = render_series("ppw", &[(0.7296, 0.21), (2.2656, 0.18)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# ppw");
        assert!(lines[1].starts_with("0.729600\t"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new(vec![]);
    }
}
