//! Fig. 11 — DORA's frequency selection across QoS deadlines.
//!
//! MSN with a high-intensity co-runner, deadline swept from 1 to 10
//! seconds, *no retraining* ("the models used by DORA do not need to be
//! re-parameterized for using a different QoS deadline"). The paper's
//! staircase: demanding deadlines (1–2 s) pin `fmax`; at 3 s DORA sits at
//! the deadline-meeting `fD`; relaxed deadlines let it slide down to the
//! energy-optimal `fE`, below which it never goes.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, render_series, Table};
use dora::{DoraConfig, DoraGovernor};
use dora_campaign::runner::run_scenario;
use dora_campaign::workload::WorkloadSet;
use dora_coworkloads::Intensity;

/// One deadline's outcome.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// The QoS deadline, seconds.
    pub deadline_s: f64,
    /// The table frequency nearest DORA's time-weighted mean (GHz) — the
    /// setting DORA effectively held.
    pub fopt_ghz: f64,
    /// Measured load time under DORA at this deadline.
    pub load_time_s: f64,
    /// Whether the load met this deadline.
    pub met: bool,
}

/// The Fig. 11 dataset.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// One row per deadline, 1 s to 10 s.
    pub rows: Vec<Fig11Row>,
}

/// Runs the deadline sweep.
pub fn run(pipeline: &Pipeline) -> Fig11 {
    let set = WorkloadSet::paper54();
    let workload = set
        .find_by_class("MSN", Intensity::High)
        .expect("MSN+high exists");
    let dvfs = &pipeline.scenario.board.dvfs;
    let rows = (1..=10)
        .map(|deadline| {
            let deadline_s = deadline as f64;
            let mut governor = DoraGovernor::new(
                pipeline.models.clone(),
                workload.page.features,
                DoraConfig {
                    qos_target: dora::units::Seconds::new(deadline_s),
                    ..DoraConfig::default()
                },
            );
            let config = pipeline
                .scenario
                .to_builder()
                .deadline(dora::units::Seconds::new(deadline_s))
                .build();
            let r = run_scenario(workload, &mut governor, &config);
            let fopt_ghz = dvfs
                .nearest(dora_soc::Frequency::from_mhz(r.mean_frequency.as_mhz()))
                .as_ghz();
            Fig11Row {
                deadline_s,
                fopt_ghz,
                load_time_s: r.load_time.value(),
                met: r.met_deadline,
            }
        })
        .collect();
    Fig11 { rows }
}

impl Fig11 {
    /// The relaxed-deadline plateau frequency (the last row's choice) —
    /// DORA's `fE` for this workload.
    pub fn fe_plateau_ghz(&self) -> f64 {
        self.rows.last().expect("ten rows").fopt_ghz
    }

    /// Renders the staircase.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Deadline (s)".into(),
            "fopt (GHz)".into(),
            "load (s)".into(),
            "met".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                fmt_f(r.deadline_s, 0),
                fmt_f(r.fopt_ghz, 2),
                fmt_f(r.load_time_s, 2),
                r.met.to_string(),
            ]);
        }
        let series: Vec<(f64, f64)> = self
            .rows
            .iter()
            .map(|r| (r.deadline_s, r.fopt_ghz))
            .collect();
        format!(
            "Fig. 11: DORA frequency selection vs deadline (MSN + high co-runner)\n{}\
             fE plateau: {} GHz\n\n{}",
            t.render(),
            fmt_f(self.fe_plateau_ghz(), 2),
            render_series("fopt_vs_deadline", &series),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "needs the trained pipeline; exercised by the fig11 binary"]
    fn reproduces_fig11_staircase() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline);
        assert_eq!(fig.rows.len(), 10);
        // Non-increasing staircase.
        for pair in fig.rows.windows(2) {
            assert!(
                pair[0].fopt_ghz >= pair[1].fopt_ghz - 1e-9,
                "staircase must not rise: {:#?}",
                fig.rows
            );
        }
        // Demanding deadlines pin the top of the range.
        assert!(fig.rows[0].fopt_ghz > 2.0, "{:#?}", fig.rows[0]);
        // Relaxed deadlines settle at an interior fE, not the minimum.
        let fe = fig.fe_plateau_ghz();
        assert!(fe < 2.0, "fE plateau {fe}");
        assert!(fe > 0.3, "fE plateau {fe}");
        // The plateau is flat at the tail (deadline no longer binds).
        let tail: Vec<f64> = fig.rows[7..].iter().map(|r| r.fopt_ghz).collect();
        assert!(
            tail.windows(2).all(|w| (w[0] - w[1]).abs() < 0.3),
            "{tail:?}"
        );
        // Feasible deadlines are met.
        for r in &fig.rows {
            if r.deadline_s >= 3.0 {
                assert!(r.met, "deadline {}s missed: {r:?}", r.deadline_s);
            }
        }
    }
}
