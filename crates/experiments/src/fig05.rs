//! Fig. 5 — cumulative distribution of model prediction errors.
//!
//! The paper reports a 2.5 % average load-time error (97.5 % accuracy)
//! and 4 % average power error (96 % accuracy), with CDFs over *web
//! pages*: "about 87.5 % of the web pages have less than 5 % error with a
//! maximum error of 10 %" for load time; "for 75 % of web pages the
//! \[power\] model gives less than 5 % error, and for 90 % less than 10 %".
//!
//! Following that framing, errors here are aggregated per page: each
//! page's error is the mean absolute relative error over all of its
//! evaluation observations (held-out Webpage-Neutral measurements plus
//! fresh-seed re-measurements of training pages).

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, render_series, Table};
use dora::trainer::TrainingObservation;
use dora_campaign::training::measure_observation;
use dora_campaign::workload::WorkloadSet;
use dora_sim_core::stats::Samples;
use std::collections::BTreeMap;

/// Per-page model errors.
#[derive(Debug, Clone)]
pub struct PageError {
    /// Page name.
    pub page: String,
    /// Whether the page was in the training set.
    pub training: bool,
    /// Mean absolute relative load-time error.
    pub time_error: f64,
    /// Mean absolute relative power error.
    pub power_error: f64,
}

/// The Fig. 5 dataset.
#[derive(Debug, Clone)]
pub struct Fig05 {
    /// One row per page.
    pub pages: Vec<PageError>,
    /// Mean load-time error across pages (the paper's 2.5 %).
    pub mean_time_error: f64,
    /// Mean power error across pages (the paper's 4 %).
    pub mean_power_error: f64,
}

/// Builds fresh evaluation observations: held-out pages across the paper
/// ladder, and training pages re-measured with a different seed (unseen
/// jitter realizations).
/// Builds the held-out evaluation grid shared with the Section V-A study.
pub fn evaluation_observations(pipeline: &Pipeline) -> Vec<(String, bool, TrainingObservation)> {
    let set = WorkloadSet::paper54();
    let eval_scenario = pipeline
        .scenario
        .to_builder()
        .seed(pipeline.scenario.seed ^ 0x5EED_CAFE)
        .build();
    let ladder = eval_scenario.board.dvfs.paper_ladder();
    let mut out = Vec::new();
    for workload in set.workloads() {
        // Keep the grid affordable: held-out pages get the full ladder,
        // training pages every other rung.
        let step = if workload.is_training() { 2 } else { 1 };
        for &f in ladder.iter().step_by(step) {
            let obs = measure_observation(workload, f, &eval_scenario);
            out.push((workload.page.name.to_string(), workload.is_training(), obs));
        }
    }
    out
}

/// Measures the figure from a trained pipeline.
pub fn run(pipeline: &Pipeline) -> Fig05 {
    let rows = evaluation_observations(pipeline);
    let mut per_page: BTreeMap<String, (bool, Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (page, training, obs) in rows {
        let t_pred = pipeline.models.predict_load_time(&obs.inputs);
        let p_pred = pipeline
            .models
            .predict_total_power(&obs.inputs, obs.mean_temp, true);
        let entry = per_page
            .entry(page)
            .or_insert((training, Vec::new(), Vec::new()));
        entry
            .1
            .push(((t_pred.value() - obs.load_time.value()) / obs.load_time.value()).abs());
        entry
            .2
            .push(((p_pred.value() - obs.total_power.value()) / obs.total_power.value()).abs());
    }
    let pages: Vec<PageError> = per_page
        .into_iter()
        .map(|(page, (training, t, p))| PageError {
            page,
            training,
            time_error: t.iter().sum::<f64>() / t.len() as f64,
            power_error: p.iter().sum::<f64>() / p.len() as f64,
        })
        .collect();
    let mean_time_error = pages.iter().map(|p| p.time_error).sum::<f64>() / pages.len() as f64;
    let mean_power_error = pages.iter().map(|p| p.power_error).sum::<f64>() / pages.len() as f64;
    Fig05 {
        pages,
        mean_time_error,
        mean_power_error,
    }
}

impl Fig05 {
    /// The error CDF over pages for the load-time model.
    pub fn time_cdf(&self) -> Samples {
        self.pages.iter().map(|p| p.time_error).collect()
    }

    /// The error CDF over pages for the power model.
    pub fn power_cdf(&self) -> Samples {
        self.pages.iter().map(|p| p.power_error).collect()
    }

    /// Model accuracy the way the paper quotes it (`100·(1−error)`).
    pub fn accuracies_percent(&self) -> (f64, f64) {
        (
            100.0 * (1.0 - self.mean_time_error),
            100.0 * (1.0 - self.mean_power_error),
        )
    }

    /// Renders the per-page table, summary and CDF series.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Page".into(),
            "set".into(),
            "time err (%)".into(),
            "power err (%)".into(),
        ]);
        for p in &self.pages {
            t.row(vec![
                p.page.clone(),
                if p.training { "train" } else { "held-out" }.to_string(),
                fmt_f(p.time_error * 100.0, 2),
                fmt_f(p.power_error * 100.0, 2),
            ]);
        }
        let time_cdf = self.time_cdf();
        let power_cdf = self.power_cdf();
        let (ta, pa) = self.accuracies_percent();
        format!(
            "Fig. 5: prediction-error distribution over pages\n{}\
             mean error: time {}% (accuracy {}%), power {}% (accuracy {}%)\n\
             time model: {}% of pages under 5% error, max {}%\n\
             power model: {}% of pages under 5% error, {}% under 10%\n\n{}{}",
            t.render(),
            fmt_f(self.mean_time_error * 100.0, 2),
            fmt_f(ta, 1),
            fmt_f(self.mean_power_error * 100.0, 2),
            fmt_f(pa, 1),
            fmt_f(time_cdf.cdf_at(0.05) * 100.0, 1),
            fmt_f(time_cdf.quantile(1.0) * 100.0, 1),
            fmt_f(power_cdf.cdf_at(0.05) * 100.0, 1),
            fmt_f(power_cdf.cdf_at(0.10) * 100.0, 1),
            render_series("time_error_cdf", &time_cdf.cdf_points()),
            render_series("power_error_cdf", &power_cdf.cdf_points()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "runs a multi-hundred-load campaign; exercised by the fig05 binary and CI-style release runs"]
    fn accuracy_lands_in_paper_band() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline);
        assert!(
            fig.mean_time_error < 0.05,
            "time error {:.3}",
            fig.mean_time_error
        );
        assert!(
            fig.mean_power_error < 0.06,
            "power error {:.3}",
            fig.mean_power_error
        );
        let cdf = fig.time_cdf();
        assert!(cdf.cdf_at(0.10) > 0.8, "most pages under 10% error");
    }

    #[test]
    #[ignore = "slow in debug; quick-pipeline variant for spot checks"]
    fn quick_pipeline_is_sane() {
        let pipeline = Pipeline::quick();
        let fig = run(&pipeline);
        assert_eq!(fig.pages.len(), 18);
        // The quick grid trades accuracy for speed (it is too small for
        // per-tier piecewise fits); it only needs to be in the ballpark.
        assert!(
            fig.mean_time_error < 0.30,
            "time error {:.3}",
            fig.mean_time_error
        );
    }
}
