//! Generalization beyond the Alexa 18.
//!
//! The paper holds out four real pages; a stronger question is how the
//! trained models behave on pages *sampled from the whole plausible
//! feature space* — the situation a deployed governor actually faces.
//! This experiment synthesizes a corpus of random pages (via
//! [`PageFeatures::synthesize`]), pairs each with a random co-runner, and
//! compares DORA against `interactive` and `performance` on workloads no
//! model coefficient ever saw.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, fmt_gain, Table};
use dora::{DoraConfig, DoraGovernor};
use dora_browser::catalog::{CatalogPage, PageClass};
use dora_browser::PageFeatures;
use dora_campaign::runner::run_page;
use dora_coworkloads::Kernel;
use dora_governors::{InteractiveGovernor, PerformanceGovernor};
use dora_sim_core::Rng;

/// Static names for the synthesized corpus (catalog pages carry
/// `&'static str` names).
const SYNTH_NAMES: [&str; 12] = [
    "synth-00", "synth-01", "synth-02", "synth-03", "synth-04", "synth-05", "synth-06", "synth-07",
    "synth-08", "synth-09", "synth-10", "synth-11",
];

/// One synthesized workload's outcome.
#[derive(Debug, Clone)]
pub struct GeneralizationRow {
    /// Synthetic page name.
    pub page: String,
    /// DOM nodes (scale indicator).
    pub dom_nodes: u32,
    /// Co-runner name.
    pub kernel: String,
    /// DORA PPW normalized to interactive.
    pub dora_nppw: f64,
    /// Whether DORA met the 3 s deadline.
    pub dora_met: bool,
    /// Whether the deadline was feasible at all (performance met it).
    pub feasible: bool,
}

/// The experiment dataset.
#[derive(Debug, Clone)]
pub struct Generalization {
    /// One row per synthesized workload.
    pub rows: Vec<GeneralizationRow>,
}

/// Runs the experiment: 12 synthesized pages × 1 random kernel each.
pub fn run(pipeline: &Pipeline) -> Generalization {
    let mut rng = Rng::seed_from_u64(pipeline.scenario.seed ^ 0x5E17);
    let kernels = Kernel::all();
    let config = pipeline.scenario.clone();
    let rows = SYNTH_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let complexity = 0.05 + 0.9 * i as f64 / (SYNTH_NAMES.len() - 1) as f64;
            let features = PageFeatures::synthesize(&mut rng, complexity);
            let page = CatalogPage {
                name,
                features,
                class: if complexity < 0.4 {
                    PageClass::Low
                } else {
                    PageClass::High
                },
                training: false,
                memory_weight: 1.0,
            };
            // Same draw as `Rng::choose`, without the Option (the suite is
            // a non-empty const): one `below(len)` call keeps the stream
            // identical to the previous `choose`-based code.
            let kernel = kernels[rng.below(kernels.len() as u64) as usize].clone();

            let mut interactive = InteractiveGovernor::new(config.board.dvfs.clone());
            let base = run_page(&page, Some(&kernel), &mut interactive, &config);
            let mut performance = PerformanceGovernor::new(config.board.dvfs.clone());
            let perf = run_page(&page, Some(&kernel), &mut performance, &config);
            let mut dora = DoraGovernor::new(
                pipeline.models.clone(),
                page.features,
                DoraConfig::default(),
            );
            let d = run_page(&page, Some(&kernel), &mut dora, &config);
            GeneralizationRow {
                page: (*name).to_string(),
                dom_nodes: page.features.dom_nodes(),
                kernel: kernel.name().to_string(),
                dora_nppw: d.ppw.value() / base.ppw.value(),
                dora_met: d.met_deadline,
                feasible: perf.met_deadline,
            }
        })
        .collect();
    Generalization { rows }
}

impl Generalization {
    /// Mean DORA gain over the synthesized corpus.
    pub fn mean_gain(&self) -> f64 {
        self.rows.iter().map(|r| r.dora_nppw).sum::<f64>() / self.rows.len() as f64 - 1.0
    }

    /// Of the feasible workloads, the fraction DORA also met.
    pub fn feasibility_kept(&self) -> f64 {
        let feasible: Vec<&GeneralizationRow> = self.rows.iter().filter(|r| r.feasible).collect();
        if feasible.is_empty() {
            return 1.0;
        }
        feasible.iter().filter(|r| r.dora_met).count() as f64 / feasible.len() as f64
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Page".into(),
            "nodes".into(),
            "kernel".into(),
            "DORA PPW vs interactive".into(),
            "DORA met 3s".into(),
            "feasible".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.page.clone(),
                r.dom_nodes.to_string(),
                r.kernel.clone(),
                fmt_f(r.dora_nppw, 3),
                r.dora_met.to_string(),
                r.feasible.to_string(),
            ]);
        }
        format!(
            "Generalization: synthesized pages the models never saw\n{}\
             mean DORA gain: {}; deadline kept on {}% of feasible workloads\n",
            t.render(),
            fmt_gain(1.0 + self.mean_gain()),
            fmt_f(self.feasibility_kept() * 100.0, 0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "needs the trained pipeline; exercised by the generalization binary"]
    fn dora_generalizes_to_unseen_pages() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let g = run(&pipeline);
        assert_eq!(g.rows.len(), 12);
        // Positive mean gain even off the training corpus.
        assert!(g.mean_gain() > 0.03, "mean gain {:.3}", g.mean_gain());
        // Never catastrophically bad on any single workload.
        for r in &g.rows {
            assert!(r.dora_nppw > 0.75, "{r:?}");
        }
        // QoS holds on the large majority of feasible workloads.
        assert!(
            g.feasibility_kept() > 0.75,
            "kept {:.2}",
            g.feasibility_kept()
        );
    }
}
