//! Fig. 6 — why small model errors don't move `fopt`.
//!
//! For Youtube co-run with a high-intensity kernel the paper plots the
//! measured PPW across frequencies: the optimum sits at an interior
//! frequency, and stepping one bin away changes load time and power by
//! tens of percent (Δt = +20.3 %, ΔP = −13.3 % below; Δt = −20.8 %,
//! ΔP = +34.8 % above). Because the PPW gaps between adjacent bins dwarf
//! the ~1 % model errors, DORA's argmax is robust (Section V-B).

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, render_series, Table};
use dora::models::PredictorInputs;
use dora_campaign::driver::CampaignDriver;
use dora_campaign::runner::{OracleFrequencies, ScenarioConfig};
use dora_campaign::workload::WorkloadSet;
use dora_coworkloads::Intensity;
use dora_soc::Frequency;

/// The Fig. 6 dataset.
#[derive(Debug, Clone)]
pub struct Fig06 {
    /// The full measured sweep for Youtube+high.
    pub oracle: OracleFrequencies,
    /// The measured PPW-optimal frequency.
    pub fopt: Frequency,
    /// `(Δt, ΔP)` stepping one bin below `fopt` (fractions).
    pub below: (f64, f64),
    /// `(Δt, ΔP)` stepping one bin above `fopt` (fractions).
    pub above: (f64, f64),
    /// Model prediction errors at `fopt`: `(time, power)` relative errors.
    pub model_errors_at_fopt: (f64, f64),
}

/// Measures the figure. Needs the pipeline for the model-error overlay.
pub fn run(pipeline: &Pipeline, config: &ScenarioConfig) -> Fig06 {
    let set = WorkloadSet::paper54();
    let workload = set
        .find_by_class("Youtube", Intensity::High)
        .expect("Youtube+high in the 54-workload set");
    let o = CampaignDriver::new()
        .executor(pipeline.executor)
        .oracle(workload, config);
    // fE is the measured PPW optimum regardless of the deadline.
    let fopt = o.fe;
    let dvfs = &config.board.dvfs;
    let at = |f: Frequency| {
        o.sweep
            .iter()
            .find(|p| (p.frequency.as_mhz() - f.as_mhz()).abs() < 1e-9)
            .expect("table frequency in sweep")
            .result
            .clone()
    };
    let center = at(fopt);
    let below_f = dvfs.step_down(fopt).expect("fopt is a table frequency");
    let above_f = dvfs.step_up(fopt).expect("fopt is a table frequency");
    let below_r = at(below_f);
    let above_r = at(above_f);
    let deltas = |r: &dora_campaign::RunResult| {
        (
            r.load_time.value() / center.load_time.value() - 1.0,
            r.mean_power.value() / center.mean_power.value() - 1.0,
        )
    };

    // Model prediction at fopt under the measured conditions.
    let inputs = PredictorInputs::for_frequency(
        workload.page.features,
        fopt,
        dvfs,
        center.mean_mpki,
        center.corun_utilization,
    );
    let t_pred = pipeline.models.predict_load_time(&inputs);
    let p_pred = pipeline
        .models
        .predict_total_power(&inputs, center.final_temp, true);

    Fig06 {
        fopt,
        below: deltas(&below_r),
        above: deltas(&above_r),
        model_errors_at_fopt: (
            (t_pred.value() - center.load_time.value()) / center.load_time.value(),
            (p_pred.value() - center.mean_power.value()) / center.mean_power.value(),
        ),
        oracle: o,
    }
}

impl Fig06 {
    /// Whether the model errors are small enough that the argmax cannot
    /// move to a neighboring bin (the paper's robustness argument): the
    /// PPW error bound `(1+Pe)(1+te) − 1` must be smaller than the PPW gap
    /// to the better neighbor.
    pub fn fopt_is_robust(&self) -> bool {
        let (te, pe) = self.model_errors_at_fopt;
        let ppw_error = ((1.0 + pe.abs()) * (1.0 + te.abs())) - 1.0;
        let at = |mhz: f64| {
            self.oracle
                .sweep
                .iter()
                .find(|p| (p.frequency.as_mhz() - mhz).abs() < 1e-9)
                .expect("in sweep")
                .result
                .ppw
                .value()
        };
        let center = at(self.fopt.as_mhz());
        let neighbor_best = self
            .oracle
            .sweep
            .iter()
            .filter(|p| (p.frequency.as_mhz() - self.fopt.as_mhz()).abs() > 1e-9)
            .map(|p| p.result.ppw.value())
            .fold(0.0, f64::max);
        let gap = (center - neighbor_best) / center;
        ppw_error < gap.max(0.0) + 0.05 // small slack: adjacent bins may tie
    }

    /// Renders the panel.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["Freq (GHz)".into(), "PPW".into(), "load (s)".into()]);
        for p in &self.oracle.sweep {
            t.row(vec![
                fmt_f(p.frequency.as_ghz(), 3),
                fmt_f(p.result.ppw.value(), 4),
                fmt_f(p.result.load_time.value(), 2),
            ]);
        }
        let series: Vec<(f64, f64)> = self
            .oracle
            .sweep
            .iter()
            .map(|p| (p.frequency.as_ghz(), p.result.ppw.value()))
            .collect();
        format!(
            "Fig. 6: PPW across frequencies, Youtube + high-intensity co-runner\n{}\
             fopt = {}\n\
             one bin below: dt = {}, dP = {}\n\
             one bin above: dt = {}, dP = {}\n\
             model errors at fopt: time {}, power {}\n\
             fopt robust to model error: {}\n\n{}",
            t.render(),
            self.fopt,
            fmt_f(self.below.0 * 100.0, 1) + "%",
            fmt_f(self.below.1 * 100.0, 1) + "%",
            fmt_f(self.above.0 * 100.0, 1) + "%",
            fmt_f(self.above.1 * 100.0, 1) + "%",
            fmt_f(self.model_errors_at_fopt.0 * 100.0, 2) + "%",
            fmt_f(self.model_errors_at_fopt.1 * 100.0, 2) + "%",
            self.fopt_is_robust(),
            render_series("youtube_high_ppw", &series),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "needs the trained pipeline; exercised by the fig06 binary"]
    fn fopt_interior_and_neighbors_expensive() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline, &pipeline.scenario);
        let dvfs = &pipeline.scenario.board.dvfs;
        assert!(fig.fopt > dvfs.min_frequency());
        assert!(fig.fopt < dvfs.max_frequency());
        // Stepping down slows the load; stepping up burns power.
        assert!(fig.below.0 > 0.05, "below dt {:?}", fig.below);
        assert!(fig.above.1 > 0.05, "above dP {:?}", fig.above);
        // And the model errors are far smaller than those swings.
        assert!(fig.model_errors_at_fopt.0.abs() < 0.05);
        assert!(fig.model_errors_at_fopt.1.abs() < 0.05);
    }
}
