//! Ablations of this reproduction's own design choices.
//!
//! DESIGN.md makes four load-bearing decisions beyond what the paper
//! spells out; each is ablated here against the same training campaign
//! and evaluation slice so their contribution is measurable rather than
//! asserted:
//!
//! 1. **Piecewise-per-bus-tier fits** (Section III-A's "piece-wise
//!    models") vs a single global surface.
//! 2. **Period encoding** of X7/X8 for the load-time surface vs the
//!    natural frequency encoding.
//! 3. **QoS safety margin** (3 %) vs none.
//! 4. **Switch hysteresis** (3 % PPW margin) vs switching on every
//!    argmax move.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, Table};
use dora::trainer::{evaluate_models, train, TrainerConfig, TrainingObservation};
use dora::{DoraConfig, DoraGovernor, DoraModels};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::Policy;
use dora_campaign::runner::run_scenario;
use dora_campaign::workload::WorkloadSet;

/// Model-side ablation: held-out accuracy of trainer variants.
#[derive(Debug, Clone)]
pub struct ModelAblationRow {
    /// Variant label.
    pub variant: String,
    /// Held-out load-time MAPE.
    pub time_mape: f64,
    /// Held-out power MAPE.
    pub power_mape: f64,
}

/// Governor-side ablation: behaviour of DORA config variants.
#[derive(Debug, Clone)]
pub struct GovernorAblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean PPW normalized to interactive over the slice.
    pub mean_nppw: f64,
    /// Deadline-met fraction.
    pub met_fraction: f64,
    /// Mean switches per load.
    pub mean_switches: f64,
}

/// The combined ablation report.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Trainer-variant rows.
    pub model_rows: Vec<ModelAblationRow>,
    /// Governor-variant rows.
    pub governor_rows: Vec<GovernorAblationRow>,
}

/// Trains a variant and evaluates it on held-out observations.
fn model_variant(
    label: &str,
    pipeline: &Pipeline,
    eval_set: &[TrainingObservation],
    config: TrainerConfig,
) -> ModelAblationRow {
    let models = train(
        &pipeline.observations,
        &pipeline.leakage_observations,
        &pipeline.scenario.board.dvfs,
        config,
    )
    .expect("campaign grids are identifiable");
    let eval = evaluate_models(&models, eval_set);
    ModelAblationRow {
        variant: label.to_string(),
        time_mape: eval.load_time.mape,
        power_mape: eval.power.mape,
    }
}

/// Runs a DORA config variant over a workload slice.
fn governor_variant(
    label: &str,
    pipeline: &Pipeline,
    models: &DoraModels,
    config: DoraConfig,
) -> GovernorAblationRow {
    let all = WorkloadSet::paper54();
    let slice: Vec<_> = all
        .workloads()
        .iter()
        .filter(|w| ["Amazon", "Reddit", "MSN", "ESPN", "Imgur"].contains(&w.page.name))
        .cloned()
        .collect();
    let scenario = &pipeline.scenario;
    let baseline_eval = CampaignDriver::new()
        .executor(pipeline.executor)
        .evaluate(
            &WorkloadSet::from_workloads(slice.clone()),
            &[Policy::Interactive],
            None,
            scenario,
        )
        .expect("no models needed");
    let mut ratios = Vec::new();
    let mut met = 0usize;
    let mut switches = 0u64;
    for w in &slice {
        let base_ppw = baseline_eval
            .results_for("interactive")
            .iter()
            .find(|r| r.workload_id == w.id())
            .expect("ran above")
            .ppw
            .value();
        let mut governor = DoraGovernor::new(models.clone(), w.page.features, config);
        let r = run_scenario(w, &mut governor, scenario);
        ratios.push(r.ppw.value() / base_ppw);
        met += usize::from(r.met_deadline);
        switches += r.switches;
    }
    GovernorAblationRow {
        variant: label.to_string(),
        mean_nppw: ratios.iter().sum::<f64>() / ratios.len() as f64,
        met_fraction: met as f64 / slice.len() as f64,
        mean_switches: switches as f64 / slice.len() as f64,
    }
}

/// Runs all four ablations.
pub fn run(pipeline: &Pipeline) -> Ablation {
    // Held-out observations: the neutral pages' fresh measurements.
    let eval_set: Vec<TrainingObservation> = crate::fig05::evaluation_observations(pipeline)
        .into_iter()
        .filter(|(_, training, _)| !training)
        .map(|(_, _, obs)| obs)
        .collect();

    let default = TrainerConfig::default();
    let model_rows = vec![
        model_variant(
            "default (piecewise, period-encoded)",
            pipeline,
            &eval_set,
            default,
        ),
        model_variant(
            "no piecewise tiers (global fit only)",
            pipeline,
            &eval_set,
            TrainerConfig {
                // A tier would need more rows per term than the campaign
                // has in total, so every tier falls back to the global fit.
                min_rows_per_term: usize::MAX / 1024,
                ..default
            },
        ),
        model_variant(
            "natural frequency encoding for time",
            pipeline,
            &eval_set,
            TrainerConfig {
                time_encoding: dora::FrequencyEncoding::Natural,
                ..default
            },
        ),
        // The two choices interact: piecewise tiers partially rescue the
        // natural encoding (each tier spans a narrow frequency range);
        // without either, the polynomial cannot represent work/frequency.
        model_variant(
            "natural encoding AND global fit only",
            pipeline,
            &eval_set,
            TrainerConfig {
                time_encoding: dora::FrequencyEncoding::Natural,
                min_rows_per_term: usize::MAX / 1024,
                ..default
            },
        ),
    ];

    let governor_rows = vec![
        governor_variant(
            "default (3% QoS margin, 3% hysteresis)",
            pipeline,
            &pipeline.models,
            DoraConfig::default(),
        ),
        governor_variant(
            "no QoS margin",
            pipeline,
            &pipeline.models,
            DoraConfig {
                qos_margin: 0.0,
                ..DoraConfig::default()
            },
        ),
        governor_variant(
            "no switch hysteresis",
            pipeline,
            &pipeline.models,
            DoraConfig {
                switch_margin: 0.0,
                ..DoraConfig::default()
            },
        ),
    ];

    Ablation {
        model_rows,
        governor_rows,
    }
}

impl Ablation {
    /// Renders both tables.
    pub fn render(&self) -> String {
        let mut m = Table::new(vec![
            "Trainer variant".into(),
            "held-out time MAPE (%)".into(),
            "held-out power MAPE (%)".into(),
        ]);
        for r in &self.model_rows {
            m.row(vec![
                r.variant.clone(),
                fmt_f(r.time_mape * 100.0, 2),
                fmt_f(r.power_mape * 100.0, 2),
            ]);
        }
        let mut g = Table::new(vec![
            "Governor variant".into(),
            "PPW vs interactive".into(),
            "met 3s (%)".into(),
            "switches/load".into(),
        ]);
        for r in &self.governor_rows {
            g.row(vec![
                r.variant.clone(),
                fmt_f(r.mean_nppw, 3),
                fmt_f(r.met_fraction * 100.0, 1),
                fmt_f(r.mean_switches, 1),
            ]);
        }
        format!(
            "Design-choice ablations (this reproduction's own decisions)\n\n\
             Trainer ablations\n{}\nGovernor ablations\n{}",
            m.render(),
            g.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "trains multiple model variants; exercised by the ablation binary"]
    fn design_choices_pull_their_weight() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let ablation = run(&pipeline);
        let default = &ablation.model_rows[0];
        let global_only = &ablation.model_rows[1];
        // Piecewise fits must not hurt, and usually help visibly.
        assert!(
            default.time_mape <= global_only.time_mape + 0.005,
            "{ablation:#?}"
        );
        // Governor variants: dropping the QoS margin must not *improve*
        // deadline behaviour; dropping hysteresis must not reduce switches.
        let d = &ablation.governor_rows[0];
        let no_margin = &ablation.governor_rows[1];
        let no_hyst = &ablation.governor_rows[2];
        assert!(
            no_margin.met_fraction <= d.met_fraction + 1e-9,
            "{ablation:#?}"
        );
        assert!(
            no_hyst.mean_switches >= d.mean_switches - 1e-9,
            "{ablation:#?}"
        );
    }
}
