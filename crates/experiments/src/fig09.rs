//! Fig. 9 — DORA across page complexity and interference intensity.
//!
//! A drill-down on one low-complexity page (Amazon) and one
//! high-complexity page (IMDB), each under low/medium/high interference:
//! for `performance`, the static `fD` and `fE` pins and `DORA`, the PPW
//! normalized to `interactive` and the load time, with the chosen
//! frequencies annotated. Paper findings reproduced here:
//!
//! * Amazon's `fD` hovers at the bottom of the range and `fE` well above
//!   it, so DORA behaves like EE and gains up to ~27 %;
//! * IMDB's `fD` sits at 1.9–2.2 GHz, so DORA behaves like DL with
//!   modest (1–10 %) gains;
//! * rising interference pushes `fD` upward and load time with it.

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, Table};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::Policy;
use dora_campaign::workload::WorkloadSet;
use dora_coworkloads::Intensity;
use std::collections::BTreeMap;

/// One (page, intensity) cell of the figure.
#[derive(Debug, Clone)]
pub struct Fig09Cell {
    /// Page name.
    pub page: String,
    /// Co-runner intensity.
    pub intensity: Intensity,
    /// Per-governor `(normalized PPW, load time s, mean frequency GHz)`.
    pub by_governor: BTreeMap<String, (f64, f64, f64)>,
    /// The measured oracle `fD` in GHz (`None` when infeasible).
    pub fd_ghz: Option<f64>,
    /// The measured oracle `fE` in GHz.
    pub fe_ghz: f64,
}

/// The Fig. 9 dataset.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// Six cells: {Amazon, IMDB} × {low, medium, high}.
    pub cells: Vec<Fig09Cell>,
}

/// The governors shown in the figure (plus the baseline).
pub const GOVERNORS: [&str; 5] = ["interactive", "performance", "fD", "fE", "DORA"];

/// Runs the drill-down.
///
/// # Panics
///
/// Panics on internal policy errors (models are always supplied here).
pub fn run(pipeline: &Pipeline) -> Fig09 {
    let all = WorkloadSet::paper54();
    let mut cells = Vec::new();
    for page in ["Amazon", "IMDB"] {
        for intensity in Intensity::ALL {
            let workload = all
                .find_by_class(page, intensity)
                .expect("page x class exists")
                .clone();
            let set = WorkloadSet::from_workloads(vec![workload.clone()]);
            let eval = CampaignDriver::new()
                .executor(pipeline.executor)
                .evaluate(
                    &set,
                    &[
                        Policy::Interactive,
                        Policy::Performance,
                        Policy::OracleFd,
                        Policy::OracleFe,
                        Policy::Dora,
                    ],
                    Some(&pipeline.models),
                    &pipeline.scenario,
                )
                .expect("models supplied");
            let base = eval.results_for("interactive")[0].ppw.value();
            let by_governor = GOVERNORS
                .iter()
                .map(|g| {
                    let r = eval.results_for(g)[0];
                    (
                        (*g).to_string(),
                        (
                            r.ppw.value() / base,
                            r.load_time.value(),
                            r.mean_frequency.as_ghz(),
                        ),
                    )
                })
                .collect();
            let oracle = &eval.oracles()[&workload.id()];
            cells.push(Fig09Cell {
                page: page.to_string(),
                intensity,
                by_governor,
                fd_ghz: oracle.fd.map(|f| f.as_ghz()),
                fe_ghz: oracle.fe.as_ghz(),
            });
        }
    }
    Fig09 { cells }
}

impl Fig09 {
    /// The cells of one page, in intensity order.
    pub fn page_cells(&self, page: &str) -> Vec<&Fig09Cell> {
        self.cells.iter().filter(|c| c.page == page).collect()
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 9: DORA vs page complexity and interference\n\n");
        for page in ["Amazon", "IMDB"] {
            let mut t = Table::new(vec![
                "Intensity".into(),
                "fD (GHz)".into(),
                "fE (GHz)".into(),
                "gov".into(),
                "PPW vs interactive".into(),
                "load (s)".into(),
                "mean f (GHz)".into(),
            ]);
            for cell in self.page_cells(page) {
                for g in GOVERNORS.iter().skip(1) {
                    let (ppw, load, freq) = cell.by_governor[*g];
                    t.row(vec![
                        cell.intensity.to_string(),
                        cell.fd_ghz.map_or("-".into(), |f| fmt_f(f, 2)),
                        fmt_f(cell.fe_ghz, 2),
                        (*g).to_string(),
                        fmt_f(ppw, 3),
                        fmt_f(load, 2),
                        fmt_f(freq, 2),
                    ]);
                }
            }
            out.push_str(&format!("{page}\n{}\n", t.render()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "six oracle sweeps plus evaluations; exercised by the fig09 binary"]
    fn reproduces_fig9_regimes() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline);
        assert_eq!(fig.cells.len(), 6);
        // Amazon: easy page — fD well below fE at low/medium intensity.
        let amazon = fig.page_cells("Amazon");
        let low = amazon[0];
        let fd = low.fd_ghz.expect("Amazon+low is feasible");
        assert!(fd < low.fe_ghz, "Amazon low: fD {fd} vs fE {}", low.fe_ghz);
        // DORA gains visibly on Amazon.
        assert!(low.by_governor["DORA"].0 > 1.05);
        // IMDB: hard page — fD (when feasible) is >= 1.9 GHz.
        for cell in fig.page_cells("IMDB") {
            if let Some(fd) = cell.fd_ghz {
                assert!(fd > 1.8, "IMDB fD {fd} at {}", cell.intensity);
            }
        }
        // Interference pushes Amazon's fD upward (low -> high).
        let fd_low = amazon[0].fd_ghz.expect("feasible");
        let fd_high = amazon[2].fd_ghz.expect("feasible");
        assert!(fd_high >= fd_low);
    }
}
