//! Section V-A — the response-surface selection study.
//!
//! The paper trains all three hypothesized surfaces (Eq. 2 linear, Eq. 3
//! quadratic, Eq. 4 interaction) for both responses and reports:
//! "the interaction and quadratic models achieve the highest accuracy for
//! web page load time prediction. Due to relative simplicity of the
//! interaction model, we choose this … In case of power consumption
//! estimation, all three models achieve a similar prediction accuracy.
//! Since a linear model is simpler, we adopt it."
//!
//! This module reruns the comparison on held-out measurements and renders
//! the error table that justified those choices, including each model's
//! term count (the paper's "simplicity" axis).

use crate::fig05::evaluation_observations;
use crate::pipeline::Pipeline;
use crate::report::{fmt_f, Table};
use dora::trainer::compare_surface_kinds;
use dora_modeling::metrics::EvalSummary;
use dora_modeling::surface::{ResponseSurface, SurfaceKind};

/// One surface kind's held-out quality for both responses.
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// The response-surface form.
    pub kind: SurfaceKind,
    /// Model terms (the simplicity axis).
    pub terms: usize,
    /// Held-out load-time quality.
    pub time: EvalSummary,
    /// Held-out power quality.
    pub power: EvalSummary,
}

/// The study dataset.
#[derive(Debug, Clone)]
pub struct ModelSelection {
    /// One row per surface kind.
    pub rows: Vec<SelectionRow>,
}

/// Runs the comparison: train on the pipeline's campaign, evaluate on
/// fresh held-out measurements.
///
/// # Panics
///
/// Panics if a surface kind fails to train — the campaign grids are
/// identifiable by construction, so that indicates a broken build.
pub fn run(pipeline: &Pipeline) -> ModelSelection {
    let eval_set: Vec<_> = evaluation_observations(pipeline)
        .into_iter()
        .filter(|(_, training, _)| !training)
        .map(|(_, _, obs)| obs)
        .collect();
    let report = compare_surface_kinds(
        &pipeline.observations,
        &eval_set,
        &pipeline.leakage_observations,
        &pipeline.scenario.board.dvfs,
        pipeline.scenario.seed,
    )
    .expect("campaign grids are identifiable");
    let rows = report
        .into_iter()
        .map(|(kind, time, power)| SelectionRow {
            kind,
            terms: ResponseSurface::new(kind, 9).term_count(),
            time,
            power,
        })
        .collect();
    ModelSelection { rows }
}

impl ModelSelection {
    /// The row for a kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is absent (never happens for `run` output).
    pub fn row(&self, kind: SurfaceKind) -> &SelectionRow {
        self.rows
            .iter()
            .find(|r| r.kind == kind)
            .expect("all three kinds present")
    }

    /// The paper's conclusion as a predicate: interaction competitive with
    /// quadratic on load time (within 2 points of MAPE) while simpler, and
    /// linear within 2 points of everything on power.
    pub fn paper_choices_justified(&self) -> bool {
        let inter = self.row(SurfaceKind::Interaction);
        let quad = self.row(SurfaceKind::Quadratic);
        let lin = self.row(SurfaceKind::Linear);
        let time_ok = inter.time.mape < quad.time.mape + 0.02 && inter.terms < quad.terms;
        let power_ok = lin.power.mape < inter.power.mape.min(quad.power.mape) + 0.02
            && lin.terms < inter.terms;
        time_ok && power_ok
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Surface".into(),
            "terms".into(),
            "time MAPE (%)".into(),
            "time R2".into(),
            "power MAPE (%)".into(),
            "power R2".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.kind.to_string(),
                r.terms.to_string(),
                fmt_f(r.time.mape * 100.0, 2),
                fmt_f(r.time.r_squared, 4),
                fmt_f(r.power.mape * 100.0, 2),
                fmt_f(r.power.r_squared, 4),
            ]);
        }
        format!(
            "Section V-A: response-surface selection (held-out pages)\n{}\
             paper's picks justified (interaction for time, linear for power): {}\n",
            t.render(),
            self.paper_choices_justified()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "needs the trained pipeline plus a held-out campaign; exercised by the model_selection binary"]
    fn paper_model_choices_hold() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let study = run(&pipeline);
        assert_eq!(study.rows.len(), 3);
        assert!(study.paper_choices_justified(), "{:#?}", study.rows);
        // The chosen models are accurate in the paper's band.
        let inter = study.row(SurfaceKind::Interaction);
        assert!(inter.time.mape < 0.08, "time MAPE {:.3}", inter.time.mape);
        let lin = study.row(SurfaceKind::Linear);
        assert!(lin.power.mape < 0.08, "power MAPE {:.3}", lin.power.mape);
    }
}
