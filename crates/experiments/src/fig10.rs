//! Fig. 10 — the leakage term matters.
//!
//! (a) `DORA` vs `DORA_no_lkg` on Amazon with a medium-intensity
//! co-runner: ignoring the temperature-dependent leakage when predicting
//! power picks a hotter-than-optimal frequency and costs ~10 % PPW in the
//! paper.
//!
//! (b) Sustained-browsing device power across frequencies at room versus
//! cold ambient: at room temperature the high-frequency tail inflates
//! (hot die ⇒ more leakage ⇒ hotter still), which moves the measured
//! `fopt` down one bin (1.9 → 1.7 GHz in the paper).

use crate::pipeline::Pipeline;
use crate::report::{fmt_f, render_series, Table};
use dora::{DoraConfig, DoraGovernor};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::runner::run_scenario;
use dora_campaign::workload::WorkloadSet;
use dora_coworkloads::Intensity;
use dora_governors::{InteractiveGovernor, PinnedGovernor};
use dora_soc::board::BoardConfig;
use dora_soc::Frequency;

/// Panel (a): the ablation on Amazon+medium.
#[derive(Debug, Clone)]
pub struct LeakageAblation {
    /// DORA's PPW normalized to interactive.
    pub dora_nppw: f64,
    /// DORA_no_lkg's PPW normalized to interactive.
    pub no_lkg_nppw: f64,
    /// Mean frequency each variant settled on (GHz): `(DORA, no_lkg)`.
    pub mean_freqs_ghz: (f64, f64),
}

/// Panel (b): one ambient condition's sweep.
#[derive(Debug, Clone)]
pub struct AmbientSweep {
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// `(frequency GHz, mean power W, peak die °C)` per ladder frequency.
    pub rows: Vec<(f64, f64, f64)>,
    /// The measured PPW-optimal frequency for the Fig. 10 workload.
    pub fopt: Frequency,
}

/// The Fig. 10 dataset.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Panel (a).
    pub ablation: LeakageAblation,
    /// Panel (b) at room ambient.
    pub room: AmbientSweep,
    /// Panel (b) at cold ambient.
    pub cold: AmbientSweep,
}

fn ablation(pipeline: &Pipeline) -> LeakageAblation {
    // The ablation needs the PPW optimum inside the leakage-sensitive
    // high-voltage band (the paper's Amazon sits at 1.9 GHz; with this
    // reproduction's power balance Amazon's optimum is lower, so the
    // compute-lean ESPN under a just-feasible 4 s target plays its role:
    // its unconstrained optimum falls at 1.7-2.0 GHz where hot leakage
    // decides between bins).
    let set = WorkloadSet::paper54();
    let workload = set
        .find_by_class("ESPN", Intensity::Medium)
        .expect("ESPN+medium exists");
    let config = &pipeline
        .scenario
        .to_builder()
        .deadline(dora::units::Seconds::new(4.0))
        .build();
    let mut interactive = InteractiveGovernor::new(config.board.dvfs.clone());
    let base = run_scenario(workload, &mut interactive, config).ppw.value();
    let run_variant = |include_leakage: bool| {
        let mut g = DoraGovernor::new(
            pipeline.models.clone(),
            workload.page.features,
            DoraConfig {
                include_leakage,
                qos_target: dora::units::Seconds::new(4.0),
                ..DoraConfig::default()
            },
        );
        run_scenario(workload, &mut g, config)
    };
    let with = run_variant(true);
    let without = run_variant(false);
    LeakageAblation {
        dora_nppw: with.ppw.value() / base,
        no_lkg_nppw: without.ppw.value() / base,
        mean_freqs_ghz: (
            with.mean_frequency.as_ghz(),
            without.mean_frequency.as_ghz(),
        ),
    }
}

fn ambient_sweep(pipeline: &Pipeline, board: BoardConfig) -> AmbientSweep {
    let ambient_c = board.thermal.ambient.value();
    let config = pipeline.scenario.to_builder().board(board).build();
    let set = WorkloadSet::paper54();
    let workload = set
        .find_by_class("Amazon", Intensity::Medium)
        .expect("Amazon+medium exists");
    let rows = config
        .board
        .dvfs
        .paper_ladder()
        .into_iter()
        .map(|f| {
            let mut pinned = PinnedGovernor::new("pin", f);
            let r = run_scenario(workload, &mut pinned, &config);
            (f.as_ghz(), r.mean_power.value(), r.final_temp.value())
        })
        .collect();
    let o = CampaignDriver::new()
        .executor(pipeline.executor)
        .oracle(workload, &config);
    AmbientSweep {
        ambient_c,
        rows,
        fopt: o.fopt,
    }
}

/// Measures both panels.
pub fn run(pipeline: &Pipeline) -> Fig10 {
    let room = dora_soc::SocProfile::msm8974().board_config();
    let cold = BoardConfig {
        thermal: dora_soc::thermal::ThermalParams::nexus5_cold(),
        ..room.clone()
    };
    Fig10 {
        ablation: ablation(pipeline),
        room: ambient_sweep(pipeline, room),
        cold: ambient_sweep(pipeline, cold),
    }
}

impl Fig10 {
    /// The PPW advantage of modelling leakage (fraction; paper ~10 %).
    pub fn leakage_advantage(&self) -> f64 {
        self.ablation.dora_nppw / self.ablation.no_lkg_nppw - 1.0
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut b = Table::new(vec![
            "Freq (GHz)".into(),
            format!("power @ {:.0}C amb (W)", self.cold.ambient_c),
            format!("power @ {:.0}C amb (W)", self.room.ambient_c),
            "room - cold (W)".into(),
            "peak die @ room (C)".into(),
        ]);
        for (cold_row, room_row) in self.cold.rows.iter().zip(&self.room.rows) {
            b.row(vec![
                fmt_f(cold_row.0, 2),
                fmt_f(cold_row.1, 2),
                fmt_f(room_row.1, 2),
                fmt_f(room_row.1 - cold_row.1, 2),
                fmt_f(room_row.2, 1),
            ]);
        }
        let room_series: Vec<(f64, f64)> = self.room.rows.iter().map(|r| (r.0, r.1)).collect();
        let cold_series: Vec<(f64, f64)> = self.cold.rows.iter().map(|r| (r.0, r.1)).collect();
        format!(
            "Fig. 10(a): leakage-aware vs leakage-blind DORA (ESPN+medium, 4s target)\n\
             DORA PPW vs interactive:        {}\n\
             DORA_no_lkg PPW vs interactive: {}\n\
             leakage-awareness advantage:    {}\n\
             mean frequency: DORA {} GHz, no_lkg {} GHz\n\n\
             Fig. 10(b): device power vs frequency under two ambients\n{}\
             measured fopt: room {}  cold {}\n\n{}{}",
            fmt_f(self.ablation.dora_nppw, 3),
            fmt_f(self.ablation.no_lkg_nppw, 3),
            fmt_f(self.leakage_advantage() * 100.0, 1) + "%",
            fmt_f(self.ablation.mean_freqs_ghz.0, 2),
            fmt_f(self.ablation.mean_freqs_ghz.1, 2),
            b.render(),
            self.room.fopt,
            self.cold.fopt,
            render_series("power_room", &room_series),
            render_series("power_cold", &cold_series),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    #[ignore = "needs the trained pipeline plus two ambient sweeps; exercised by the fig10 binary"]
    fn reproduces_fig10_shape() {
        let pipeline = Pipeline::build(Scale::Full, 42);
        let fig = run(&pipeline);
        // (a) modelling leakage does not hurt, and typically helps.
        assert!(
            fig.leakage_advantage() > -0.02,
            "leakage model should not hurt: {:.3}",
            fig.leakage_advantage()
        );
        // (b) room ambient draws more power at every frequency, and the
        // gap widens toward the top (hot leakage).
        let gaps: Vec<f64> = fig
            .room
            .rows
            .iter()
            .zip(&fig.cold.rows)
            .map(|(r, c)| r.1 - c.1)
            .collect();
        assert!(gaps.iter().all(|&g| g > 0.0), "{gaps:?}");
        assert!(
            gaps.last().expect("rows") > gaps.first().expect("rows"),
            "gap must widen with frequency: {gaps:?}"
        );
        // The room fopt never exceeds the cold fopt.
        assert!(fig.room.fopt <= fig.cold.fopt);
    }
}
