//! Table III — web page and co-run application classification.
//!
//! The paper classifies pages by alone-load-time (< 2 s vs > 2 s at the
//! top frequency) and kernels by solo L2 MPKI (< 1 / 1–7 / > 7). Both
//! classifications are *measured* here, and the module reports whether
//! each measurement lands in its published class.

use crate::report::{fmt_f, Table};
use dora_browser::catalog::{Catalog, PageClass};
use dora_campaign::runner::{run_page, ScenarioConfig};
use dora_coworkloads::{Intensity, Kernel};
use dora_governors::PinnedGovernor;
use dora_sim_core::SimDuration;
use dora_soc::board::Board;

/// One measured page row.
#[derive(Debug, Clone)]
pub struct PageRow {
    /// Page name.
    pub name: String,
    /// Published class.
    pub class: PageClass,
    /// Measured alone-load-time at the top frequency, seconds.
    pub alone_load_s: f64,
    /// Whether the measurement lands in the published class.
    pub consistent: bool,
}

/// One measured kernel row.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Published intensity class.
    pub class: Intensity,
    /// Measured solo L2 MPKI.
    pub solo_mpki: f64,
    /// Whether the measurement lands in the published class.
    pub consistent: bool,
}

/// The measured Table III.
#[derive(Debug, Clone)]
pub struct Table03 {
    /// Page classification rows.
    pub pages: Vec<PageRow>,
    /// Kernel classification rows.
    pub kernels: Vec<KernelRow>,
}

/// Measures both classifications.
pub fn run(config: &ScenarioConfig) -> Table03 {
    let catalog = Catalog::alexa18();
    let fmax = config.board.dvfs.max_frequency();
    let pages = catalog
        .pages()
        .iter()
        .map(|page| {
            let mut pinned = PinnedGovernor::new("pin", fmax);
            let r = run_page(page, None, &mut pinned, config);
            let load_s = r.load_time.value();
            let consistent = match page.class {
                PageClass::Low => load_s < 2.0,
                PageClass::High => load_s > 2.0,
            };
            PageRow {
                name: page.name.to_string(),
                class: page.class,
                alone_load_s: load_s,
                consistent,
            }
        })
        .collect();

    let kernels = Kernel::all()
        .into_iter()
        .map(|kernel| {
            let mut board = Board::new(config.board.clone(), config.seed);
            board.set_frequency(fmax).expect("table frequency");
            board
                .assign(2, Box::new(kernel.spawn(config.seed)))
                .expect("fresh board");
            board.step(SimDuration::from_secs(1));
            let solo_mpki = board.counters(2).mpki().value();
            KernelRow {
                name: kernel.name().to_string(),
                class: kernel.intensity(),
                solo_mpki,
                consistent: Intensity::classify(solo_mpki) == kernel.intensity(),
            }
        })
        .collect();

    Table03 { pages, kernels }
}

impl Table03 {
    /// Whether every measurement matched its published class.
    pub fn all_consistent(&self) -> bool {
        self.pages.iter().all(|p| p.consistent) && self.kernels.iter().all(|k| k.consistent)
    }

    /// Renders both halves of the table.
    pub fn render(&self) -> String {
        let mut pages = Table::new(vec![
            "Page".into(),
            "Class".into(),
            "Alone load (s)".into(),
            "Consistent".into(),
        ]);
        for p in &self.pages {
            pages.row(vec![
                p.name.clone(),
                p.class.to_string(),
                fmt_f(p.alone_load_s, 2),
                p.consistent.to_string(),
            ]);
        }
        let mut kernels = Table::new(vec![
            "Co-run kernel".into(),
            "Class".into(),
            "Solo L2 MPKI".into(),
            "Consistent".into(),
        ]);
        for k in &self.kernels {
            kernels.row(vec![
                k.name.clone(),
                k.class.to_string(),
                fmt_f(k.solo_mpki, 2),
                k.consistent.to_string(),
            ]);
        }
        format!(
            "Table III(a): Web page classification (alone @ fmax, 2s threshold)\n{}\n\
             Table III(b): Co-run application classification (solo L2 MPKI)\n{}",
            pages.render(),
            kernels.render()
        )
    }
}

/// The default board/scenario for this table (3 s warm-up keeps it fast;
/// classification does not depend on die temperature).
pub fn default_config() -> ScenarioConfig {
    ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(3))
        .board(dora_soc::SocProfile::msm8974().board_config())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_classes_match_table3() {
        let t = run(&default_config());
        assert_eq!(t.pages.len(), 18);
        assert_eq!(t.kernels.len(), 9);
        let bad: Vec<String> = t
            .pages
            .iter()
            .filter(|p| !p.consistent)
            .map(|p| format!("{} ({:.2}s)", p.name, p.alone_load_s))
            .chain(
                t.kernels
                    .iter()
                    .filter(|k| !k.consistent)
                    .map(|k| format!("{} ({:.2} MPKI)", k.name, k.solo_mpki)),
            )
            .collect();
        assert!(t.all_consistent(), "inconsistent: {bad:?}");
    }
}
