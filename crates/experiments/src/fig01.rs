//! Fig. 1 — impact of memory interference on Reddit's load time across
//! frequencies.
//!
//! The paper plots, for each of eight frequencies from 0.7 to 2.2 GHz,
//! the range of Reddit load times under co-runners of different memory
//! intensities, against 2/3/4-second deadlines. The punchline: at a fixed
//! frequency the *same page* can swing from meeting to missing a deadline
//! purely due to interference — e.g. 0.9 GHz meets 3 s only when
//! interference is low.

use crate::report::{fmt_f, Table};
use dora_browser::catalog::Catalog;
use dora_campaign::runner::{run_page, ScenarioConfig};
use dora_coworkloads::Kernel;
use dora_governors::PinnedGovernor;
use dora_soc::Frequency;

/// Load times at one frequency under the four interference conditions.
#[derive(Debug, Clone)]
pub struct Fig01Row {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Load time with no co-runner.
    pub alone_s: f64,
    /// Load time with the low-intensity representative (kmeans).
    pub low_s: f64,
    /// Load time with the medium-intensity representative (bfs).
    pub medium_s: f64,
    /// Load time with the high-intensity representative (backprop).
    pub high_s: f64,
}

impl Fig01Row {
    /// The smallest load time at this frequency.
    pub fn min_s(&self) -> f64 {
        self.alone_s
            .min(self.low_s)
            .min(self.medium_s)
            .min(self.high_s)
    }

    /// The largest load time at this frequency.
    pub fn max_s(&self) -> f64 {
        self.alone_s
            .max(self.low_s)
            .max(self.medium_s)
            .max(self.high_s)
    }
}

/// The Fig. 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig01 {
    /// One row per paper-ladder frequency, ascending.
    pub rows: Vec<Fig01Row>,
}

/// Measures the figure.
pub fn run(config: &ScenarioConfig) -> Fig01 {
    let catalog = Catalog::alexa18();
    let reddit = catalog.page("Reddit").expect("Reddit in catalog");
    let [low, medium, high] = Kernel::representatives();
    let measure = |freq: Frequency, kernel: Option<&Kernel>| -> f64 {
        let mut pinned = PinnedGovernor::new("pin", freq);
        run_page(reddit, kernel, &mut pinned, config)
            .load_time
            .value()
    };
    let rows = config
        .board
        .dvfs
        .paper_ladder()
        .into_iter()
        .map(|f| Fig01Row {
            freq_ghz: f.as_ghz(),
            alone_s: measure(f, None),
            low_s: measure(f, Some(&low)),
            medium_s: measure(f, Some(&medium)),
            high_s: measure(f, Some(&high)),
        })
        .collect();
    Fig01 { rows }
}

impl Fig01 {
    /// Renders the table with the 2/3/4 s deadline verdict columns the
    /// paper draws as horizontal lines.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Freq (GHz)".into(),
            "alone (s)".into(),
            "low (s)".into(),
            "medium (s)".into(),
            "high (s)".into(),
            "range".into(),
            "meets 3s".into(),
        ]);
        for r in &self.rows {
            let verdict = if r.max_s() <= 3.0 {
                "always"
            } else if r.min_s() <= 3.0 {
                "depends on interference"
            } else {
                "never"
            };
            t.row(vec![
                fmt_f(r.freq_ghz, 2),
                fmt_f(r.alone_s, 2),
                fmt_f(r.low_s, 2),
                fmt_f(r.medium_s, 2),
                fmt_f(r.high_s, 2),
                format!("{}-{}", fmt_f(r.min_s(), 2), fmt_f(r.max_s(), 2)),
                verdict.to_string(),
            ]);
        }
        format!(
            "Fig. 1: Reddit load time vs core frequency under memory interference\n\
             (deadlines of interest: 2s / 3s / 4s)\n{}",
            t.render()
        )
    }

    /// The frequencies where the 3 s verdict flips with interference —
    /// the paper's motivating observation.
    pub fn interference_sensitive_frequencies(&self) -> Vec<f64> {
        self.rows
            .iter()
            .filter(|r| r.min_s() <= 3.0 && r.max_s() > 3.0)
            .map(|r| r.freq_ghz)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_sim_core::SimDuration;

    fn quick() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(3))
            .build()
    }

    #[test]
    fn reproduces_fig1_shape() {
        let fig = run(&quick());
        assert_eq!(fig.rows.len(), 8);
        for r in &fig.rows {
            // Interference only slows the page down.
            assert!(r.alone_s <= r.low_s + 0.02, "{r:?}");
            assert!(r.low_s <= r.medium_s + 0.05, "{r:?}");
            assert!(r.medium_s <= r.high_s + 0.10, "{r:?}");
        }
        // Load time falls as frequency rises (alone series).
        for pair in fig.rows.windows(2) {
            assert!(pair[0].alone_s > pair[1].alone_s);
        }
        // The paper's punchline: some frequency's 3s verdict depends on
        // the co-runner.
        assert!(
            !fig.interference_sensitive_frequencies().is_empty(),
            "no frequency shows the deadline flip: {:#?}",
            fig.rows
        );
        // At the top frequency Reddit always meets 3 s; at the bottom it
        // misses under heavy interference (Fig. 1's ~4-5.5s band).
        let top = fig.rows.last().expect("eight rows");
        assert!(top.max_s() < 3.0, "top row {top:?}");
        let bottom = &fig.rows[0];
        assert!(bottom.high_s > 3.0, "bottom row {bottom:?}");
    }
}
