//! The shared train-once pipeline.
//!
//! Every DORA-family experiment needs the trained model bundle. This
//! module runs the paper's offline methodology end to end:
//!
//! 1. the training campaign — Webpage-Inclusive workloads × the DVFS
//!    table at pinned frequencies (Section IV-C's "over 300
//!    measurements"; the full grid is 42 × 14 = 588);
//! 2. the idle leakage calibration across operating points and ambient
//!    temperatures;
//! 3. the trainer — interaction surface for load time, linear for power,
//!    Levenberg–Marquardt for Eq. 5 (the paper's Section V-A picks).

use dora::trainer::{train, TrainerConfig, TrainingObservation};
use dora::DoraModels;
use dora_campaign::driver::CampaignDriver;
use dora_campaign::training::TrainingCampaignConfig;
use dora_campaign::workload::WorkloadSet;
use dora_campaign::{Executor, ScenarioConfig};
use dora_modeling::leakage::LeakageObservation;
use dora_soc::Frequency;

/// How much of the measurement grid to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full grid: all 42 training workloads × 14 frequencies.
    Full,
    /// A reduced grid for fast tests: every other training workload ×
    /// seven frequencies.
    Quick,
}

/// The trained pipeline artifacts shared by the experiments.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The trained DORA model bundle.
    pub models: DoraModels,
    /// The raw training observations (for Fig. 5's error analysis).
    pub observations: Vec<TrainingObservation>,
    /// The leakage calibration points.
    pub leakage_observations: Vec<LeakageObservation>,
    /// The scenario configuration the campaign ran with (reuse it for
    /// evaluations so conditions match training).
    pub scenario: ScenarioConfig,
    /// The workload set.
    pub workloads: WorkloadSet,
    /// The executor the campaign ran on (reuse it for evaluations).
    pub executor: Executor,
}

impl Pipeline {
    /// Runs the campaign and trains the models at the given scale, on
    /// all available cores.
    ///
    /// Campaign fan-out is deterministic (see
    /// [`dora_campaign::executor`]), so the trained models are identical
    /// to a sequential build.
    ///
    /// # Panics
    ///
    /// Panics if training fails — with the built-in campaign grids the
    /// design is always identifiable, so a failure indicates a broken
    /// build rather than an environmental condition.
    pub fn build(scale: Scale, seed: u64) -> Self {
        Pipeline::build_with(scale, seed, &Executor::auto())
    }

    /// [`Pipeline::build`] on a caller-chosen executor (what the CLI's
    /// `--jobs` flag feeds).
    ///
    /// # Panics
    ///
    /// Panics if training fails, as for [`Pipeline::build`].
    pub fn build_with(scale: Scale, seed: u64, executor: &Executor) -> Self {
        let scenario = ScenarioConfig::builder().seed(seed).build();
        let workloads = WorkloadSet::paper54();
        let (set_for_training, frequencies) = match scale {
            Scale::Full => (workloads.clone(), None),
            Scale::Quick => {
                let subset = WorkloadSet::from_workloads(
                    workloads
                        .workloads()
                        .iter()
                        .enumerate()
                        .filter(|(i, w)| w.is_training() && i % 2 == 0)
                        .map(|(_, w)| w.clone())
                        .collect(),
                );
                let freqs: Vec<Frequency> = scenario.board.dvfs.frequencies().step_by(2).collect();
                (subset, Some(freqs))
            }
        };
        let campaign_config = TrainingCampaignConfig {
            scenario: scenario.clone(),
            frequencies,
        };
        let driver = CampaignDriver::new().executor(*executor);
        let observations = driver.training_campaign(&set_for_training, &campaign_config);
        let leakage_observations = driver.leakage_calibration(
            &scenario.board,
            &[5.0, 15.0, 25.0, 35.0, 45.0].map(dora::units::Celsius::new),
        );
        let models = train(
            &observations,
            &leakage_observations,
            &scenario.board.dvfs,
            TrainerConfig::default(),
        )
        .expect("campaign grids are identifiable by construction");
        Pipeline {
            models,
            observations,
            leakage_observations,
            scenario,
            workloads,
            executor: *executor,
        }
    }

    /// The paper's full-scale pipeline with the default seed.
    pub fn full() -> Self {
        Pipeline::build(Scale::Full, 42)
    }

    /// The reduced pipeline for tests and smoke runs.
    pub fn quick() -> Self {
        Pipeline::build(Scale::Quick, 42)
    }
}
