//! # criterion (in-tree subset)
//!
//! A dependency-free, offline-compatible implementation of the slice of
//! the [Criterion](https://docs.rs/criterion) benchmarking API this
//! workspace uses: `Criterion::bench_function`, benchmark groups, the
//! `criterion_group!`/`criterion_main!` macros, and the builder knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`).
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, sizes
//! an iteration batch so one sample costs roughly
//! `measurement_time / sample_size`, then reports the min/median/max of
//! the per-iteration times across samples:
//!
//! ```text
//! algorithm1_select_frequency
//!                         time:   [2.1040 µs 2.1103 µs 2.1287 µs]
//! ```
//!
//! Running with `--test` (as `cargo test --benches` does) executes every
//! benchmark body exactly once, asserting it still runs, without timing.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: configuration plus a name filter from argv.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "need at least two samples");
        self.sample_size = samples;
        self
    }

    /// Sets the time budget for one benchmark's timed region.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_time = budget;
        self
    }

    /// Sets the warm-up duration before timing starts.
    #[must_use]
    pub fn warm_up_time(mut self, budget: Duration) -> Self {
        self.warm_up_time = budget;
        self
    }

    /// Applies the command line: `--test` switches to run-once mode and
    /// the first free argument becomes a substring filter, matching what
    /// `cargo bench <filter>` passes.
    fn configure_from_args(&mut self) {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // `--bench` is a cargo marker to swallow.
                "--bench" => {}
                // `--profile-time` takes a value we ignore.
                "--profile-time" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => {
                    self.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
    }

    fn admits(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.admits(id) {
            let mut bencher = Bencher {
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
                warm_up_time: self.warm_up_time,
                test_mode: self.test_mode,
                report: None,
            };
            body(&mut bencher);
            bencher.print(id);
        }
        self
    }

    /// Starts a named group of benchmarks sharing configuration tweaks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks (`criterion.benchmark_group(..)`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples >= 2, "need at least two samples");
        self.sample_size = Some(samples);
        self
    }

    /// Overrides the measurement budget within this group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = Some(budget);
        self
    }

    /// Runs one benchmark under the group's name prefix.
    pub fn bench_function<F>(&mut self, id: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        if self.parent.admits(&full) {
            let mut bencher = Bencher {
                sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
                measurement_time: self
                    .measurement_time
                    .unwrap_or(self.parent.measurement_time),
                warm_up_time: self.parent.warm_up_time,
                test_mode: self.parent.test_mode,
                report: None,
            };
            body(&mut bencher);
            bencher.print(&full);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing statistics of one benchmark, nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Report {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

/// The per-benchmark measurement handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    #[allow(clippy::disallowed_methods)] // the harness is the one sanctioned wall-clock consumer
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up: also estimates the cost of one iteration.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Batch size so one sample costs ~ measurement_time / sample_size.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)).round() as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        self.report = Some(Report {
            min_ns: samples_ns[0],
            median_ns: samples_ns[samples_ns.len() / 2],
            max_ns: samples_ns[samples_ns.len() - 1],
        });
    }

    fn print(&self, id: &str) {
        match self.report {
            Some(r) => println!(
                "{id}\n                        time:   [{} {} {}]",
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.max_ns)
            ),
            None if self.test_mode => println!("{id}: test passed"),
            None => {}
        }
    }
}

/// Formats nanoseconds with criterion-style units.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.4} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.4} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.4} ms", ns / 1_000_000.0)
    } else {
        format!("{:.4} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
///
/// Both upstream forms are supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $crate::Criterion::configure_from_args_pub(&mut criterion);
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Public shim for the `criterion_group!` macro expansion.
    #[doc(hidden)]
    pub fn configure_from_args_pub(criterion: &mut Criterion) {
        criterion.configure_from_args();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut runs = 0u64;
        c.bench_function("tiny", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_apply_overrides_and_filter() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        c.filter = Some("wanted".to_string());
        let mut wanted = 0u64;
        let mut skipped = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("wanted", |b| b.iter(|| wanted += 1));
            group.bench_function("other", |b| b.iter(|| skipped += 1));
            group.finish();
        }
        assert!(wanted > 0);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn formats_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
