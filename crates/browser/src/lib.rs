//! # dora-browser
//!
//! The web-browsing workload of the DORA reproduction.
//!
//! The paper drives Firefox over the 18 most-visited Alexa pages, with the
//! pages stored locally so network latency is out of the picture
//! (Section IV-B) — the measured load time is pure rendering-engine work.
//! Following Zhu et al. (HPCA'13), whom the paper cites for the insight,
//! load time is dominated by a handful of static page-complexity features:
//! the number of DOM tree nodes, `class` and `href` attributes, and `a`
//! and `div` tags (Table I, X1–X5).
//!
//! This crate makes that relationship *generative* rather than merely
//! correlational:
//!
//! * [`page`] — [`page::PageFeatures`] carries exactly the Table I feature
//!   vector, plus a synthesizer for random-but-plausible pages.
//! * [`catalog`] — named profiles for the paper's 18 pages, whose
//!   complexity ordering reproduces Table III's load-time classes.
//! * [`html`] — Table I feature extraction from *real* HTML documents
//!   (a small forgiving tokenizer), so profiles aren't limited to the
//!   built-in catalog.
//! * [`engine`] — a rendering-engine model that compiles a feature vector
//!   into a parse → DOM → style → layout → paint → script pipeline of
//!   [`dora_soc::task::PhasedTask`] phases. Instruction budgets and cache
//!   working sets are affine in the features, so a regression over
//!   simulator measurements recovers the same structural model the paper
//!   trains on the phone.
//!
//! # Example
//!
//! ```
//! use dora_browser::catalog::Catalog;
//! use dora_browser::engine::RenderEngine;
//!
//! let catalog = Catalog::alexa18();
//! let reddit = catalog.page("Reddit").expect("in catalog");
//! let engine = RenderEngine::default();
//! let job = engine.spawn(reddit, 42);
//! assert!(job.main.total_instructions() > 1.0e8);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod html;
pub mod page;

pub use catalog::Catalog;
pub use engine::{BrowserJob, RenderEngine};
pub use page::PageFeatures;
