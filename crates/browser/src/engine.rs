//! The rendering-engine workload model.
//!
//! Section II-A abstracts a browser into networking and rendering, and the
//! paper studies rendering only (pages are served from memory). The
//! rendering engine parses HTML into a DOM tree, attaches CSS to form the
//! render tree, then performs layout and paint. This module compiles a
//! [`PageFeatures`] vector into that pipeline as a
//! [`PhasedTask`]: six stages whose instruction budgets are affine in the
//! features and whose cache behaviour tracks what each stage touches.
//!
//! Firefox in the paper runs on **two** cores (Section IV-B); a spawn
//! therefore yields a [`BrowserJob`] with a `main` task (the critical path
//! whose completion defines load time) and an `aux` task (image decoding /
//! compositor helper) for the second core.

use crate::page::PageFeatures;
use dora_sim_core::Rng;
use dora_soc::task::{PhaseProfile, PhasedTask};

/// Tunable coefficients of the engine model.
///
/// Instruction budgets: `I = base + Σ coefficient·feature`. The defaults
/// are calibrated so the Table III catalog reproduces the paper's
/// alone-load-time classes on the Nexus 5 board model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineParams {
    /// Fixed per-load instruction overhead (browser chrome, GC, IPC).
    pub base_instructions: f64,
    /// Instructions per DOM node (X1).
    pub instr_per_node: f64,
    /// Instructions per `class` attribute (X2) — style matching.
    pub instr_per_class: f64,
    /// Instructions per `href` attribute (X3) — URL resolution.
    pub instr_per_href: f64,
    /// Instructions per `<a>` tag (X4) — link boxes and hit regions.
    pub instr_per_a: f64,
    /// Instructions per `<div>` tag (X5) — block layout.
    pub instr_per_div: f64,
    /// Aux-task work as a fraction of the main task's.
    pub aux_fraction: f64,
    /// Lognormal sigma of per-stage run-to-run jitter.
    pub jitter_sigma: f64,
    /// Working-set bytes contributed per DOM node.
    pub ws_per_node: f64,
    /// Working-set bytes contributed per `class` attribute.
    pub ws_per_class: f64,
    /// Base working set (code, heap, textures).
    pub ws_base: f64,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            base_instructions: 2.0e8,
            instr_per_node: 3.6e5,
            instr_per_class: 2.25e5,
            instr_per_href: 3.0e4,
            instr_per_a: 4.0e4,
            instr_per_div: 3.15e5,
            aux_fraction: 0.45,
            jitter_sigma: 0.03,
            ws_per_node: 350.0,
            ws_per_class: 120.0,
            ws_base: 600.0 * 1024.0,
        }
    }
}

impl EngineParams {
    /// Validates that every coefficient is finite and non-negative, the
    /// jitter is small, and the aux fraction is in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let nonneg = [
            ("base_instructions", self.base_instructions),
            ("instr_per_node", self.instr_per_node),
            ("instr_per_class", self.instr_per_class),
            ("instr_per_href", self.instr_per_href),
            ("instr_per_a", self.instr_per_a),
            ("instr_per_div", self.instr_per_div),
            ("ws_per_node", self.ws_per_node),
            ("ws_per_class", self.ws_per_class),
            ("ws_base", self.ws_base),
        ];
        for (name, v) in nonneg {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.base_instructions <= 0.0 {
            return Err("base_instructions must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.aux_fraction) {
            return Err(format!("aux_fraction {} outside [0,1]", self.aux_fraction));
        }
        if !(0.0..=0.5).contains(&self.jitter_sigma) {
            return Err(format!(
                "jitter_sigma {} outside [0,0.5]",
                self.jitter_sigma
            ));
        }
        Ok(())
    }
}

/// One rendering pipeline stage's shape: its share of the instruction
/// budget and its microarchitectural character.
#[derive(Debug, Clone, Copy)]
struct Stage {
    name: &'static str,
    /// Fraction of the total instruction budget.
    share: f64,
    base_cpi: f64,
    l2_apki: f64,
    reuse_fraction: f64,
    /// Multiplier on the page working set for this stage.
    ws_scale: f64,
}

/// The six-stage pipeline: parse → DOM build → style → layout → paint →
/// script. Shares sum to 1.
///
/// paper: Section II-A — Chromium's rendering pipeline under Telemetry
/// page loads; per-stage shares/CPI/MPKI are modeling choices calibrated
/// so the 14-point frequency sweeps reproduce the Fig. 2 load-time and
/// energy curves.
const STAGES: [Stage; 6] = [
    Stage {
        name: "parse",
        share: 0.15,
        base_cpi: 1.1,
        l2_apki: 6.0,
        reuse_fraction: 0.80,
        ws_scale: 0.30,
    },
    Stage {
        name: "dom",
        share: 0.10,
        base_cpi: 1.2,
        l2_apki: 10.0,
        reuse_fraction: 0.85,
        ws_scale: 0.60,
    },
    Stage {
        name: "style",
        share: 0.25,
        base_cpi: 1.3,
        l2_apki: 14.0,
        reuse_fraction: 0.85,
        ws_scale: 0.90,
    },
    Stage {
        name: "layout",
        share: 0.25,
        base_cpi: 1.4,
        l2_apki: 18.0,
        reuse_fraction: 0.80,
        ws_scale: 1.00,
    },
    Stage {
        name: "paint",
        share: 0.15,
        base_cpi: 1.0,
        l2_apki: 24.0,
        reuse_fraction: 0.55,
        ws_scale: 1.00,
    },
    Stage {
        name: "script",
        share: 0.10,
        base_cpi: 1.6,
        l2_apki: 10.0,
        reuse_fraction: 0.90,
        ws_scale: 0.50,
    },
];

/// A spawned browser load: the critical-path task and its helper.
#[derive(Debug)]
pub struct BrowserJob {
    /// The rendering critical path; its completion is the page load time.
    pub main: PhasedTask,
    /// Second-core helper (decode/compositing). Contributes cache and
    /// memory pressure and power but does not gate completion.
    pub aux: PhasedTask,
}

/// The rendering-engine model.
///
/// # Example
///
/// ```
/// use dora_browser::engine::RenderEngine;
/// use dora_browser::PageFeatures;
///
/// let engine = RenderEngine::default();
/// let page = PageFeatures::new(2000, 1200, 500, 550, 600)?;
/// let job = engine.spawn_features(&page, 7);
/// // Same seed, same work; different seed, jittered work.
/// let again = engine.spawn_features(&page, 7);
/// assert_eq!(job.main.total_instructions(), again.main.total_instructions());
/// # Ok::<(), dora_browser::page::InvalidPageError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RenderEngine {
    params: EngineParams,
}

impl RenderEngine {
    /// Creates an engine after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation failure for out-of-domain parameters.
    pub fn new(params: EngineParams) -> Result<Self, String> {
        params.validate()?;
        Ok(RenderEngine { params })
    }

    /// The configured coefficients.
    pub fn params(&self) -> &EngineParams {
        &self.params
    }

    /// The deterministic (pre-jitter) total instruction budget for a page.
    pub fn total_instructions(&self, page: &PageFeatures) -> f64 {
        let p = &self.params;
        let [n, c, h, a, d] = page.as_vector();
        p.base_instructions
            + p.instr_per_node * n
            + p.instr_per_class * c
            + p.instr_per_href * h
            + p.instr_per_a * a
            + p.instr_per_div * d
    }

    /// The page's cache working set in bytes.
    pub fn working_set_bytes(&self, page: &PageFeatures) -> f64 {
        let p = &self.params;
        p.ws_base
            + p.ws_per_node * page.dom_nodes() as f64
            + p.ws_per_class * page.class_attrs() as f64
    }

    /// Spawns the two-core browser job for a catalog page, applying the
    /// page's memory weight.
    pub fn spawn(&self, page: &crate::catalog::CatalogPage, seed: u64) -> BrowserJob {
        self.spawn_weighted(&page.features, page.memory_weight, seed)
    }

    /// Spawns the two-core browser job for a bare feature vector at the
    /// nominal memory weight. `seed` pins the run-to-run jitter: the same
    /// seed reproduces the exact same load.
    pub fn spawn_features(&self, page: &PageFeatures, seed: u64) -> BrowserJob {
        self.spawn_weighted(page, 1.0, seed)
    }

    /// Spawns with an explicit memory weight: the page's L2 traffic and
    /// working set scale by `memory_weight` (see
    /// [`crate::catalog::CatalogPage::memory_weight`]).
    ///
    /// # Panics
    ///
    /// Panics if `memory_weight` is outside `[0.25, 2.5]`.
    pub fn spawn_weighted(&self, page: &PageFeatures, memory_weight: f64, seed: u64) -> BrowserJob {
        assert!(
            (0.25..=2.5).contains(&memory_weight),
            "implausible memory weight {memory_weight}"
        );
        let mut rng = Rng::seed_from_u64(seed);
        let total = self.total_instructions(page);
        let ws = self.working_set_bytes(page) * memory_weight;
        let phases: Vec<(f64, PhaseProfile)> = STAGES
            .iter()
            .map(|s| {
                let budget = (total * s.share * rng.jitter(self.params.jitter_sigma)).max(1.0);
                let profile = PhaseProfile {
                    base_cpi: s.base_cpi,
                    l2_apki: s.l2_apki * memory_weight,
                    working_set_bytes: ws * s.ws_scale,
                    reuse_fraction: s.reuse_fraction,
                    duty_cycle: 1.0,
                };
                (budget, profile)
            })
            .collect();
        let main = PhasedTask::new("browser-main", phases);

        let aux_budget =
            (total * self.params.aux_fraction * rng.jitter(self.params.jitter_sigma)).max(1.0);
        let aux_profile = PhaseProfile {
            base_cpi: 1.1,
            l2_apki: 16.0,
            working_set_bytes: 1.0 * 1024.0 * 1024.0,
            reuse_fraction: 0.60,
            duty_cycle: 0.90,
        };
        let aux = PhasedTask::new("browser-aux", vec![(aux_budget, aux_profile)]);
        BrowserJob { main, aux }
    }

    /// The stage names in pipeline order (for reports).
    pub fn stage_names() -> [&'static str; 6] {
        [
            STAGES[0].name,
            STAGES[1].name,
            STAGES[2].name,
            STAGES[3].name,
            STAGES[4].name,
            STAGES[5].name,
        ]
    }
}

impl Default for RenderEngine {
    #[allow(clippy::expect_used)] // EngineParams::default is validated by test
    fn default() -> Self {
        RenderEngine::new(EngineParams::default()).expect("defaults are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn stage_shares_sum_to_one() {
        let total: f64 = STAGES.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instruction_budget_is_affine_in_features() {
        let engine = RenderEngine::default();
        let a = PageFeatures::new(1000, 600, 200, 220, 280).expect("valid");
        let b = PageFeatures::new(2000, 1200, 400, 440, 560).expect("valid");
        let base = engine.params().base_instructions;
        let ia = engine.total_instructions(&a);
        let ib = engine.total_instructions(&b);
        // Doubling every feature doubles the feature-dependent part.
        assert!(((ib - base) / (ia - base) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spawn_is_deterministic_per_seed_and_jitters_across_seeds() {
        let engine = RenderEngine::default();
        let page = Catalog::alexa18();
        let reddit = page.page("Reddit").expect("present");
        let j1 = engine.spawn(reddit, 5);
        let j2 = engine.spawn(reddit, 5);
        assert_eq!(j1.main.total_instructions(), j2.main.total_instructions());
        let j3 = engine.spawn(reddit, 6);
        assert_ne!(j1.main.total_instructions(), j3.main.total_instructions());
        // Jitter is small: within ~20%.
        let ratio = j1.main.total_instructions() / j3.main.total_instructions();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn complex_pages_cost_more() {
        let engine = RenderEngine::default();
        let c = Catalog::alexa18();
        let amazon = engine.spawn(c.page("Amazon").expect("present"), 1);
        let aliexpress = engine.spawn(c.page("Aliexpress").expect("present"), 1);
        assert!(aliexpress.main.total_instructions() > 2.0 * amazon.main.total_instructions());
    }

    #[test]
    fn aux_task_is_a_fraction_of_main() {
        let engine = RenderEngine::default();
        let c = Catalog::alexa18();
        let job = engine.spawn(c.page("MSN").expect("present"), 9);
        let frac = job.aux.total_instructions() / job.main.total_instructions();
        assert!((0.3..0.6).contains(&frac), "aux fraction {frac}");
    }

    #[test]
    fn working_set_scales_with_page() {
        let engine = RenderEngine::default();
        let small = PageFeatures::new(800, 500, 100, 120, 200).expect("valid");
        let large = PageFeatures::new(6000, 4000, 1500, 1700, 1900).expect("valid");
        assert!(engine.working_set_bytes(&large) > 2.0 * engine.working_set_bytes(&small));
        // Big pages overflow the 2 MB L2 — that's the interference surface.
        assert!(engine.working_set_bytes(&large) > 2.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = EngineParams {
            aux_fraction: 1.5,
            ..EngineParams::default()
        };
        assert!(RenderEngine::new(bad).is_err());
        let bad = EngineParams {
            instr_per_node: f64::NAN,
            ..EngineParams::default()
        };
        assert!(RenderEngine::new(bad).is_err());
    }

    #[test]
    fn stage_names_exported() {
        assert_eq!(
            RenderEngine::stage_names(),
            ["parse", "dom", "style", "layout", "paint", "script"]
        );
    }
}
