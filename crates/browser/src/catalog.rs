//! The 18-page Alexa catalog (Table III).
//!
//! The paper uses "the 18 most visited web pages reported on Alexa top 500
//! websites that load completely on an Android smartphone" and classifies
//! them by load time when running alone: **Low** intensity (< 2 s) and
//! **High** intensity (> 2 s). Fourteen of the eighteen are used for model
//! training (the *Webpage-Inclusive* set); the remaining four are held out
//! (*Webpage-Neutral*, Section IV-B).
//!
//! Feature vectors here are synthetic but chosen so the engine's computed
//! alone-load-times reproduce the paper's class split — asserted by an
//! integration test, not assumed.

use crate::page::PageFeatures;

/// Table III load-time class of a page when running alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageClass {
    /// Loads in under 2 seconds alone.
    Low,
    /// Takes over 2 seconds alone.
    High,
}

impl std::fmt::Display for PageClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PageClass::Low => "low",
            PageClass::High => "high",
        })
    }
}

/// A named page profile in the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogPage {
    /// Site name as the paper spells it.
    pub name: &'static str,
    /// The Table I feature vector.
    pub features: PageFeatures,
    /// The paper's Table III load-time class.
    pub class: PageClass,
    /// Whether the page belongs to the 14-page training (Webpage-Inclusive)
    /// set or the 4-page held-out (Webpage-Neutral) set.
    pub training: bool,
    /// How memory-bound the page's rendering is relative to the engine's
    /// nominal profile (1.0). Image-heavy pages (Imgur) and long link
    /// directories (Hao123) stress the L2 and DRAM harder per
    /// instruction, making them interference-sensitive; script-heavy
    /// pages (ESPN) are compute-bound and shrug interference off — the
    /// per-page spread Fig. 2(a) measures.
    pub memory_weight: f64,
}

/// The ordered collection of catalog pages.
///
/// # Example
///
/// ```
/// use dora_browser::catalog::{Catalog, PageClass};
///
/// let c = Catalog::alexa18();
/// assert_eq!(c.len(), 18);
/// assert_eq!(c.pages_in_class(PageClass::Low).count(), 12);
/// assert_eq!(c.pages_in_class(PageClass::High).count(), 6);
/// assert_eq!(c.training_pages().count(), 14);
/// assert_eq!(c.heldout_pages().count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    pages: Vec<CatalogPage>,
}

/// Shorthand used by the static table below.
#[allow(clippy::expect_used)] // catalog literals are structurally valid by inspection
fn page(
    name: &'static str,
    class: PageClass,
    training: bool,
    f: (u32, u32, u32, u32, u32),
    memory_weight: f64,
) -> CatalogPage {
    CatalogPage {
        name,
        features: PageFeatures::new(f.0, f.1, f.2, f.3, f.4)
            .expect("catalog features are structurally valid"),
        class,
        training,
        memory_weight,
    }
}

impl Catalog {
    /// The paper's 18 pages. Low-class pages (12) load in < 2 s alone at
    /// the top frequency; High-class pages (6) take longer. The four
    /// held-out Webpage-Neutral pages span both classes so the test set
    /// exercises the models across the complexity range.
    pub fn alexa18() -> Self {
        use PageClass::{High, Low};
        // (dom_nodes, class_attrs, href_attrs, a_tags, div_tags)
        let pages = vec![
            page("Alipay", Low, true, (900, 540, 150, 180, 230), 0.90),
            page("Twitter", Low, true, (1100, 700, 220, 260, 300), 1.00),
            page("360", Low, true, (1200, 660, 380, 420, 310), 0.95),
            page("Amazon", Low, true, (1400, 900, 320, 360, 420), 0.95),
            page("Instagram", Low, true, (1300, 850, 180, 210, 380), 1.15),
            page("Alibaba", Low, false, (1500, 950, 400, 450, 430), 1.05),
            page("eBay", Low, true, (1600, 1000, 420, 470, 460), 1.00),
            page("Youtube", Low, true, (1700, 1150, 350, 400, 520), 1.10),
            page("BBC", Low, false, (1900, 1200, 480, 530, 560), 1.00),
            page("Reddit", Low, true, (2100, 1300, 620, 680, 590), 1.10),
            page("MSN", Low, true, (2300, 1500, 700, 760, 640), 1.00),
            page("CNN", Low, true, (2500, 1650, 750, 820, 700), 1.05),
            page("Firefox", High, true, (5800, 3700, 1500, 1650, 1750), 0.95),
            page("Imgur", High, false, (4400, 2850, 950, 1050, 1350), 1.12),
            page("ESPN", High, true, (4700, 3100, 1250, 1350, 1450), 0.70),
            page("Hao123", High, true, (4400, 2700, 2000, 2100, 1250), 1.15),
            page("IMDB", High, true, (4800, 3150, 1350, 1500, 1450), 0.90),
            page(
                "Aliexpress",
                High,
                false,
                (5600, 3650, 1600, 1750, 1700),
                1.05,
            ),
        ];
        Catalog { pages }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// All pages in catalog order.
    pub fn pages(&self) -> &[CatalogPage] {
        &self.pages
    }

    /// Looks a page up by (case-insensitive) name.
    pub fn page(&self, name: &str) -> Option<&CatalogPage> {
        self.pages
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Pages of a Table III class.
    pub fn pages_in_class(&self, class: PageClass) -> impl Iterator<Item = &CatalogPage> {
        self.pages.iter().filter(move |p| p.class == class)
    }

    /// The 14 Webpage-Inclusive (training) pages.
    pub fn training_pages(&self) -> impl Iterator<Item = &CatalogPage> {
        self.pages.iter().filter(|p| p.training)
    }

    /// The 4 Webpage-Neutral (held-out) pages.
    pub fn heldout_pages(&self) -> impl Iterator<Item = &CatalogPage> {
        self.pages.iter().filter(|p| !p.training)
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::alexa18()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_pages_present() {
        let c = Catalog::alexa18();
        for name in [
            "Amazon",
            "Twitter",
            "Youtube",
            "360",
            "MSN",
            "BBC",
            "CNN",
            "Reddit",
            "Alibaba",
            "eBay",
            "Alipay",
            "Instagram",
            "IMDB",
            "ESPN",
            "Hao123",
            "Imgur",
            "Aliexpress",
            "Firefox",
        ] {
            assert!(c.page(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn class_membership_matches_table3() {
        let c = Catalog::alexa18();
        for name in ["Amazon", "Reddit", "MSN", "Alipay"] {
            assert_eq!(c.page(name).expect("present").class, PageClass::Low);
        }
        for name in ["IMDB", "ESPN", "Hao123", "Imgur", "Aliexpress", "Firefox"] {
            assert_eq!(c.page(name).expect("present").class, PageClass::High);
        }
    }

    #[test]
    fn split_is_14_training_4_heldout() {
        let c = Catalog::alexa18();
        assert_eq!(c.training_pages().count(), 14);
        assert_eq!(c.heldout_pages().count(), 4);
        // Held-out pages span both classes.
        assert!(c.heldout_pages().any(|p| p.class == PageClass::Low));
        assert!(c.heldout_pages().any(|p| p.class == PageClass::High));
    }

    #[test]
    fn high_class_pages_are_more_complex() {
        let c = Catalog::alexa18();
        let max_low = c
            .pages_in_class(PageClass::Low)
            .map(|p| p.features.complexity_score())
            .fold(0.0, f64::max);
        let min_high = c
            .pages_in_class(PageClass::High)
            .map(|p| p.features.complexity_score())
            .fold(f64::INFINITY, f64::min);
        assert!(min_high > max_low);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let c = Catalog::alexa18();
        assert_eq!(c.page("reddit").expect("found").name, "Reddit");
        assert!(c.page("NotASite").is_none());
    }
}
