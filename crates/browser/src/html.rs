//! Table I feature extraction from real HTML.
//!
//! The paper's X1–X5 features are counts over a page's HTML document:
//! DOM tree nodes, `class` attributes, `href` attributes, `<a>` tags and
//! `<div>` tags. This module extracts them from an actual HTML string
//! with a small, dependency-free tokenizer, so the library can profile
//! real pages, not just catalog entries.
//!
//! The tokenizer is deliberately forgiving (browsers are): it skips
//! comments, doctypes, processing instructions, CDATA, and the raw-text
//! contents of `<script>`/`<style>`, counts every element start tag as a
//! DOM node, and recognizes void elements. It does not build a tree —
//! the features only need counts.

use crate::page::{InvalidPageError, PageFeatures};

/// Elements that never have a closing tag (HTML void elements).
const VOID_ELEMENTS: [&str; 14] = [
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Raw counters produced by the scan, before the plausibility checks of
/// [`PageFeatures::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HtmlCounts {
    /// Element start tags seen (DOM tree nodes, X1).
    pub dom_nodes: u32,
    /// `class` attributes seen (X2).
    pub class_attrs: u32,
    /// `href` attributes seen (X3).
    pub href_attrs: u32,
    /// `<a>` start tags seen (X4).
    pub a_tags: u32,
    /// `<div>` start tags seen (X5).
    pub div_tags: u32,
}

/// Scans an HTML document and counts the Table I primitives.
///
/// # Example
///
/// ```
/// use dora_browser::html::scan;
///
/// let counts = scan(r#"<div class="x"><a href="/home">home</a></div>"#);
/// assert_eq!(counts.dom_nodes, 2);
/// assert_eq!(counts.class_attrs, 1);
/// assert_eq!(counts.href_attrs, 1);
/// assert_eq!(counts.a_tags, 1);
/// assert_eq!(counts.div_tags, 1);
/// ```
pub fn scan(html: &str) -> HtmlCounts {
    let bytes = html.as_bytes();
    let mut counts = HtmlCounts::default();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment?
        if html[i..].starts_with("<!--") {
            i = match html[i + 4..].find("-->") {
                Some(end) => i + 4 + end + 3,
                None => bytes.len(),
            };
            continue;
        }
        // Doctype / CDATA / other markup declaration, or processing
        // instruction: skip to the next '>'.
        if i + 1 < bytes.len() && (bytes[i + 1] == b'!' || bytes[i + 1] == b'?') {
            i = match html[i..].find('>') {
                Some(end) => i + end + 1,
                None => bytes.len(),
            };
            continue;
        }
        // Closing tag: skip.
        if i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            i = match html[i..].find('>') {
                Some(end) => i + end + 1,
                None => bytes.len(),
            };
            continue;
        }
        // A start tag. Find its name.
        let Some(rel_end) = find_tag_end(html, i) else {
            break; // unterminated tag at EOF
        };
        let tag_body = &html[i + 1..rel_end];
        let name: String = tag_body
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
            .collect::<String>()
            .to_ascii_lowercase();
        if name.is_empty() {
            // Stray '<' in text.
            i += 1;
            continue;
        }
        counts.dom_nodes = counts.dom_nodes.saturating_add(1);
        match name.as_str() {
            "a" => counts.a_tags = counts.a_tags.saturating_add(1),
            "div" => counts.div_tags = counts.div_tags.saturating_add(1),
            _ => {}
        }
        let attrs = &tag_body[name.len()..];
        counts.class_attrs = counts
            .class_attrs
            .saturating_add(count_attribute(attrs, "class"));
        counts.href_attrs = counts
            .href_attrs
            .saturating_add(count_attribute(attrs, "href"));

        i = rel_end + 1;
        // Raw-text elements: skip to the matching close tag so their
        // contents ("a < b", "</div>" in strings) don't confuse the scan.
        if name == "script" || name == "style" {
            let close = format!("</{name}");
            let lower_rest = html[i..].to_ascii_lowercase();
            i = match lower_rest.find(&close) {
                Some(off) => {
                    let after = i + off;
                    match html[after..].find('>') {
                        Some(gt) => after + gt + 1,
                        None => bytes.len(),
                    }
                }
                None => bytes.len(),
            };
        }
        let _ = VOID_ELEMENTS; // void-ness only matters for tree building
    }
    counts
}

/// Finds the index of the `>` terminating the tag that starts at `lt`,
/// respecting quoted attribute values.
fn find_tag_end(html: &str, lt: usize) -> Option<usize> {
    let bytes = html.as_bytes();
    let mut i = lt + 1;
    let mut quote: Option<u8> = None;
    while i < bytes.len() {
        match (quote, bytes[i]) {
            (Some(q), c) if c == q => quote = None,
            (Some(_), _) => {}
            (None, b'"') => quote = Some(b'"'),
            (None, b'\'') => quote = Some(b'\''),
            (None, b'>') => return Some(i),
            (None, _) => {}
        }
        i += 1;
    }
    None
}

/// Counts occurrences of attribute `name` (word-bounded, followed by `=`
/// or whitespace or end) in a tag's attribute text.
fn count_attribute(attrs: &str, name: &str) -> u32 {
    let lower = attrs.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut count = 0u32;
    let mut search = 0usize;
    while let Some(off) = lower[search..].find(name) {
        let start = search + off;
        let end = start + name.len();
        let left_ok =
            start == 0 || !bytes[start - 1].is_ascii_alphanumeric() && bytes[start - 1] != b'-';
        let right_ok = end >= bytes.len()
            || bytes[end] == b'='
            || bytes[end].is_ascii_whitespace()
            || bytes[end] == b'/'
            || bytes[end] == b'>';
        // Not inside a quoted value: count quotes before `start`.
        let quotes_before = bytes[..start]
            .iter()
            .filter(|&&c| c == b'"' || c == b'\'')
            .count();
        if left_ok && right_ok && quotes_before % 2 == 0 {
            count = count.saturating_add(1);
        }
        search = end;
    }
    count
}

impl PageFeatures {
    /// Extracts the Table I feature vector from an HTML document.
    ///
    /// # Errors
    ///
    /// [`InvalidPageError`] when the document contains no elements (the
    /// counts cannot describe a page).
    ///
    /// # Example
    ///
    /// ```
    /// use dora_browser::PageFeatures;
    ///
    /// let html = r#"
    ///   <!DOCTYPE html>
    ///   <html><head><title>t</title></head>
    ///   <body>
    ///     <div class="nav"><a href="/a">a</a><a href="/b">b</a></div>
    ///   </body></html>
    /// "#;
    /// let page = PageFeatures::from_html(html)?;
    /// assert_eq!(page.a_tags(), 2);
    /// assert_eq!(page.div_tags(), 1);
    /// assert_eq!(page.href_attrs(), 2);
    /// # Ok::<(), dora_browser::page::InvalidPageError>(())
    /// ```
    pub fn from_html(html: &str) -> Result<PageFeatures, InvalidPageError> {
        let c = scan(html);
        PageFeatures::new(
            c.dom_nodes,
            c.class_attrs,
            c.href_attrs,
            c.a_tags,
            c.div_tags,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_basic_structure() {
        let c = scan("<html><body><div><p>hi</p></div></body></html>");
        assert_eq!(c.dom_nodes, 4);
        assert_eq!(c.div_tags, 1);
        assert_eq!(c.a_tags, 0);
    }

    #[test]
    fn closing_tags_not_counted() {
        let c = scan("<div></div><div></div>");
        assert_eq!(c.dom_nodes, 2);
        assert_eq!(c.div_tags, 2);
    }

    #[test]
    fn comments_doctype_and_pi_skipped() {
        let c = scan("<!DOCTYPE html><!-- <div> not real --><?xml ignore?><div></div>");
        assert_eq!(c.dom_nodes, 1);
        assert_eq!(c.div_tags, 1);
    }

    #[test]
    fn script_and_style_contents_are_raw_text() {
        let c = scan(
            r#"<script>if (a < b) document.write("<div class='x'>");</script>
               <style>.a::before { content: "<a href='x'>"; }</style>
               <div></div>"#,
        );
        assert_eq!(c.dom_nodes, 3, "{c:?}"); // script, style, div
        assert_eq!(c.div_tags, 1);
        assert_eq!(c.a_tags, 0);
        assert_eq!(c.class_attrs, 0);
        assert_eq!(c.href_attrs, 0);
    }

    #[test]
    fn attributes_counted_word_bounded() {
        let c = scan(r#"<div class="a" data-classic="no"><a href="/x" hreflang="en">l</a></div>"#);
        assert_eq!(c.class_attrs, 1, "{c:?}");
        assert_eq!(c.href_attrs, 1, "{c:?}");
    }

    #[test]
    fn attribute_values_with_gt_handled() {
        let c = scan(r#"<div title="a > b" class="x"><a href="/y">y</a></div>"#);
        assert_eq!(c.dom_nodes, 2);
        assert_eq!(c.class_attrs, 1);
        assert_eq!(c.href_attrs, 1);
    }

    #[test]
    fn attribute_names_inside_values_not_counted() {
        let c = scan(r#"<div data-x="class=fake href=fake"></div>"#);
        assert_eq!(c.class_attrs, 0, "{c:?}");
        assert_eq!(c.href_attrs, 0, "{c:?}");
    }

    #[test]
    fn self_closing_and_void_elements_count_as_nodes() {
        let c = scan(r#"<img src="x.png"/><br><link href="a.css">"#);
        assert_eq!(c.dom_nodes, 3);
        assert_eq!(c.href_attrs, 1);
    }

    #[test]
    fn stray_angle_brackets_in_text() {
        let c = scan("<p>1 < 2 and 3 > 2</p><div></div>");
        assert_eq!(c.dom_nodes, 2);
    }

    #[test]
    fn unterminated_tag_at_eof_is_tolerated() {
        let c = scan("<div class='x'><a href='/y'");
        assert_eq!(c.dom_nodes, 1); // the complete div only
    }

    #[test]
    fn from_html_roundtrip_into_features() {
        let html = r#"
            <html><body>
              <div class="header"><a href="/">home</a></div>
              <div class="content">
                <a href="/1">one</a> <a href="/2">two</a>
              </div>
            </body></html>
        "#;
        let page = PageFeatures::from_html(html).expect("valid page");
        assert_eq!(page.dom_nodes(), 7);
        assert_eq!(page.class_attrs(), 2);
        assert_eq!(page.href_attrs(), 3);
        assert_eq!(page.a_tags(), 3);
        assert_eq!(page.div_tags(), 2);
    }

    #[test]
    fn empty_document_rejected() {
        assert!(PageFeatures::from_html("just text, no tags").is_err());
        assert!(PageFeatures::from_html("").is_err());
    }

    #[test]
    fn case_insensitive_tags_and_attrs() {
        let c = scan(r#"<DIV CLASS="a"><A HREF="/x">x</A></DIV>"#);
        assert_eq!(c.div_tags, 1);
        assert_eq!(c.a_tags, 1);
        assert_eq!(c.class_attrs, 1);
        assert_eq!(c.href_attrs, 1);
    }
}
