//! Web-page complexity features.
//!
//! The five static features of Table I (X1–X5). They are known before a
//! page renders — "these properties of web pages are available before a
//! page is rendered" (Section II-A) — which is what lets DORA predict load
//! time ahead of the load.

use dora_sim_core::Rng;

/// The static complexity descriptor of a web page (Table I, X1–X5).
///
/// # Example
///
/// ```
/// use dora_browser::PageFeatures;
///
/// let page = PageFeatures::new(2100, 1300, 620, 680, 590).expect("plausible");
/// assert_eq!(page.dom_nodes(), 2100);
/// assert!(page.complexity_score() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageFeatures {
    dom_nodes: u32,
    class_attrs: u32,
    href_attrs: u32,
    a_tags: u32,
    div_tags: u32,
}

/// Error produced when a feature vector is structurally impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPageError(String);

impl std::fmt::Display for InvalidPageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid page features: {}", self.0)
    }
}

impl std::error::Error for InvalidPageError {}

impl PageFeatures {
    /// Builds a feature vector, checking structural plausibility: a page
    /// must have at least one DOM node, and tags are nodes so neither
    /// `a_tags` nor `div_tags` may exceed `dom_nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPageError`] when the counts cannot describe a real
    /// HTML document.
    pub fn new(
        dom_nodes: u32,
        class_attrs: u32,
        href_attrs: u32,
        a_tags: u32,
        div_tags: u32,
    ) -> Result<Self, InvalidPageError> {
        if dom_nodes == 0 {
            return Err(InvalidPageError("a page has at least one DOM node".into()));
        }
        if a_tags > dom_nodes {
            return Err(InvalidPageError(format!(
                "{a_tags} <a> tags cannot exceed {dom_nodes} DOM nodes"
            )));
        }
        if div_tags > dom_nodes {
            return Err(InvalidPageError(format!(
                "{div_tags} <div> tags cannot exceed {dom_nodes} DOM nodes"
            )));
        }
        if a_tags as u64 + div_tags as u64 > dom_nodes as u64 {
            return Err(InvalidPageError(
                "a and div tags together cannot exceed the node count".into(),
            ));
        }
        Ok(PageFeatures {
            dom_nodes,
            class_attrs,
            href_attrs,
            a_tags,
            div_tags,
        })
    }

    /// X1 — number of DOM tree nodes.
    pub fn dom_nodes(&self) -> u32 {
        self.dom_nodes
    }

    /// X2 — number of `class` attributes.
    pub fn class_attrs(&self) -> u32 {
        self.class_attrs
    }

    /// X3 — number of `href` attributes.
    pub fn href_attrs(&self) -> u32 {
        self.href_attrs
    }

    /// X4 — number of `<a>` tags.
    pub fn a_tags(&self) -> u32 {
        self.a_tags
    }

    /// X5 — number of `<div>` tags.
    pub fn div_tags(&self) -> u32 {
        self.div_tags
    }

    /// The feature vector as `f64`s in Table I order (X1..X5), ready to
    /// feed a regression model.
    pub fn as_vector(&self) -> [f64; 5] {
        [
            self.dom_nodes as f64,
            self.class_attrs as f64,
            self.href_attrs as f64,
            self.a_tags as f64,
            self.div_tags as f64,
        ]
    }

    /// A scalar complexity summary (weighted feature sum). Only used for
    /// ordering pages in reports; the models always use the full vector.
    pub fn complexity_score(&self) -> f64 {
        let [n, c, h, a, d] = self.as_vector();
        n + 0.6 * c + 0.15 * h + 0.2 * a + 0.8 * d
    }

    /// Synthesizes a plausible random page whose overall scale is set by
    /// `complexity` in `[0, 1]` (0 ≈ the simplest catalog page, 1 ≈ the
    /// heaviest). Feature ratios mimic the published measurements of real
    /// pages: roughly 60 % of nodes carry a class, a quarter are links.
    ///
    /// # Panics
    ///
    /// Panics if `complexity` is outside `[0, 1]`.
    #[allow(clippy::expect_used)] // synthesized fractions cap below validity bounds
    pub fn synthesize(rng: &mut Rng, complexity: f64) -> PageFeatures {
        assert!(
            (0.0..=1.0).contains(&complexity),
            "complexity {complexity} outside [0,1]"
        );
        let nodes = 700.0 + complexity * 5800.0;
        let nodes = (nodes * rng.jitter(0.10)).round().max(50.0) as u32;
        let frac = |rng: &mut Rng, center: f64, spread: f64| -> f64 {
            (center * rng.jitter(spread)).clamp(0.01, 0.45)
        };
        let class_attrs = ((nodes as f64) * frac(rng, 0.62, 0.15).min(2.0)).round() as u32;
        let a_tags = ((nodes as f64) * frac(rng, 0.22, 0.25)).round() as u32;
        let href_attrs = ((a_tags as f64) * rng.jitter(0.1) * 0.95).round() as u32;
        let div_tags = ((nodes as f64) * frac(rng, 0.28, 0.2)).round() as u32;
        // The fractions above cap at 0.45 each, so a+div <= 0.9·nodes.
        PageFeatures::new(nodes, class_attrs, href_attrs, a_tags, div_tags)
            .expect("synthesized pages are structurally valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_page_roundtrips() {
        let p = PageFeatures::new(1000, 600, 200, 220, 280).expect("valid");
        assert_eq!(p.dom_nodes(), 1000);
        assert_eq!(p.class_attrs(), 600);
        assert_eq!(p.href_attrs(), 200);
        assert_eq!(p.a_tags(), 220);
        assert_eq!(p.div_tags(), 280);
        assert_eq!(p.as_vector(), [1000.0, 600.0, 200.0, 220.0, 280.0]);
    }

    #[test]
    fn structural_violations_rejected() {
        assert!(PageFeatures::new(0, 0, 0, 0, 0).is_err());
        assert!(PageFeatures::new(100, 0, 0, 150, 0).is_err());
        assert!(PageFeatures::new(100, 0, 0, 0, 150).is_err());
        assert!(PageFeatures::new(100, 0, 0, 60, 60).is_err());
    }

    #[test]
    fn complexity_score_orders_by_scale() {
        let small = PageFeatures::new(800, 500, 150, 180, 220).expect("valid");
        let large = PageFeatures::new(5200, 3400, 1500, 1650, 1600).expect("valid");
        assert!(large.complexity_score() > small.complexity_score());
    }

    #[test]
    fn synthesize_is_valid_and_scales() {
        let mut rng = Rng::seed_from_u64(3);
        let mut last_mean = 0.0;
        for complexity in [0.0, 0.5, 1.0] {
            let mean: f64 = (0..50)
                .map(|_| PageFeatures::synthesize(&mut rng, complexity).dom_nodes() as f64)
                .sum::<f64>()
                / 50.0;
            assert!(mean > last_mean, "node count should scale with complexity");
            last_mean = mean;
        }
    }

    #[test]
    fn synthesize_is_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..20 {
            assert_eq!(
                PageFeatures::synthesize(&mut a, 0.7),
                PageFeatures::synthesize(&mut b, 0.7)
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn synthesize_rejects_bad_complexity() {
        let mut rng = Rng::seed_from_u64(1);
        let _ = PageFeatures::synthesize(&mut rng, 1.5);
    }
}
