//! Calibration check: the catalog's computed alone-load-times must
//! reproduce the paper's Table III classes on the Nexus 5 board model.
//!
//! "They also vary widely in complexity resulting in load times in the
//! range of hundred of milliseconds to 4 seconds, when running alone."
//! (Section IV-B). Low-class pages load in < 2 s at the top frequency;
//! High-class pages take > 2 s.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dora_browser::catalog::{Catalog, PageClass};
use dora_browser::engine::RenderEngine;
use dora_sim_core::SimDuration;
use dora_soc::board::Board;

/// Loads `page` alone (both browser cores, no co-runner) at the given
/// table frequency and returns the load time in seconds.
fn load_alone(name: &str, mhz: f64, seed: u64) -> f64 {
    let catalog = Catalog::alexa18();
    let page = catalog.page(name).expect("page in catalog");
    let engine = RenderEngine::default();
    let job = engine.spawn(page, seed);
    let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), seed);
    board
        .set_frequency(dora_soc::Frequency::from_mhz(mhz))
        .expect("table frequency");
    board.assign(0, Box::new(job.main)).expect("core 0 free");
    board.assign(1, Box::new(job.aux)).expect("core 1 free");
    let limit = SimDuration::from_secs(60);
    while !board.task_finished(0) && board.time().as_secs_f64() < limit.as_secs_f64() {
        board.step(SimDuration::from_millis(20));
    }
    board
        .finish_time(0)
        .expect("page should load within 60 s")
        .as_secs_f64()
}

#[test]
fn table3_alone_load_time_classes_hold_at_fmax() {
    let catalog = Catalog::alexa18();
    let mut report = String::new();
    let mut violations = Vec::new();
    for page in catalog.pages() {
        let t = load_alone(page.name, 2265.6, 11);
        report.push_str(&format!("{:<12} {:?} {:>6.2}s\n", page.name, page.class, t));
        match page.class {
            PageClass::Low if t >= 2.0 => {
                violations.push(format!("{} classed Low but loads in {t:.2}s", page.name))
            }
            PageClass::High if t <= 2.0 => {
                violations.push(format!("{} classed High but loads in {t:.2}s", page.name))
            }
            _ => {}
        }
    }
    assert!(
        violations.is_empty(),
        "{violations:?}\nfull report:\n{report}"
    );
}

#[test]
fn alone_load_times_span_subsecond_to_four_seconds() {
    // The paper's corpus spans "hundreds of milliseconds to 4 seconds".
    let fastest = load_alone("Alipay", 2265.6, 3);
    let slowest = load_alone("Aliexpress", 2265.6, 3);
    assert!(fastest < 1.0, "lightest page took {fastest:.2}s");
    assert!(
        (2.8..4.5).contains(&slowest),
        "heaviest page took {slowest:.2}s, expected ~3-4s"
    );
}

#[test]
fn load_time_rises_as_frequency_falls() {
    let mut last = 0.0;
    for mhz in [2265.6, 1497.6, 883.2, 729.6] {
        let t = load_alone("Reddit", mhz, 5);
        assert!(t > last, "load time must rise as frequency falls");
        last = t;
    }
    // Fig. 1 shows Reddit spanning roughly 1-2 s at 2.2 GHz up to ~4-5.5 s
    // at 0.7 GHz under interference; alone it should sit below those bands.
    let top = load_alone("Reddit", 2265.6, 5);
    let bottom = load_alone("Reddit", 729.6, 5);
    assert!((0.8..2.0).contains(&top), "Reddit @2.27GHz: {top:.2}s");
    assert!(
        (2.0..5.0).contains(&bottom),
        "Reddit @0.73GHz: {bottom:.2}s"
    );
}
