//! # dora
//!
//! The paper's contribution: **D**ynamic quality **O**f service,
//! memo**R**y interference-**A**ware frequency governor.
//!
//! DORA maximizes smartphone energy efficiency (performance-per-watt,
//! `PPW = 1/(T·P)`) subject to a web-page load-time deadline, in the
//! presence of memory interference from co-scheduled applications. Every
//! decision interval (100 ms) it:
//!
//! 1. samples `perf`-style counters — shared-L2 MPKI, co-runner core
//!    utilization — and the die temperature;
//! 2. for **every** DVFS setting `F`, predicts the page load time `T(F)`
//!    with a statically-trained interaction response surface over the
//!    Table I variables, and the device power `P(F)` with a linear surface
//!    plus the Eq. 5 leakage model evaluated at the current temperature;
//! 3. applies Algorithm 1: among settings whose predicted `T(F)` meets the
//!    QoS target, pick the one maximizing predicted PPW; if none is
//!    feasible, pin the maximum frequency (load as fast as possible);
//! 4. programs the chosen frequency only if it differs from the current
//!    one (switching costs real time — Section V-H).
//!
//! Module map:
//!
//! * [`models`] — the trained model bundle ([`models::DoraModels`]):
//!   piecewise-per-bus-tier response surfaces for load time and dynamic
//!   power, plus fitted Eq. 5 leakage parameters.
//! * [`algorithm`] — Algorithm 1 ([`algorithm::select_frequency`]),
//!   returning the full predicted curve for inspection, and its 2-D
//!   generalization ([`algorithm::select_operating_point`]) that sweeps
//!   the (cluster, frequency) product space of a heterogeneous SoC with
//!   migration cost inside the decision model.
//! * [`governor`] — [`governor::DoraGovernor`], implementing the shared
//!   [`dora_governors::Governor`] trait; a constructor flag produces the
//!   paper's `DORA_no_lkg` ablation (Fig. 10). On big.LITTLE profiles
//!   [`governor::HeterogeneousDoraGovernor`] runs the 2-D search and
//!   returns full operating points via `decide_point`.
//! * [`trainer`] — the offline training pipeline (Section IV-C: "over 300
//!   measurements … used to determine the coefficients").
//! * [`persist`] — versioned text serialization of the trained bundle,
//!   so models trained offline can ship to the device that governs with
//!   them.
//! * [`units`] (re-exported from `dora-sim-core`) — the typed physical
//!   quantities ([`units::Seconds`], [`units::Watts`], [`units::Celsius`],
//!   [`units::Mpki`], [`units::Utilization`], [`units::Ppw`]) every public
//!   API here speaks in place of bare `f64`s.
//!
//! # Example
//!
//! See `examples/quickstart.rs` at the workspace root for the end-to-end
//! train-then-govern flow; unit-level examples live on each type.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use dora_sim_core::units;

pub mod algorithm;
pub mod governor;
pub mod models;
pub mod persist;
pub mod trainer;

pub use algorithm::{
    select_frequency, select_operating_point, ClusterModel, FrequencyDecision,
    OperatingPointDecision, PredictedOperatingPoint, PredictedPoint,
};
pub use governor::{DoraConfig, DoraGovernor, DoraPolicy, HeterogeneousDoraGovernor};
pub use models::{DoraModels, FrequencyEncoding, PredictorInputs};
pub use persist::{from_text, to_text, PersistError};
pub use trainer::{TrainerConfig, TrainingObservation};
