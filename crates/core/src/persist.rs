//! Trained-model persistence.
//!
//! The paper's models are trained *offline* and shipped to the phone; a
//! deployable governor therefore needs its model bundle to survive a
//! process boundary. This module serializes a [`DoraModels`] to a
//! versioned, line-oriented text format and back, with no dependency on a
//! serialization framework:
//!
//! ```text
//! dora-models v1
//! dvfs <n>
//! opp <khz> <voltage>
//! ...
//! leakage <k1> <alpha> <beta> <k2> <gamma> <delta>
//! surface load_time <encoding> <kind> <tiers-bitmask>
//! fit global <n-inputs> <means...> <stds...> <coefficients...>
//! fit tier0 ...
//! ...
//! surface power ...
//! end
//! ```
//!
//! All floats are written with `{:?}` (shortest round-trippable form), so
//! a save/load round trip is bit-exact.

use crate::models::{DoraModels, FrequencyEncoding, PiecewiseSurface};
use dora_modeling::leakage::Eq5Params;
use dora_modeling::surface::{FittedSurface, ResponseSurface, SurfaceKind};
use dora_soc::DvfsTable;
use std::fmt::Write as _;

/// Errors from parsing a persisted model bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input ended before the bundle was complete.
    UnexpectedEof,
    /// A structurally invalid line.
    Malformed {
        /// 1-based line number of the offending input.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The parsed DVFS table failed validation.
    InvalidDvfs(String),
}

impl PersistError {
    fn malformed(line: usize, reason: impl Into<String>) -> Self {
        PersistError::Malformed {
            line,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::UnexpectedEof => {
                write!(f, "model bundle parse error: unexpected end of input")
            }
            PersistError::Malformed { line, reason } => {
                write!(f, "model bundle parse error: line {line}: {reason}")
            }
            PersistError::InvalidDvfs(reason) => {
                write!(f, "model bundle parse error: invalid dvfs table: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Serializes a model bundle to the versioned text format.
pub fn to_text(models: &DoraModels) -> String {
    let mut out = String::from("dora-models v1\n");
    let _ = writeln!(out, "dvfs {}", models.dvfs.len());
    for opp in models.dvfs.opps() {
        let _ = writeln!(out, "opp {} {:?}", opp.frequency.as_khz(), opp.voltage);
    }
    let lk = models.leakage;
    let _ = writeln!(
        out,
        "leakage {:?} {:?} {:?} {:?} {:?} {:?}",
        lk.k1, lk.alpha, lk.beta, lk.k2, lk.gamma, lk.delta
    );
    write_surface(&mut out, "load_time", &models.load_time);
    write_surface(&mut out, "power", &models.power);
    out.push_str("end\n");
    out
}

fn encoding_name(e: FrequencyEncoding) -> &'static str {
    match e {
        FrequencyEncoding::Natural => "natural",
        FrequencyEncoding::Period => "period",
    }
}

fn kind_name(k: SurfaceKind) -> &'static str {
    match k {
        SurfaceKind::Linear => "linear",
        SurfaceKind::Quadratic => "quadratic",
        SurfaceKind::Interaction => "interaction",
    }
}

fn write_fit(out: &mut String, label: &str, fit: &FittedSurface) {
    let _ = write!(out, "fit {label} {}", fit.surface().inputs());
    for v in fit.means() {
        let _ = write!(out, " {v:?}");
    }
    for v in fit.stds() {
        let _ = write!(out, " {v:?}");
    }
    for v in fit.coefficients() {
        let _ = write!(out, " {v:?}");
    }
    out.push('\n');
}

fn write_surface(out: &mut String, name: &str, surface: &PiecewiseSurface) {
    let mask = (0..3).fold(0u8, |m, i| {
        if surface.tier_fit(i).is_some() {
            m | (1 << i)
        } else {
            m
        }
    });
    let _ = writeln!(
        out,
        "surface {name} {} {} {mask}",
        encoding_name(surface.encoding()),
        kind_name(surface.global_fit().surface().kind()),
    );
    write_fit(out, "global", surface.global_fit());
    for i in 0..3 {
        if let Some(fit) = surface.tier_fit(i) {
            write_fit(out, &format!("tier{i}"), fit);
        }
    }
}

/// A line-cursor over the input.
struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<(usize, &'a str), PersistError> {
        for (n, line) in self.iter.by_ref() {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok((n + 1, trimmed));
            }
        }
        Err(PersistError::UnexpectedEof)
    }
}

fn parse_f64(tok: &str, line: usize) -> Result<f64, PersistError> {
    tok.parse::<f64>()
        .map_err(|_| PersistError::malformed(line, format!("bad float {tok:?}")))
}

fn parse_fit(
    line_no: usize,
    tokens: &[&str],
    expected_label: &str,
    kind: SurfaceKind,
) -> Result<FittedSurface, PersistError> {
    if tokens.len() < 3 || tokens[0] != "fit" {
        return Err(PersistError::malformed(line_no, "expected a fit line"));
    }
    if tokens[1] != expected_label {
        return Err(PersistError::malformed(
            line_no,
            format!("expected fit {expected_label}, got {}", tokens[1]),
        ));
    }
    let n: usize = tokens[2]
        .parse()
        .map_err(|_| PersistError::malformed(line_no, "bad input count"))?;
    let surface = ResponseSurface::new(kind, n);
    let want = 2 * n + surface.term_count();
    let values = &tokens[3..];
    if values.len() != want {
        return Err(PersistError::malformed(
            line_no,
            format!("expected {want} numbers, got {}", values.len()),
        ));
    }
    let nums: Result<Vec<f64>, _> = values.iter().map(|t| parse_f64(t, line_no)).collect();
    let nums = nums?;
    FittedSurface::from_parts(
        surface,
        nums[..n].to_vec(),
        nums[n..2 * n].to_vec(),
        nums[2 * n..].to_vec(),
    )
    .map_err(|e| PersistError::malformed(line_no, e.to_string()))
}

fn parse_surface(
    lines: &mut Lines<'_>,
    expected_name: &str,
) -> Result<PiecewiseSurface, PersistError> {
    let (n, line) = lines.next()?;
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != 5 || tokens[0] != "surface" {
        return Err(PersistError::malformed(n, "expected a surface header"));
    }
    if tokens[1] != expected_name {
        return Err(PersistError::malformed(
            n,
            format!("expected surface {expected_name}, got {}", tokens[1]),
        ));
    }
    let encoding = match tokens[2] {
        "natural" => FrequencyEncoding::Natural,
        "period" => FrequencyEncoding::Period,
        other => {
            return Err(PersistError::malformed(
                n,
                format!("unknown encoding {other:?}"),
            ))
        }
    };
    let kind = match tokens[3] {
        "linear" => SurfaceKind::Linear,
        "quadratic" => SurfaceKind::Quadratic,
        "interaction" => SurfaceKind::Interaction,
        other => {
            return Err(PersistError::malformed(
                n,
                format!("unknown kind {other:?}"),
            ))
        }
    };
    let mask: u8 = tokens[4]
        .parse()
        .map_err(|_| PersistError::malformed(n, "bad tier mask"))?;

    let (gn, gline) = lines.next()?;
    let global = parse_fit(
        gn,
        &gline.split_whitespace().collect::<Vec<_>>(),
        "global",
        kind,
    )?;
    let mut tiers: [Option<FittedSurface>; 3] = [None, None, None];
    for (i, tier) in tiers.iter_mut().enumerate() {
        if mask & (1 << i) != 0 {
            let (tn, tline) = lines.next()?;
            *tier = Some(parse_fit(
                tn,
                &tline.split_whitespace().collect::<Vec<_>>(),
                &format!("tier{i}"),
                kind,
            )?);
        }
    }
    Ok(PiecewiseSurface::new(tiers, global, encoding))
}

/// Parses a model bundle from the versioned text format.
///
/// # Errors
///
/// [`PersistError`] describing the first malformed line.
pub fn from_text(text: &str) -> Result<DoraModels, PersistError> {
    let mut lines = Lines {
        iter: text.lines().enumerate(),
    };
    let (n, header) = lines.next()?;
    if header != "dora-models v1" {
        return Err(PersistError::malformed(
            n,
            format!("unknown header {header:?}"),
        ));
    }

    let (n, dvfs_line) = lines.next()?;
    let tokens: Vec<&str> = dvfs_line.split_whitespace().collect();
    if tokens.len() != 2 || tokens[0] != "dvfs" {
        return Err(PersistError::malformed(n, "expected dvfs count"));
    }
    let count: usize = tokens[1]
        .parse()
        .map_err(|_| PersistError::malformed(n, "bad dvfs count"))?;
    if count == 0 || count > 64 {
        return Err(PersistError::malformed(
            n,
            format!("implausible dvfs count {count}"),
        ));
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let (n, opp) = lines.next()?;
        let t: Vec<&str> = opp.split_whitespace().collect();
        if t.len() != 3 || t[0] != "opp" {
            return Err(PersistError::malformed(n, "expected an opp line"));
        }
        let khz: u64 = t[1]
            .parse()
            .map_err(|_| PersistError::malformed(n, "bad frequency"))?;
        let voltage = parse_f64(t[2], n)?;
        if !(voltage.is_finite() && voltage > 0.0) {
            return Err(PersistError::malformed(n, format!("bad voltage {voltage}")));
        }
        points.push((khz as f64 / 1000.0, voltage));
    }
    // DvfsTable::new validates ordering but panics; pre-check here so a
    // corrupt file yields an error instead.
    for pair in points.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(PersistError::InvalidDvfs(
                "table not strictly ascending".into(),
            ));
        }
    }
    let dvfs = DvfsTable::new(&points);

    let (n, lk) = lines.next()?;
    let t: Vec<&str> = lk.split_whitespace().collect();
    if t.len() != 7 || t[0] != "leakage" {
        return Err(PersistError::malformed(n, "expected a leakage line"));
    }
    let leakage = Eq5Params {
        k1: parse_f64(t[1], n)?,
        alpha: parse_f64(t[2], n)?,
        beta: parse_f64(t[3], n)?,
        k2: parse_f64(t[4], n)?,
        gamma: parse_f64(t[5], n)?,
        delta: parse_f64(t[6], n)?,
    };

    let load_time = parse_surface(&mut lines, "load_time")?;
    let power = parse_surface(&mut lines, "power")?;
    let (n, tail) = lines.next()?;
    if tail != "end" {
        return Err(PersistError::malformed(n, "expected end marker"));
    }
    Ok(DoraModels {
        load_time,
        power,
        leakage,
        dvfs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::PredictorInputs;
    use dora_browser::PageFeatures;
    use dora_sim_core::units::{Celsius, Mpki, Seconds, Utilization, Watts};

    /// Builds a small but real trained bundle.
    fn trained_models() -> DoraModels {
        use crate::trainer::{train, TrainerConfig, TrainingObservation};
        use dora_modeling::leakage::LeakageObservation;
        use dora_sim_core::Rng;
        let dvfs = DvfsTable::default();
        let mut rng = Rng::seed_from_u64(5);
        let mut obs = Vec::new();
        for pi in 0..10 {
            let page = PageFeatures::synthesize(&mut rng, pi as f64 / 9.0);
            for f in dvfs.frequencies() {
                for mpki in [0.5, 6.0, 14.0] {
                    let inputs = PredictorInputs::for_frequency(
                        page,
                        f,
                        &dvfs,
                        Mpki::clamped(mpki),
                        Utilization::clamped(0.7),
                    );
                    obs.push(TrainingObservation {
                        inputs,
                        load_time: Seconds::new(2.0 / f.as_ghz() + 0.04 * mpki),
                        total_power: Watts::new(1.5 + 0.8 * f.as_ghz()),
                        mean_temp: Celsius::new(30.0 + 10.0 * f.as_ghz()),
                    });
                }
            }
        }
        let truth = Eq5Params {
            k1: 0.22,
            alpha: 800.0,
            beta: -4300.0,
            k2: 0.05,
            gamma: 2.0,
            delta: -2.0,
        };
        let lk_obs: Vec<LeakageObservation> = (0..30)
            .map(|i| {
                let v = 0.8 + 0.3 * (i % 6) as f64 / 5.0;
                let c = Celsius::new(25.0 + 40.0 * (i / 6) as f64 / 4.0);
                LeakageObservation {
                    voltage: v,
                    temp: c,
                    power: truth.eval(v, c),
                }
            })
            .collect();
        train(&obs, &lk_obs, &dvfs, TrainerConfig::default()).expect("trains")
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let models = trained_models();
        let text = to_text(&models);
        let parsed = from_text(&text).expect("parses back");
        assert_eq!(models, parsed);
        // Predictions agree exactly too.
        let page = PageFeatures::new(2100, 1300, 620, 680, 590).expect("valid");
        let warm = Celsius::new(45.0);
        for f in models.dvfs.frequencies() {
            let inputs = PredictorInputs::for_frequency(
                page,
                f,
                &models.dvfs,
                Mpki::clamped(4.0),
                Utilization::clamped(0.6),
            );
            assert_eq!(
                models.predict_load_time(&inputs).value().to_bits(),
                parsed.predict_load_time(&inputs).value().to_bits()
            );
            assert_eq!(
                models
                    .predict_total_power(&inputs, warm, true)
                    .value()
                    .to_bits(),
                parsed
                    .predict_total_power(&inputs, warm, true)
                    .value()
                    .to_bits()
            );
        }
    }

    #[test]
    fn format_is_versioned_and_terminated() {
        let text = to_text(&trained_models());
        assert!(text.starts_with("dora-models v1\n"));
        assert!(text.ends_with("end\n"));
        assert!(text.contains("surface load_time period interaction"));
        assert!(text.contains("surface power natural linear"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("hello world").is_err());
        assert!(from_text("dora-models v2\n").is_err());
        // Truncation after the header.
        assert!(from_text("dora-models v1\ndvfs 2\nopp 300000 0.8\n").is_err());
    }

    #[test]
    fn rejects_corrupted_numbers() {
        let good = to_text(&trained_models());
        let bad = good.replacen("leakage", "leakage NaNsense", 1);
        assert!(from_text(&bad).is_err());
        let bad = good.replace("dvfs 14", "dvfs 9999");
        assert!(from_text(&bad).is_err());
    }

    #[test]
    fn rejects_unsorted_dvfs() {
        let good = to_text(&trained_models());
        // Swap the first two opp lines.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.swap(2, 3);
        assert!(from_text(&lines.join("\n")).is_err());
    }

    #[test]
    fn whitespace_and_blank_lines_tolerated() {
        let text = to_text(&trained_models());
        let padded: String = text.lines().map(|l| format!("  {l}  \n\n")).collect();
        let parsed = from_text(&padded).expect("parses with padding");
        assert_eq!(parsed, trained_models());
    }
}
