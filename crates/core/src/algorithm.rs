//! Algorithm 1 — the energy-efficient, QoS-aware frequency selection.
//!
//! ```text
//! function DORA(QoS_Target, Page_Complexity, Core_Utilization,
//!               Core_Temperature, L2_MPKI)
//!     max_PPW <- 0; optimal_freq <- 0
//!     for F in AllFrequencies:
//!         pred_time <- PredictLoadTime(F)
//!         if pred_time <= QoS_target:
//!             pred_power <- PredictTotalPower(F)
//!             pred_PPW <- 1 / (pred_time * pred_power)
//!             if pred_PPW > max_PPW:
//!                 max_PPW <- pred_PPW; optimal_freq <- F
//!     SetCoreFrequency(optimal_freq)
//! ```
//!
//! When no frequency meets the target, "DORA prioritizes for QoS and
//! chooses the highest frequency setting to ensure that the web pages are
//! loaded as fast as possible" (Section V-D).

use crate::models::{DoraModels, PredictorInputs};
use dora_browser::PageFeatures;
use dora_sim_core::units::{Celsius, Mpki, Ppw, Seconds, Utilization};
use dora_soc::{BoardConfig, ClusterId, Frequency, MigrationCost, OperatingPoint};

/// One row of the predicted curve: what the models expect at a candidate
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPoint {
    /// The candidate frequency.
    pub frequency: Frequency,
    /// Predicted page load time.
    pub load_time: Seconds,
    /// Predicted total device power.
    pub power: dora_sim_core::units::Watts,
    /// Predicted energy efficiency `1/(T·P)`.
    pub ppw: Ppw,
    /// Whether the predicted load time meets the QoS target.
    pub feasible: bool,
}

/// The outcome of one Algorithm 1 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyDecision {
    /// The chosen frequency (`fopt`, or `fmax` when infeasible).
    pub chosen: Frequency,
    /// Whether any frequency met the QoS target.
    pub feasible: bool,
    /// The predicted PPW at the chosen frequency.
    pub predicted_ppw: Ppw,
    /// The full predicted curve, ascending in frequency — the paper's
    /// Fig. 4 sketch shows DORA sweeping exactly this.
    pub curve: Vec<PredictedPoint>,
}

impl FrequencyDecision {
    /// The lowest frequency whose prediction meets the deadline (`fD`),
    /// if any.
    pub fn f_deadline(&self) -> Option<Frequency> {
        self.curve.iter().find(|p| p.feasible).map(|p| p.frequency)
    }

    /// The unconstrained PPW-optimal frequency (`fE`), ignoring the
    /// deadline entirely.
    /// Returns the minimum table frequency on an empty curve (which
    /// [`select_frequency`] never produces).
    pub fn f_energy(&self) -> Frequency {
        self.curve
            .iter()
            .max_by(|a, b| a.ppw.total_cmp(&b.ppw))
            .map_or(self.chosen, |p| p.frequency)
    }
}

/// Runs Algorithm 1 over every frequency in the model's DVFS table.
///
/// * `qos_target` — the load-time deadline.
/// * `l2_mpki`, `corun_utilization`, `temp` — the sampled dynamic
///   conditions.
/// * `include_leakage` — `false` reproduces `DORA_no_lkg`.
///
/// # Panics
///
/// Panics if `qos_target` is not positive and finite.
pub fn select_frequency(
    models: &DoraModels,
    page: PageFeatures,
    qos_target: Seconds,
    l2_mpki: Mpki,
    corun_utilization: Utilization,
    temp: Celsius,
    include_leakage: bool,
) -> FrequencyDecision {
    assert!(
        qos_target.is_finite() && qos_target > Seconds::ZERO,
        "bad QoS target {qos_target}"
    );
    let mut curve = Vec::with_capacity(models.dvfs.len());
    let mut best: Option<(Frequency, Ppw)> = None;
    for f in models.dvfs.frequencies() {
        let inputs =
            PredictorInputs::for_frequency(page, f, &models.dvfs, l2_mpki, corun_utilization);
        let load_time = models.predict_load_time(&inputs);
        let power = models.predict_total_power(&inputs, temp, include_leakage);
        let ppw = Ppw::from_time_power(load_time, power);
        let feasible = load_time <= qos_target;
        if feasible && best.as_ref().is_none_or(|&(_, b)| ppw > b) {
            best = Some((f, ppw));
        }
        curve.push(PredictedPoint {
            frequency: f,
            load_time,
            power,
            ppw,
            feasible,
        });
    }
    match best {
        Some((chosen, predicted_ppw)) => FrequencyDecision {
            chosen,
            feasible: true,
            predicted_ppw,
            curve,
        },
        None => {
            // Infeasible: prioritize QoS — run flat out.
            let fmax = models.dvfs.max_frequency();
            let ppw = curve.last().map_or(Ppw::ZERO, |p| p.ppw);
            FrequencyDecision {
                chosen: fmax,
                feasible: false,
                predicted_ppw: ppw,
                curve,
            }
        }
    }
}

/// The prediction machinery for one cluster of a heterogeneous SoC.
///
/// The trained [`DoraModels`] describe the *primary* cluster (the one the
/// training measurements ran on). A sibling cluster reuses the same
/// surfaces over its own DVFS table, corrected by two first-order ratios:
/// `time_scale` (the clusters' base-CPI ratio — an in-order A7 retires the
/// same work in more cycles than an out-of-order A15) and `power_scale`
/// (their effective-capacitance ratio). This mirrors how the heterogeneous
/// relatives of the paper transfer one cluster's model to the other
/// (1710.03559 Section 3; 1906.08689 Section 2.1) instead of training per
/// cluster.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// Which cluster these predictions describe.
    pub cluster: ClusterId,
    /// The model bundle, with `models.dvfs` holding this cluster's table.
    pub models: DoraModels,
    /// Predicted load time multiplier relative to the trained cluster.
    pub time_scale: f64,
    /// Predicted power multiplier relative to the trained cluster.
    pub power_scale: f64,
}

impl ClusterModel {
    /// Wraps trained models as the primary cluster, scales exactly `1.0`.
    ///
    /// Predictions through this wrapper are bit-identical to calling the
    /// models directly (an IEEE multiply by `1.0` is exact), which is what
    /// lets [`select_operating_point`] reduce to [`select_frequency`] on
    /// homogeneous profiles.
    pub fn primary(models: DoraModels) -> Self {
        ClusterModel {
            cluster: ClusterId::PRIMARY,
            models,
            time_scale: 1.0,
            power_scale: 1.0,
        }
    }

    /// Builds one model per cluster of `board`, scaling the trained
    /// (primary-cluster) models by each cluster's CPI and effective-
    /// capacitance ratios and swapping in its DVFS table.
    ///
    /// # Panics
    ///
    /// Panics if `board` has no clusters (a validated [`BoardConfig`]
    /// always has at least one).
    pub fn from_profile(models: &DoraModels, board: &BoardConfig) -> Vec<ClusterModel> {
        #[allow(clippy::expect_used)] // documented panic: validated configs are non-empty
        let primary = board.clusters.first().expect("validated config");
        board
            .clusters
            .iter()
            .enumerate()
            .map(|(i, cluster)| {
                let mut scaled = models.clone();
                scaled.dvfs = cluster.dvfs.clone();
                ClusterModel {
                    cluster: ClusterId::new(i),
                    models: scaled,
                    time_scale: cluster.cpi_scale / primary.cpi_scale,
                    power_scale: cluster.ceff_core_f / primary.ceff_core_f,
                }
            })
            .collect()
    }
}

/// One row of the 2-D predicted curve: what the models expect at a
/// candidate (cluster, frequency) operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedOperatingPoint {
    /// The candidate operating point.
    pub point: OperatingPoint,
    /// Predicted page load time, *including* the one-shot migration
    /// latency when the candidate sits on a different cluster than the
    /// current one.
    pub load_time: Seconds,
    /// Predicted total device power.
    pub power: dora_sim_core::units::Watts,
    /// Predicted energy efficiency `1/(T·P + E_migration)`.
    pub ppw: Ppw,
    /// Whether the predicted load time (with migration) meets the target.
    pub feasible: bool,
    /// Whether choosing this point implies a cluster migration.
    pub migrating: bool,
}

/// The outcome of one 2-D (cluster, frequency) Algorithm 1 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPointDecision {
    /// The chosen operating point (or the fastest cluster's `fmax` when
    /// no point is feasible).
    pub chosen: OperatingPoint,
    /// Whether any operating point met the QoS target.
    pub feasible: bool,
    /// The predicted PPW at the chosen point.
    pub predicted_ppw: Ppw,
    /// The full predicted curve, cluster-major with frequencies ascending
    /// within each cluster.
    pub curve: Vec<PredictedOperatingPoint>,
}

impl OperatingPointDecision {
    /// The first feasible point in cluster-major, frequency-ascending
    /// order — the 2-D generalization of `fD` (on one cluster this is
    /// exactly the lowest deadline-meeting frequency).
    pub fn point_deadline(&self) -> Option<OperatingPoint> {
        self.curve.iter().find(|p| p.feasible).map(|p| p.point)
    }

    /// The unconstrained PPW-optimal point (`fE` generalized), deadline
    /// disregarded. Returns the chosen point on an empty curve (which
    /// [`select_operating_point`] never produces).
    pub fn point_energy(&self) -> OperatingPoint {
        self.curve
            .iter()
            .max_by(|a, b| a.ppw.total_cmp(&b.ppw))
            .map_or(self.chosen, |p| p.point)
    }
}

/// Runs Algorithm 1 over the full (cluster, frequency) product space.
///
/// For every cluster model and every frequency in its table, the
/// predicted load time and power are scaled by the cluster's ratios;
/// candidates on a different cluster than `current` additionally pay the
/// migration cost — `migration.latency` is added to the predicted load
/// time (and counts against the QoS target) and `migration.energy` enters
/// the efficiency denominator: `PPW = 1/(T·P + E_migration)`. Among
/// feasible points the PPW maximum wins, ties resolved toward the
/// earliest cluster and lowest frequency; when nothing is feasible the
/// search prioritizes QoS and picks `fmax` of the cluster with the
/// smallest predicted load time.
///
/// With a single [`ClusterModel::primary`] entry and zero migration cost
/// this reduces bit-identically to [`select_frequency`].
///
/// # Panics
///
/// Panics if `qos_target` is not positive and finite, or if `clusters`
/// is empty.
#[allow(clippy::too_many_arguments)] // mirrors select_frequency + the 2-D inputs
pub fn select_operating_point(
    clusters: &[ClusterModel],
    current: OperatingPoint,
    migration: MigrationCost,
    page: PageFeatures,
    qos_target: Seconds,
    l2_mpki: Mpki,
    corun_utilization: Utilization,
    temp: Celsius,
    include_leakage: bool,
) -> OperatingPointDecision {
    assert!(
        qos_target.is_finite() && qos_target > Seconds::ZERO,
        "bad QoS target {qos_target}"
    );
    assert!(!clusters.is_empty(), "need at least one cluster model");
    let mut curve = Vec::with_capacity(clusters.iter().map(|c| c.models.dvfs.len()).sum::<usize>());
    let mut best: Option<(OperatingPoint, Ppw)> = None;
    // Index into `curve` of each cluster's fmax row, for the fallback.
    let mut fmax_rows = Vec::with_capacity(clusters.len());
    for cm in clusters {
        let migrating = cm.cluster != current.cluster;
        for f in cm.models.dvfs.frequencies() {
            let inputs = PredictorInputs::for_frequency(
                page,
                f,
                &cm.models.dvfs,
                l2_mpki,
                corun_utilization,
            );
            let mut load_time = cm.models.predict_load_time(&inputs) * cm.time_scale;
            let power = cm
                .models
                .predict_total_power(&inputs, temp, include_leakage)
                * cm.power_scale;
            let mut energy = power * load_time;
            if migrating {
                load_time += Seconds::new(migration.latency.as_secs_f64());
                energy = power * load_time + migration.energy;
            }
            let ppw = Ppw::from_energy(energy);
            let feasible = load_time <= qos_target;
            let point = OperatingPoint {
                cluster: cm.cluster,
                frequency: f,
            };
            if feasible && best.as_ref().is_none_or(|&(_, b)| ppw > b) {
                best = Some((point, ppw));
            }
            curve.push(PredictedOperatingPoint {
                point,
                load_time,
                power,
                ppw,
                feasible,
                migrating,
            });
        }
        fmax_rows.push(curve.len() - 1);
    }
    match best {
        Some((chosen, predicted_ppw)) => OperatingPointDecision {
            chosen,
            feasible: true,
            predicted_ppw,
            curve,
        },
        None => {
            // Infeasible: prioritize QoS — the fastest finisher, flat out.
            // `min_by` keeps the first minimum, so ties go to the earlier
            // cluster, and one cluster reduces to plain fmax.
            #[allow(clippy::expect_used)] // documented panic: `clusters` is asserted non-empty
            let fastest = fmax_rows
                .iter()
                .map(|&i| curve[i])
                .min_by(|a, b| a.load_time.total_cmp(&b.load_time))
                .expect("at least one cluster");
            OperatingPointDecision {
                chosen: fastest.point,
                feasible: false,
                predicted_ppw: fastest.ppw,
                curve,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{FrequencyEncoding, PiecewiseSurface};
    use dora_modeling::leakage::Eq5Params;
    use dora_modeling::surface::{FittedSurface, ResponseSurface, SurfaceKind};
    use dora_soc::DvfsTable;

    fn page() -> PageFeatures {
        PageFeatures::new(2100, 1300, 620, 680, 590).expect("valid")
    }

    /// Fits a 9-input surface to a synthetic function of (mpki, freq).
    fn surface_of(f: impl Fn(f64, f64) -> f64) -> FittedSurface {
        let dvfs = DvfsTable::default();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for freq in dvfs.frequencies() {
            for mpki in [0.0f64, 2.0, 5.0, 10.0, 20.0] {
                for util in [0.0f64, 0.5, 1.0] {
                    let inputs = PredictorInputs::for_frequency(
                        page(),
                        freq,
                        &dvfs,
                        Mpki::clamped(mpki),
                        Utilization::clamped(util),
                    );
                    xs.push(inputs.to_vector());
                    ys.push(f(mpki, freq.as_ghz()));
                }
            }
        }
        ResponseSurface::new(SurfaceKind::Quadratic, 9)
            .fit(&xs, &ys)
            .expect("well posed")
    }

    /// A model bundle with physically-shaped synthetic truths:
    /// T = work/(f) + mpki penalty; P = floor + k·f².
    fn physical_models() -> DoraModels {
        let time = surface_of(|mpki, ghz| 2.2 / ghz + 0.05 * mpki);
        let power = surface_of(|_mpki, ghz| 1.4 + 0.35 * ghz * ghz);
        DoraModels {
            load_time: PiecewiseSurface::new([None, None, None], time, FrequencyEncoding::Natural),
            power: PiecewiseSurface::new([None, None, None], power, FrequencyEncoding::Natural),
            leakage: Eq5Params {
                k1: 0.22,
                alpha: 800.0,
                beta: -4300.0,
                k2: 0.05,
                gamma: 2.0,
                delta: -2.0,
            },
            dvfs: DvfsTable::default(),
        }
    }

    #[test]
    fn picks_a_feasible_ppw_maximizer() {
        let m = physical_models();
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(d.feasible);
        // The chosen point's predicted PPW is the max over feasible points.
        let best_feasible = d
            .curve
            .iter()
            .filter(|p| p.feasible)
            .map(|p| p.ppw)
            .fold(Ppw::ZERO, Ppw::max);
        assert!((d.predicted_ppw.value() - best_feasible.value()).abs() < 1e-12);
        let chosen_point = d
            .curve
            .iter()
            .find(|p| p.frequency == d.chosen)
            .expect("chosen is in curve");
        assert!(chosen_point.feasible);
    }

    #[test]
    fn tight_deadline_forces_high_frequency() {
        let m = physical_models();
        let relaxed = select_frequency(
            &m,
            page(),
            Seconds::new(10.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        let tight = select_frequency(
            &m,
            page(),
            Seconds::new(1.3),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(tight.chosen >= relaxed.chosen);
        assert!(tight.feasible);
    }

    #[test]
    fn impossible_deadline_falls_back_to_fmax() {
        let m = physical_models();
        // 0.1 s is unreachable: T >= 2.2/2.2656 ~ 0.97 s.
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(0.1),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(!d.feasible);
        assert_eq!(d.chosen, m.dvfs.max_frequency());
    }

    #[test]
    fn fopt_is_max_of_fd_fe_rule() {
        // Equation 1: fopt = fE if fD <= fE else fD.
        let m = physical_models();
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        let fd = d.f_deadline().expect("feasible");
        let fe = d.f_energy();
        let expected = if fd <= fe { fe } else { fd };
        assert_eq!(d.chosen, expected, "fD={fd} fE={fe}");
    }

    #[test]
    fn interference_shifts_fd_upward() {
        let m = physical_models();
        let calm = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(0.5),
            Utilization::clamped(0.2),
            Celsius::new(40.0),
            true,
        );
        let noisy = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(18.0),
            Utilization::clamped(1.0),
            Celsius::new(40.0),
            true,
        );
        let fd_calm = calm.f_deadline().expect("feasible");
        let fd_noisy = noisy.f_deadline().expect("feasible under pressure");
        assert!(
            fd_noisy >= fd_calm,
            "more interference cannot lower fD: {fd_calm} -> {fd_noisy}"
        );
        assert!(
            fd_noisy > fd_calm,
            "18 MPKI should move fD at a 3s deadline"
        );
    }

    #[test]
    fn curve_is_complete_and_ascending() {
        let m = physical_models();
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert_eq!(d.curve.len(), m.dvfs.len());
        for pair in d.curve.windows(2) {
            assert!(pair[0].frequency < pair[1].frequency);
        }
        // The fitted surface may wiggle locally (a polynomial approximating
        // 1/f), but end-to-end the trend must hold and times stay positive.
        let first = d.curve.first().expect("non-empty");
        let last = d.curve.last().expect("non-empty");
        assert!(first.load_time > last.load_time);
        assert!(d.curve.iter().all(|p| p.load_time > Seconds::ZERO));
    }

    #[test]
    #[should_panic(expected = "bad QoS target")]
    fn rejects_nonpositive_target() {
        let m = physical_models();
        let _ = select_frequency(
            &m,
            page(),
            Seconds::new(0.0),
            Mpki::clamped(1.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
    }

    fn biglittle_models() -> Vec<ClusterModel> {
        let board = dora_soc::SocProfile::biglittle_a15a7().board_config();
        ClusterModel::from_profile(&physical_models(), &board)
    }

    fn at(cluster: usize, mhz: f64) -> OperatingPoint {
        OperatingPoint {
            cluster: ClusterId::new(cluster),
            frequency: Frequency::from_mhz(mhz),
        }
    }

    #[test]
    fn single_cluster_search_reduces_to_select_frequency_bitwise() {
        let m = physical_models();
        let d1 = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        let d2 = select_operating_point(
            &[ClusterModel::primary(m)],
            at(0, 960.0),
            MigrationCost::none(),
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert_eq!(d2.chosen.cluster, ClusterId::PRIMARY);
        assert_eq!(d2.chosen.frequency, d1.chosen);
        assert_eq!(d2.feasible, d1.feasible);
        assert_eq!(d2.predicted_ppw, d1.predicted_ppw);
        assert_eq!(d2.curve.len(), d1.curve.len());
        for (p2, p1) in d2.curve.iter().zip(d1.curve.iter()) {
            assert_eq!(p2.point.frequency, p1.frequency);
            assert_eq!(p2.load_time, p1.load_time);
            assert_eq!(p2.power, p1.power);
            assert_eq!(p2.ppw, p1.ppw);
            assert_eq!(p2.feasible, p1.feasible);
            assert!(!p2.migrating);
        }
    }

    #[test]
    fn chosen_point_is_the_feasible_ppw_argmax_of_the_product_space() {
        let clusters = biglittle_models();
        let d = select_operating_point(
            &clusters,
            at(0, 1000.0),
            dora_soc::MigrationCost::biglittle(),
            page(),
            Seconds::new(4.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(d.feasible);
        // Exhaustive check over the returned curve: nothing feasible beats
        // the chosen point, and the chosen row matches the reported PPW.
        let chosen_row = d
            .curve
            .iter()
            .find(|p| p.point == d.chosen)
            .expect("chosen is in curve");
        assert!(chosen_row.feasible);
        assert_eq!(chosen_row.ppw, d.predicted_ppw);
        for p in d.curve.iter().filter(|p| p.feasible) {
            assert!(p.ppw <= d.predicted_ppw, "{:?} beats chosen", p.point);
        }
    }

    #[test]
    fn zero_migration_cost_reduces_to_per_cluster_argmax() {
        let clusters = biglittle_models();
        let current = at(0, 1000.0);
        let run = |models: &[ClusterModel]| {
            select_operating_point(
                models,
                current,
                MigrationCost::none(),
                page(),
                Seconds::new(4.0),
                Mpki::clamped(2.0),
                Utilization::clamped(0.5),
                Celsius::new(40.0),
                true,
            )
        };
        let full = run(&clusters);
        // Each cluster searched alone, then the per-cluster winners
        // compared: with zero migration cost the 2-D search must agree
        // (earlier cluster wins exact ties).
        let mut expected: Option<(OperatingPoint, Ppw)> = None;
        for cm in &clusters {
            let solo = run(std::slice::from_ref(cm));
            if solo.feasible
                && expected
                    .as_ref()
                    .is_none_or(|&(_, b)| solo.predicted_ppw > b)
            {
                expected = Some((solo.chosen, solo.predicted_ppw));
            }
        }
        let (point, ppw) = expected.expect("feasible somewhere");
        assert_eq!(full.chosen, point);
        assert_eq!(full.predicted_ppw, ppw);
    }

    #[test]
    fn migration_cost_only_penalizes_cross_cluster_candidates() {
        let clusters = biglittle_models();
        let current = at(0, 1000.0);
        let run = |migration: MigrationCost| {
            select_operating_point(
                &clusters,
                current,
                migration,
                page(),
                Seconds::new(4.0),
                Mpki::clamped(2.0),
                Utilization::clamped(0.5),
                Celsius::new(40.0),
                true,
            )
        };
        let free = run(MigrationCost::none());
        let paid = run(dora_soc::MigrationCost::biglittle());
        for (f, p) in free.curve.iter().zip(paid.curve.iter()) {
            assert_eq!(f.point, p.point);
            if p.migrating {
                assert!(p.load_time > f.load_time, "{:?}", p.point);
                assert!(p.ppw < f.ppw, "{:?}", p.point);
            } else {
                // Same-cluster rows are untouched by the migration model.
                assert_eq!(f.load_time, p.load_time);
                assert_eq!(f.ppw, p.ppw);
            }
        }
    }

    #[test]
    fn infeasible_product_space_runs_the_fastest_cluster_flat_out() {
        let clusters = biglittle_models();
        let d = select_operating_point(
            &clusters,
            at(0, 1000.0),
            dora_soc::MigrationCost::biglittle(),
            page(),
            Seconds::new(0.01),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(!d.feasible);
        // The A15 cluster at its fmax finishes first (the A7 pays a 1.6x
        // CPI scale), so QoS prioritization lands there.
        assert_eq!(d.chosen.cluster, ClusterId::new(0));
        assert_eq!(d.chosen.frequency, clusters[0].models.dvfs.max_frequency());
        let fallback_row = d
            .curve
            .iter()
            .find(|p| p.point == d.chosen)
            .expect("in curve");
        assert_eq!(d.predicted_ppw, fallback_row.ppw);
    }

    #[test]
    fn point_helpers_generalize_fd_and_fe() {
        let clusters = biglittle_models();
        let d = select_operating_point(
            &clusters,
            at(0, 1000.0),
            MigrationCost::none(),
            page(),
            Seconds::new(4.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        let fd = d.point_deadline().expect("feasible");
        let first_feasible = d.curve.iter().find(|p| p.feasible).expect("feasible");
        assert_eq!(fd, first_feasible.point);
        let fe = d.point_energy();
        let best = d
            .curve
            .iter()
            .max_by(|a, b| a.ppw.total_cmp(&b.ppw))
            .expect("non-empty");
        assert_eq!(fe, best.point);
    }
}
