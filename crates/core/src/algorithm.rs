//! Algorithm 1 — the energy-efficient, QoS-aware frequency selection.
//!
//! ```text
//! function DORA(QoS_Target, Page_Complexity, Core_Utilization,
//!               Core_Temperature, L2_MPKI)
//!     max_PPW <- 0; optimal_freq <- 0
//!     for F in AllFrequencies:
//!         pred_time <- PredictLoadTime(F)
//!         if pred_time <= QoS_target:
//!             pred_power <- PredictTotalPower(F)
//!             pred_PPW <- 1 / (pred_time * pred_power)
//!             if pred_PPW > max_PPW:
//!                 max_PPW <- pred_PPW; optimal_freq <- F
//!     SetCoreFrequency(optimal_freq)
//! ```
//!
//! When no frequency meets the target, "DORA prioritizes for QoS and
//! chooses the highest frequency setting to ensure that the web pages are
//! loaded as fast as possible" (Section V-D).

use crate::models::{DoraModels, PredictorInputs};
use dora_browser::PageFeatures;
use dora_sim_core::units::{Celsius, Mpki, Ppw, Seconds, Utilization};
use dora_soc::Frequency;

/// One row of the predicted curve: what the models expect at a candidate
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPoint {
    /// The candidate frequency.
    pub frequency: Frequency,
    /// Predicted page load time.
    pub load_time: Seconds,
    /// Predicted total device power.
    pub power: dora_sim_core::units::Watts,
    /// Predicted energy efficiency `1/(T·P)`.
    pub ppw: Ppw,
    /// Whether the predicted load time meets the QoS target.
    pub feasible: bool,
}

/// The outcome of one Algorithm 1 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyDecision {
    /// The chosen frequency (`fopt`, or `fmax` when infeasible).
    pub chosen: Frequency,
    /// Whether any frequency met the QoS target.
    pub feasible: bool,
    /// The predicted PPW at the chosen frequency.
    pub predicted_ppw: Ppw,
    /// The full predicted curve, ascending in frequency — the paper's
    /// Fig. 4 sketch shows DORA sweeping exactly this.
    pub curve: Vec<PredictedPoint>,
}

impl FrequencyDecision {
    /// The lowest frequency whose prediction meets the deadline (`fD`),
    /// if any.
    pub fn f_deadline(&self) -> Option<Frequency> {
        self.curve.iter().find(|p| p.feasible).map(|p| p.frequency)
    }

    /// The unconstrained PPW-optimal frequency (`fE`), ignoring the
    /// deadline entirely.
    /// Returns the minimum table frequency on an empty curve (which
    /// [`select_frequency`] never produces).
    pub fn f_energy(&self) -> Frequency {
        self.curve
            .iter()
            .max_by(|a, b| a.ppw.total_cmp(&b.ppw))
            .map_or(self.chosen, |p| p.frequency)
    }
}

/// Runs Algorithm 1 over every frequency in the model's DVFS table.
///
/// * `qos_target` — the load-time deadline.
/// * `l2_mpki`, `corun_utilization`, `temp` — the sampled dynamic
///   conditions.
/// * `include_leakage` — `false` reproduces `DORA_no_lkg`.
///
/// # Panics
///
/// Panics if `qos_target` is not positive and finite.
pub fn select_frequency(
    models: &DoraModels,
    page: PageFeatures,
    qos_target: Seconds,
    l2_mpki: Mpki,
    corun_utilization: Utilization,
    temp: Celsius,
    include_leakage: bool,
) -> FrequencyDecision {
    assert!(
        qos_target.is_finite() && qos_target > Seconds::ZERO,
        "bad QoS target {qos_target}"
    );
    let mut curve = Vec::with_capacity(models.dvfs.len());
    let mut best: Option<(Frequency, Ppw)> = None;
    for f in models.dvfs.frequencies() {
        let inputs =
            PredictorInputs::for_frequency(page, f, &models.dvfs, l2_mpki, corun_utilization);
        let load_time = models.predict_load_time(&inputs);
        let power = models.predict_total_power(&inputs, temp, include_leakage);
        let ppw = Ppw::from_time_power(load_time, power);
        let feasible = load_time <= qos_target;
        if feasible && best.as_ref().is_none_or(|&(_, b)| ppw > b) {
            best = Some((f, ppw));
        }
        curve.push(PredictedPoint {
            frequency: f,
            load_time,
            power,
            ppw,
            feasible,
        });
    }
    match best {
        Some((chosen, predicted_ppw)) => FrequencyDecision {
            chosen,
            feasible: true,
            predicted_ppw,
            curve,
        },
        None => {
            // Infeasible: prioritize QoS — run flat out.
            let fmax = models.dvfs.max_frequency();
            let ppw = curve.last().map_or(Ppw::ZERO, |p| p.ppw);
            FrequencyDecision {
                chosen: fmax,
                feasible: false,
                predicted_ppw: ppw,
                curve,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{FrequencyEncoding, PiecewiseSurface};
    use dora_modeling::leakage::Eq5Params;
    use dora_modeling::surface::{FittedSurface, ResponseSurface, SurfaceKind};
    use dora_soc::DvfsTable;

    fn page() -> PageFeatures {
        PageFeatures::new(2100, 1300, 620, 680, 590).expect("valid")
    }

    /// Fits a 9-input surface to a synthetic function of (mpki, freq).
    fn surface_of(f: impl Fn(f64, f64) -> f64) -> FittedSurface {
        let dvfs = DvfsTable::msm8974();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for freq in dvfs.frequencies() {
            for mpki in [0.0f64, 2.0, 5.0, 10.0, 20.0] {
                for util in [0.0f64, 0.5, 1.0] {
                    let inputs = PredictorInputs::for_frequency(
                        page(),
                        freq,
                        &dvfs,
                        Mpki::clamped(mpki),
                        Utilization::clamped(util),
                    );
                    xs.push(inputs.to_vector());
                    ys.push(f(mpki, freq.as_ghz()));
                }
            }
        }
        ResponseSurface::new(SurfaceKind::Quadratic, 9)
            .fit(&xs, &ys)
            .expect("well posed")
    }

    /// A model bundle with physically-shaped synthetic truths:
    /// T = work/(f) + mpki penalty; P = floor + k·f².
    fn physical_models() -> DoraModels {
        let time = surface_of(|mpki, ghz| 2.2 / ghz + 0.05 * mpki);
        let power = surface_of(|_mpki, ghz| 1.4 + 0.35 * ghz * ghz);
        DoraModels {
            load_time: PiecewiseSurface::new([None, None, None], time, FrequencyEncoding::Natural),
            power: PiecewiseSurface::new([None, None, None], power, FrequencyEncoding::Natural),
            leakage: Eq5Params {
                k1: 0.22,
                alpha: 800.0,
                beta: -4300.0,
                k2: 0.05,
                gamma: 2.0,
                delta: -2.0,
            },
            dvfs: DvfsTable::msm8974(),
        }
    }

    #[test]
    fn picks_a_feasible_ppw_maximizer() {
        let m = physical_models();
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(d.feasible);
        // The chosen point's predicted PPW is the max over feasible points.
        let best_feasible = d
            .curve
            .iter()
            .filter(|p| p.feasible)
            .map(|p| p.ppw)
            .fold(Ppw::ZERO, Ppw::max);
        assert!((d.predicted_ppw.value() - best_feasible.value()).abs() < 1e-12);
        let chosen_point = d
            .curve
            .iter()
            .find(|p| p.frequency == d.chosen)
            .expect("chosen is in curve");
        assert!(chosen_point.feasible);
    }

    #[test]
    fn tight_deadline_forces_high_frequency() {
        let m = physical_models();
        let relaxed = select_frequency(
            &m,
            page(),
            Seconds::new(10.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        let tight = select_frequency(
            &m,
            page(),
            Seconds::new(1.3),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(tight.chosen >= relaxed.chosen);
        assert!(tight.feasible);
    }

    #[test]
    fn impossible_deadline_falls_back_to_fmax() {
        let m = physical_models();
        // 0.1 s is unreachable: T >= 2.2/2.2656 ~ 0.97 s.
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(0.1),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert!(!d.feasible);
        assert_eq!(d.chosen, m.dvfs.max_frequency());
    }

    #[test]
    fn fopt_is_max_of_fd_fe_rule() {
        // Equation 1: fopt = fE if fD <= fE else fD.
        let m = physical_models();
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        let fd = d.f_deadline().expect("feasible");
        let fe = d.f_energy();
        let expected = if fd <= fe { fe } else { fd };
        assert_eq!(d.chosen, expected, "fD={fd} fE={fe}");
    }

    #[test]
    fn interference_shifts_fd_upward() {
        let m = physical_models();
        let calm = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(0.5),
            Utilization::clamped(0.2),
            Celsius::new(40.0),
            true,
        );
        let noisy = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(18.0),
            Utilization::clamped(1.0),
            Celsius::new(40.0),
            true,
        );
        let fd_calm = calm.f_deadline().expect("feasible");
        let fd_noisy = noisy.f_deadline().expect("feasible under pressure");
        assert!(
            fd_noisy >= fd_calm,
            "more interference cannot lower fD: {fd_calm} -> {fd_noisy}"
        );
        assert!(
            fd_noisy > fd_calm,
            "18 MPKI should move fD at a 3s deadline"
        );
    }

    #[test]
    fn curve_is_complete_and_ascending() {
        let m = physical_models();
        let d = select_frequency(
            &m,
            page(),
            Seconds::new(3.0),
            Mpki::clamped(2.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
        assert_eq!(d.curve.len(), m.dvfs.len());
        for pair in d.curve.windows(2) {
            assert!(pair[0].frequency < pair[1].frequency);
        }
        // The fitted surface may wiggle locally (a polynomial approximating
        // 1/f), but end-to-end the trend must hold and times stay positive.
        let first = d.curve.first().expect("non-empty");
        let last = d.curve.last().expect("non-empty");
        assert!(first.load_time > last.load_time);
        assert!(d.curve.iter().all(|p| p.load_time > Seconds::ZERO));
    }

    #[test]
    #[should_panic(expected = "bad QoS target")]
    fn rejects_nonpositive_target() {
        let m = physical_models();
        let _ = select_frequency(
            &m,
            page(),
            Seconds::new(0.0),
            Mpki::clamped(1.0),
            Utilization::clamped(0.5),
            Celsius::new(40.0),
            true,
        );
    }
}
