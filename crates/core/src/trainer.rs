//! Offline training pipeline.
//!
//! Section IV-C: "Over 300 measurements of power and web page load times
//! are taken by executing multiple workload combinations at different
//! frequency settings … The observations are used to determine the
//! coefficients of the power and performance models using mean square
//! error minimization."
//!
//! The trainer consumes those observations (produced in this reproduction
//! by the `dora-campaign` crate's measurement sweeps), plus idle
//! voltage/temperature leakage calibration points, and emits a
//! [`DoraModels`] bundle:
//!
//! * load-time surface — interaction form by default (the paper's pick,
//!   Section V-A);
//! * power surface — linear form by default (the paper's pick), trained on
//!   `measured_total − fitted_leakage` so the Eq. 5 term isn't learned
//!   twice;
//! * Eq. 5 leakage fit via Levenberg–Marquardt.
//!
//! Surfaces are fit piecewise per memory-bus tier when a tier has enough
//! observations, with a global fallback fit always present.

use crate::models::{DoraModels, FrequencyEncoding, PiecewiseSurface, PredictorInputs};
use dora_modeling::leakage::{fit_leakage, LeakageObservation};
use dora_modeling::metrics::{evaluate, EvalSummary};
use dora_modeling::surface::{FittedSurface, ResponseSurface, SurfaceKind};
use dora_modeling::ModelError;
use dora_sim_core::units::{Celsius, Seconds, Watts};
use dora_soc::DvfsTable;

/// One offline measurement: the Table I inputs and what the platform did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingObservation {
    /// The nine Table I variables at measurement time.
    pub inputs: PredictorInputs,
    /// Measured web page load time.
    pub load_time: Seconds,
    /// Measured mean device power over the load.
    pub total_power: Watts,
    /// Mean die temperature over the load (for leakage subtraction).
    pub mean_temp: Celsius,
}

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Response surface for load time (paper: interaction).
    pub time_surface: SurfaceKind,
    /// Response surface for power (paper: linear).
    pub power_surface: SurfaceKind,
    /// How the load-time surface sees X7/X8. [`FrequencyEncoding::Period`]
    /// (the default) lets the interaction terms represent `work/frequency`
    /// exactly; [`FrequencyEncoding::Natural`] is the naive choice, kept
    /// for the design-choice ablation.
    pub time_encoding: FrequencyEncoding,
    /// A bus tier gets its own fit only when it has at least this many
    /// observations per model term (conditioning guard).
    pub min_rows_per_term: usize,
    /// Seed for the leakage fit's randomized restarts.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            time_surface: SurfaceKind::Interaction,
            power_surface: SurfaceKind::Linear,
            time_encoding: FrequencyEncoding::Period,
            min_rows_per_term: 2,
            seed: 0xD0_0A,
        }
    }
}

/// Trains the full DORA model bundle.
///
/// # Errors
///
/// Propagates [`ModelError`] from the surface fits (too few observations,
/// singular designs) or the leakage fit.
pub fn train(
    observations: &[TrainingObservation],
    leakage_observations: &[LeakageObservation],
    dvfs: &DvfsTable,
    config: TrainerConfig,
) -> Result<DoraModels, ModelError> {
    if observations.is_empty() {
        return Err(ModelError::TooFewObservations { got: 0, need: 1 });
    }
    let leakage = fit_leakage(leakage_observations, config.seed)?.params;

    // Dynamic-power target: measured total minus the fitted leakage at the
    // observation's voltage and mean temperature.
    let xs: Vec<Vec<f64>> = observations.iter().map(|o| o.inputs.to_vector()).collect();
    let t_ys: Vec<f64> = observations.iter().map(|o| o.load_time.value()).collect();
    let p_ys: Vec<f64> = observations
        .iter()
        .map(|o| {
            let voltage = dvfs.nearest_opp(o.inputs.core_frequency).voltage;
            let lkg = leakage.eval(voltage, o.mean_temp);
            (o.total_power - lkg).value().max(0.05)
        })
        .collect();

    let load_time = fit_piecewise(
        config.time_surface,
        config.time_encoding,
        dvfs,
        observations,
        &xs,
        &t_ys,
        config,
    )?;
    let power = fit_piecewise(
        config.power_surface,
        FrequencyEncoding::Natural,
        dvfs,
        observations,
        &xs,
        &p_ys,
        config,
    )?;

    Ok(DoraModels {
        load_time,
        power,
        leakage,
        dvfs: dvfs.clone(),
    })
}

/// Fits the global surface plus any tier with enough observations.
fn fit_piecewise(
    kind: SurfaceKind,
    encoding: FrequencyEncoding,
    dvfs: &DvfsTable,
    observations: &[TrainingObservation],
    xs: &[Vec<f64>],
    ys: &[f64],
    config: TrainerConfig,
) -> Result<PiecewiseSurface, ModelError> {
    let surface = ResponseSurface::new(kind, 9);
    let encoded: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            let mut e = x.clone();
            encoding.encode(&mut e);
            e
        })
        .collect();
    let global = surface.fit(&encoded, ys)?;
    let need = surface.term_count() * config.min_rows_per_term;

    let mut per_tier: [Option<FittedSurface>; 3] = [None, None, None];
    for (tier_index, tier) in per_tier.iter_mut().enumerate() {
        let rows: Vec<usize> = observations
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                let f = dvfs.nearest(o.inputs.core_frequency);
                dvfs.bus_tier(f).index() == tier_index
            })
            .map(|(i, _)| i)
            .collect();
        if rows.len() < need {
            continue;
        }
        let tier_xs: Vec<Vec<f64>> = rows.iter().map(|&i| encoded[i].clone()).collect();
        let tier_ys: Vec<f64> = rows.iter().map(|&i| ys[i]).collect();
        if let Ok(fit) = surface.fit(&tier_xs, &tier_ys) {
            *tier = Some(fit);
        }
    }
    Ok(PiecewiseSurface::new(per_tier, global, encoding))
}

/// Model-quality report for a trained bundle against a set of
/// observations — the data behind Fig. 5 and the Section V-A accuracies.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEvaluation {
    /// Load-time prediction quality.
    pub load_time: EvalSummary,
    /// Total-power prediction quality.
    pub power: EvalSummary,
}

/// Evaluates a trained bundle on (typically held-out) observations.
///
/// # Panics
///
/// Panics if `observations` is empty.
pub fn evaluate_models(
    models: &DoraModels,
    observations: &[TrainingObservation],
) -> ModelEvaluation {
    assert!(!observations.is_empty(), "nothing to evaluate");
    let mut t_pred = Vec::with_capacity(observations.len());
    let mut t_true = Vec::with_capacity(observations.len());
    let mut p_pred = Vec::with_capacity(observations.len());
    let mut p_true = Vec::with_capacity(observations.len());
    for o in observations {
        t_pred.push(models.predict_load_time(&o.inputs).value());
        t_true.push(o.load_time.value());
        p_pred.push(
            models
                .predict_total_power(&o.inputs, o.mean_temp, true)
                .value(),
        );
        p_true.push(o.total_power.value());
    }
    ModelEvaluation {
        load_time: evaluate(&t_pred, &t_true),
        power: evaluate(&p_pred, &p_true),
    }
}

/// Section V-A's model-selection study: trains every surface kind for both
/// responses and reports held-out error, so the experiment harness can show
/// *why* the paper picked interaction for time and linear for power.
///
/// Returns `(kind, load_time_eval, power_eval)` triples.
///
/// # Errors
///
/// Propagates fitting failures.
pub fn compare_surface_kinds(
    train_set: &[TrainingObservation],
    eval_set: &[TrainingObservation],
    leakage_observations: &[LeakageObservation],
    dvfs: &DvfsTable,
    seed: u64,
) -> Result<Vec<(SurfaceKind, EvalSummary, EvalSummary)>, ModelError> {
    let mut out = Vec::new();
    for kind in SurfaceKind::ALL {
        let config = TrainerConfig {
            time_surface: kind,
            power_surface: kind,
            seed,
            ..TrainerConfig::default()
        };
        let models = train(train_set, leakage_observations, dvfs, config)?;
        let eval = evaluate_models(&models, eval_set);
        out.push((kind, eval.load_time, eval.power));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_browser::PageFeatures;
    use dora_modeling::leakage::Eq5Params;
    use dora_sim_core::units::{Mpki, Utilization};
    use dora_sim_core::Rng;

    fn truth_leakage() -> Eq5Params {
        Eq5Params {
            k1: 0.22,
            alpha: 800.0,
            beta: -4300.0,
            k2: 0.05,
            gamma: 2.0,
            delta: -2.0,
        }
    }

    /// Synthetic observations from a physically-shaped ground truth, with
    /// small measurement noise.
    fn synth_observations(n_pages: usize, seed: u64) -> Vec<TrainingObservation> {
        let dvfs = DvfsTable::default();
        let mut rng = Rng::seed_from_u64(seed);
        let mut obs = Vec::new();
        for pi in 0..n_pages {
            let page = PageFeatures::synthesize(&mut rng, pi as f64 / (n_pages - 1) as f64);
            let work = 2.0e8 + 4.5e5 * page.dom_nodes() as f64 + 2.0e5 * page.class_attrs() as f64;
            for f in dvfs.frequencies() {
                for mpki in [0.4, 3.0, 11.0] {
                    let util = rng.range_f64(0.3, 1.0);
                    let inputs = PredictorInputs::for_frequency(
                        page,
                        f,
                        &dvfs,
                        Mpki::clamped(mpki),
                        Utilization::clamped(util),
                    );
                    let ghz = f.as_ghz();
                    let t = work / (ghz * 1.4e9) * (1.0 + 0.03 * mpki) * rng.jitter(0.01);
                    let temp = Celsius::new(30.0 + 12.0 * ghz);
                    let v = dvfs.voltage_of(f).expect("table entry");
                    let p_dyn = 1.4 + 0.9 * v * v * ghz + 0.02 * mpki;
                    let p = (p_dyn + truth_leakage().eval(v, temp).value()) * rng.jitter(0.01);
                    obs.push(TrainingObservation {
                        inputs,
                        load_time: Seconds::new(t),
                        total_power: Watts::new(p),
                        mean_temp: temp,
                    });
                }
            }
        }
        obs
    }

    fn synth_leakage(seed: u64) -> Vec<LeakageObservation> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut out = Vec::new();
        for vi in 0..8 {
            for ti in 0..5 {
                let v = 0.78 + 0.34 * vi as f64 / 7.0;
                let c = Celsius::new(22.0 + 50.0 * ti as f64 / 4.0);
                out.push(LeakageObservation {
                    voltage: v,
                    temp: c,
                    power: truth_leakage().eval(v, c) * rng.jitter(0.01),
                });
            }
        }
        out
    }

    #[test]
    fn trains_and_predicts_held_out_accurately() {
        let dvfs = DvfsTable::default();
        let all = synth_observations(10, 1);
        // Hold out every 5th observation.
        let train_set: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 5 != 0)
            .map(|(_, o)| *o)
            .collect();
        let eval_set: Vec<_> = all.iter().step_by(5).copied().collect();
        let models = train(
            &train_set,
            &synth_leakage(2),
            &dvfs,
            TrainerConfig::default(),
        )
        .expect("trains");
        let eval = evaluate_models(&models, &eval_set);
        assert!(
            eval.load_time.mape < 0.06,
            "load-time MAPE {:.3}",
            eval.load_time.mape
        );
        assert!(eval.power.mape < 0.06, "power MAPE {:.3}", eval.power.mape);
        assert!(eval.load_time.r_squared > 0.95);
    }

    #[test]
    fn piecewise_tiers_are_fit_with_enough_data() {
        let dvfs = DvfsTable::default();
        let all = synth_observations(12, 3);
        let models =
            train(&all, &synth_leakage(4), &dvfs, TrainerConfig::default()).expect("trains");
        // 12 pages x 14 freqs x 3 mpki = 504 rows; each tier should be fit.
        assert_eq!(models.load_time.tier_count(), 3);
        assert_eq!(models.power.tier_count(), 3);
    }

    #[test]
    fn leakage_fit_is_recovered() {
        let dvfs = DvfsTable::default();
        let all = synth_observations(6, 5);
        let models =
            train(&all, &synth_leakage(6), &dvfs, TrainerConfig::default()).expect("trains");
        let t = truth_leakage();
        for (v, c) in [(0.85, 35.0), (1.05, 60.0)] {
            let c = Celsius::new(c);
            let truth = t.eval(v, c).value();
            let rel = (models.leakage.eval(v, c).value() - truth).abs() / truth;
            assert!(rel < 0.08, "leakage rel error {rel} at ({v},{c})");
        }
    }

    #[test]
    fn empty_observations_rejected() {
        let dvfs = DvfsTable::default();
        assert!(matches!(
            train(&[], &synth_leakage(1), &dvfs, TrainerConfig::default()).unwrap_err(),
            ModelError::TooFewObservations { .. }
        ));
    }

    #[test]
    fn compare_kinds_reports_all_three() {
        let dvfs = DvfsTable::default();
        // Enough pages that each bus tier earns its own piecewise fit —
        // matching the real campaign's data volume (42 workloads x 14
        // frequencies).
        let all = synth_observations(12, 7);
        let train_set: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 0)
            .map(|(_, o)| *o)
            .collect();
        let eval_set: Vec<_> = all.iter().step_by(4).copied().collect();
        let report = compare_surface_kinds(&train_set, &eval_set, &synth_leakage(8), &dvfs, 9)
            .expect("all kinds train");
        assert_eq!(report.len(), 3);
        // Every kind should be sane on this smooth synthetic truth. The
        // tolerance is loose because no polynomial represents the 1/f term
        // exactly; the paper's own study (Section V-A) is about exactly
        // these relative differences.
        for (kind, t_eval, p_eval) in &report {
            assert!(
                t_eval.mape < 0.35,
                "{kind} load-time MAPE {:.3}",
                t_eval.mape
            );
            assert!(p_eval.mape < 0.20, "{kind} power MAPE {:.3}", p_eval.mape);
        }
        // The interaction form (the paper's pick) must be competitive.
        let interaction = report
            .iter()
            .find(|(k, _, _)| *k == SurfaceKind::Interaction)
            .expect("present");
        assert!(
            interaction.1.mape < 0.10,
            "interaction MAPE {:.3}",
            interaction.1.mape
        );
    }
}
