//! DORA as a runtime frequency governor.
//!
//! The paper implements DORA "as a light-weight user space frequency
//! governor within the Android OS" with a 100 ms decision interval
//! (Section IV-C: 250 ms is too slow to track page phases, 50 ms and
//! 100 ms perform similarly, so the less intrusive 100 ms wins). Each
//! interval it re-runs Algorithm 1 with freshly sampled MPKI, co-runner
//! utilization and temperature, and reprograms the clock only when `fopt`
//! moved.

use crate::algorithm::{
    select_frequency, select_operating_point, ClusterModel, FrequencyDecision,
    OperatingPointDecision,
};
use crate::models::DoraModels;
use dora_browser::PageFeatures;
use dora_governors::{Governor, GovernorObservation};
use dora_sim_core::units::{Ppw, Seconds};
use dora_sim_core::SimDuration;
use dora_soc::{BoardConfig, ClusterId, Frequency, MigrationCost, OperatingPoint};

/// Which frequency the governor extracts from each Algorithm 1 sweep.
///
/// The paper compares DORA against "two hypothetical governors —
/// `Deadline (DL)` and `Energy Efficient (EE)`" (Section V-C) that share
/// DORA's prediction machinery but optimize only one half of the
/// objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DoraPolicy {
    /// Full Algorithm 1: the PPW-optimal deadline-meeting frequency.
    #[default]
    Dora,
    /// `DL` — the lowest predicted-feasible frequency (`fD`), energy
    /// efficiency disregarded; `fmax` when infeasible.
    DeadlineOnly,
    /// `EE` — the predicted PPW-optimal frequency (`fE`), deadline
    /// disregarded.
    EnergyOnly,
}

/// Configuration of the DORA governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoraConfig {
    /// The web-page load-time QoS target (the paper's default
    /// user-satisfaction deadline is 3 s, from a user survey).
    pub qos_target: Seconds,
    /// Decision cadence (paper default: 100 ms).
    pub decision_interval: SimDuration,
    /// Whether the power prediction includes the Eq. 5 leakage term;
    /// `false` yields the paper's `DORA_no_lkg` ablation (Fig. 10a).
    pub include_leakage: bool,
    /// Which frequency to extract from the predicted curve.
    pub policy: DoraPolicy,
    /// Safety margin on the QoS check: a frequency counts as feasible
    /// only when the predicted load time is below
    /// `(1 − qos_margin) · qos_target`. Small model errors on
    /// borderline workloads otherwise turn into real deadline misses.
    pub qos_margin: f64,
    /// Switch hysteresis: stay at the current frequency when it is still
    /// feasible and its predicted PPW is within this relative margin of
    /// the new optimum. Section V-H: DORA "decides to change the frequency
    /// setting only when the system performance conditions have changed
    /// significantly enough to alter fopt" — each switch costs a real
    /// stall, so marginal improvements are not worth chasing.
    pub switch_margin: f64,
}

impl Default for DoraConfig {
    fn default() -> Self {
        DoraConfig {
            qos_target: Seconds::new(3.0),
            decision_interval: SimDuration::from_millis(100),
            include_leakage: true,
            policy: DoraPolicy::Dora,
            qos_margin: 0.03,
            switch_margin: 0.03,
        }
    }
}

impl DoraConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.qos_target.is_finite() && self.qos_target > Seconds::ZERO) {
            return Err(format!("bad QoS target {}", self.qos_target));
        }
        if self.decision_interval.is_zero() {
            return Err("decision interval must be positive".into());
        }
        if !(self.qos_margin.is_finite() && (0.0..=0.5).contains(&self.qos_margin)) {
            return Err(format!("qos_margin {} outside [0, 0.5]", self.qos_margin));
        }
        if !(self.switch_margin.is_finite() && (0.0..=0.5).contains(&self.switch_margin)) {
            return Err(format!(
                "switch_margin {} outside [0, 0.5]",
                self.switch_margin
            ));
        }
        Ok(())
    }
}

/// The DORA governor: statically-trained models + Algorithm 1, run every
/// decision interval.
///
/// # Example
///
/// Construction requires a trained [`DoraModels`] bundle; see the
/// `trainer` module and `examples/quickstart.rs` for the full pipeline.
#[derive(Debug, Clone)]
pub struct DoraGovernor {
    models: DoraModels,
    config: DoraConfig,
    page: PageFeatures,
    name: String,
    last_decision: Option<FrequencyDecision>,
    decision_count: u64,
}

impl DoraGovernor {
    /// Creates a DORA governor for loading `page` under the given trained
    /// models and configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(models: DoraModels, page: PageFeatures, config: DoraConfig) -> Self {
        #[allow(clippy::expect_used)] // constructor contract: documented panic
        config.validate().expect("invalid DORA configuration");
        let name = match (config.policy, config.include_leakage) {
            (DoraPolicy::Dora, true) => "DORA".to_string(),
            (DoraPolicy::Dora, false) => "DORA_no_lkg".to_string(),
            (DoraPolicy::DeadlineOnly, _) => "DL".to_string(),
            (DoraPolicy::EnergyOnly, _) => "EE".to_string(),
        };
        DoraGovernor {
            models,
            config,
            page,
            name,
            last_decision: None,
            decision_count: 0,
        }
    }

    /// The governor's configuration.
    pub fn config(&self) -> DoraConfig {
        self.config
    }

    /// The page the governor is optimizing for. The paper reads the page
    /// complexity "before a page is rendered"; re-targeting a new page is
    /// a [`DoraGovernor::retarget`] call, not a retrain.
    pub fn page(&self) -> PageFeatures {
        self.page
    }

    /// Points the governor at a new page (models are page-independent).
    pub fn retarget(&mut self, page: PageFeatures) {
        self.page = page;
        self.last_decision = None;
    }

    /// The most recent Algorithm 1 outcome, if any — exposes the full
    /// predicted curve for diagnosis and for the Fig. 6/11 experiments.
    pub fn last_decision(&self) -> Option<&FrequencyDecision> {
        self.last_decision.as_ref()
    }

    /// How many Algorithm 1 evaluations have run (for overhead accounting,
    /// Section V-H).
    pub fn decision_count(&self) -> u64 {
        self.decision_count
    }

    /// The trained models (e.g. for offline inspection).
    pub fn models(&self) -> &DoraModels {
        &self.models
    }
}

impl Governor for DoraGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decision_interval(&self) -> SimDuration {
        self.config.decision_interval
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        self.decision_count += 1;
        let decision = select_frequency(
            &self.models,
            self.page,
            self.config.qos_target * (1.0 - self.config.qos_margin),
            observation.shared_l2_mpki,
            observation.corun_utilization,
            observation.temperature,
            self.config.include_leakage,
        );
        let mut chosen = match self.config.policy {
            DoraPolicy::Dora => decision.chosen,
            DoraPolicy::DeadlineOnly => decision
                .f_deadline()
                .unwrap_or_else(|| self.models.dvfs.max_frequency()),
            DoraPolicy::EnergyOnly => decision.f_energy(),
        };
        // Hysteresis: keep the programmed frequency when it is predicted
        // to stay feasible (irrelevant for EE) and its PPW is within the
        // configured margin of the new optimum — a switch costs a stall.
        // DL optimizes feasibility alone, so hysteresis does not apply.
        if chosen != observation.frequency && self.config.policy != DoraPolicy::DeadlineOnly {
            let current = decision
                .curve
                .iter()
                .find(|p| p.frequency == observation.frequency);
            let target = decision.curve.iter().find(|p| p.frequency == chosen);
            if let (Some(current), Some(target)) = (current, target) {
                let feasible_enough =
                    current.feasible || self.config.policy == DoraPolicy::EnergyOnly;
                let close_enough = if target.ppw > Ppw::ZERO {
                    (target.ppw.value() - current.ppw.value()) / target.ppw.value()
                        < self.config.switch_margin
                } else {
                    false
                };
                if feasible_enough && close_enough {
                    chosen = observation.frequency;
                }
            }
        }
        self.last_decision = Some(decision);
        chosen
    }

    fn reset(&mut self) {
        self.last_decision = None;
        self.decision_count = 0;
    }

    fn page_changed(&mut self, page: &PageFeatures) {
        self.retarget(*page);
    }

    fn decision_curve(&self) -> Option<Vec<dora_sim_core::probe::CandidatePrediction>> {
        self.last_decision.as_ref().map(|d| {
            d.curve
                .iter()
                .map(|p| dora_sim_core::probe::CandidatePrediction {
                    cluster: 0,
                    frequency_khz: p.frequency.as_khz(),
                    load_time: p.load_time,
                    power: p.power,
                    ppw: p.ppw,
                    feasible: p.feasible,
                })
                .collect()
        })
    }
}

/// DORA generalized to a heterogeneous (big.LITTLE) SoC: Algorithm 1 over
/// the full (cluster, frequency) product space, with the profile's cited
/// migration-cost model inside the decision.
///
/// Every decision interval it runs [`select_operating_point`] across one
/// [`ClusterModel`] per cluster. Candidates on the currently governed
/// cluster are scored exactly as the homogeneous governor scores them; a
/// candidate on the *other* cluster must additionally amortize the
/// migration latency (against the QoS target) and energy (in the PPW
/// denominator) before it can win. On a one-cluster profile every
/// decision is bit-identical to [`DoraGovernor`]'s.
#[derive(Debug, Clone)]
pub struct HeterogeneousDoraGovernor {
    clusters: Vec<ClusterModel>,
    migration: MigrationCost,
    config: DoraConfig,
    page: PageFeatures,
    name: String,
    last_decision: Option<OperatingPointDecision>,
    decision_count: u64,
}

impl HeterogeneousDoraGovernor {
    /// Creates the governor from explicit per-cluster models.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation or `clusters` is empty.
    pub fn new(
        clusters: Vec<ClusterModel>,
        migration: MigrationCost,
        page: PageFeatures,
        config: DoraConfig,
    ) -> Self {
        #[allow(clippy::expect_used)] // constructor contract: documented panic
        config.validate().expect("invalid DORA configuration");
        assert!(!clusters.is_empty(), "need at least one cluster model");
        let name = match (config.policy, config.include_leakage) {
            (DoraPolicy::Dora, true) => "DORA".to_string(),
            (DoraPolicy::Dora, false) => "DORA_no_lkg".to_string(),
            (DoraPolicy::DeadlineOnly, _) => "DL".to_string(),
            (DoraPolicy::EnergyOnly, _) => "EE".to_string(),
        };
        HeterogeneousDoraGovernor {
            clusters,
            migration,
            config,
            page,
            name,
            last_decision: None,
            decision_count: 0,
        }
    }

    /// Creates the governor for a board profile: one scaled model per
    /// cluster ([`ClusterModel::from_profile`]) and the profile's
    /// migration-cost model.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation or `board` has no clusters.
    pub fn from_profile(
        models: &DoraModels,
        board: &BoardConfig,
        page: PageFeatures,
        config: DoraConfig,
    ) -> Self {
        HeterogeneousDoraGovernor::new(
            ClusterModel::from_profile(models, board),
            board.migration,
            page,
            config,
        )
    }

    /// The governor's configuration.
    pub fn config(&self) -> DoraConfig {
        self.config
    }

    /// The page the governor is optimizing for.
    pub fn page(&self) -> PageFeatures {
        self.page
    }

    /// Points the governor at a new page (models are page-independent).
    pub fn retarget(&mut self, page: PageFeatures) {
        self.page = page;
        self.last_decision = None;
    }

    /// The most recent product-space sweep, if any.
    pub fn last_decision(&self) -> Option<&OperatingPointDecision> {
        self.last_decision.as_ref()
    }

    /// How many Algorithm 1 evaluations have run.
    pub fn decision_count(&self) -> u64 {
        self.decision_count
    }

    /// The per-cluster models the governor searches over.
    pub fn cluster_models(&self) -> &[ClusterModel] {
        &self.clusters
    }

    /// The point of the governed cluster/frequency pair in `obs`, clamped
    /// to a cluster the governor actually has a model for.
    fn current_point(&self, observation: &GovernorObservation) -> OperatingPoint {
        let cluster = if observation.cluster < self.clusters.len() {
            ClusterId::new(observation.cluster)
        } else {
            ClusterId::PRIMARY
        };
        OperatingPoint {
            cluster,
            frequency: observation.frequency,
        }
    }

    /// Runs the sweep over `clusters` and applies policy extraction plus
    /// switch hysteresis against `current`.
    fn sweep(
        &mut self,
        clusters_range: std::ops::Range<usize>,
        current: OperatingPoint,
        observation: &GovernorObservation,
    ) -> OperatingPoint {
        self.decision_count += 1;
        let decision = select_operating_point(
            &self.clusters[clusters_range],
            current,
            self.migration,
            self.page,
            self.config.qos_target * (1.0 - self.config.qos_margin),
            observation.shared_l2_mpki,
            observation.corun_utilization,
            observation.temperature,
            self.config.include_leakage,
        );
        let mut chosen = match self.config.policy {
            DoraPolicy::Dora => decision.chosen,
            // DL when infeasible: the sweep's fallback is already the
            // QoS-prioritizing fastest point.
            DoraPolicy::DeadlineOnly => decision.point_deadline().unwrap_or(decision.chosen),
            DoraPolicy::EnergyOnly => decision.point_energy(),
        };
        // Hysteresis, exactly as the homogeneous governor applies it: keep
        // the programmed point when it stays feasible and its PPW is
        // within the margin of the new optimum — a migration costs far
        // more than a DVFS write, so marginal cross-cluster wins
        // especially are not worth chasing.
        if chosen != current && self.config.policy != DoraPolicy::DeadlineOnly {
            let current_row = decision.curve.iter().find(|p| p.point == current);
            let target_row = decision.curve.iter().find(|p| p.point == chosen);
            if let (Some(current_row), Some(target_row)) = (current_row, target_row) {
                let feasible_enough =
                    current_row.feasible || self.config.policy == DoraPolicy::EnergyOnly;
                let close_enough = if target_row.ppw > Ppw::ZERO {
                    (target_row.ppw.value() - current_row.ppw.value()) / target_row.ppw.value()
                        < self.config.switch_margin
                } else {
                    false
                };
                if feasible_enough && close_enough {
                    chosen = current;
                }
            }
        }
        self.last_decision = Some(decision);
        chosen
    }
}

impl Governor for HeterogeneousDoraGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decision_interval(&self) -> SimDuration {
        self.config.decision_interval
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        // The single-knob entry point may not migrate, so the sweep is
        // restricted to the observed cluster's slice of the model list.
        let current = self.current_point(observation);
        let i = current.cluster.index();
        self.sweep(i..i + 1, current, observation).frequency
    }

    fn decide_point(&mut self, observation: &GovernorObservation) -> OperatingPoint {
        let current = self.current_point(observation);
        self.sweep(0..self.clusters.len(), current, observation)
    }

    fn reset(&mut self) {
        self.last_decision = None;
        self.decision_count = 0;
    }

    fn page_changed(&mut self, page: &PageFeatures) {
        self.retarget(*page);
    }

    fn decision_curve(&self) -> Option<Vec<dora_sim_core::probe::CandidatePrediction>> {
        self.last_decision.as_ref().map(|d| {
            d.curve
                .iter()
                .map(|p| dora_sim_core::probe::CandidatePrediction {
                    cluster: p.point.cluster.index(),
                    frequency_khz: p.point.frequency.as_khz(),
                    load_time: p.load_time,
                    power: p.power,
                    ppw: p.ppw,
                    feasible: p.feasible,
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{FrequencyEncoding, PiecewiseSurface, PredictorInputs};
    use dora_modeling::leakage::Eq5Params;
    use dora_modeling::surface::{ResponseSurface, SurfaceKind};
    use dora_sim_core::units::{Celsius, Mpki, Utilization};
    use dora_sim_core::SimTime;
    use dora_soc::DvfsTable;

    fn page() -> PageFeatures {
        PageFeatures::new(2100, 1300, 620, 680, 590).expect("valid")
    }

    fn physical_models() -> DoraModels {
        let dvfs = DvfsTable::default();
        let mut xs = Vec::new();
        let mut t_ys = Vec::new();
        let mut p_ys = Vec::new();
        for freq in dvfs.frequencies() {
            for mpki in [0.0f64, 3.0, 8.0, 16.0] {
                for util in [0.0f64, 0.6, 1.0] {
                    let inputs = PredictorInputs::for_frequency(
                        page(),
                        freq,
                        &dvfs,
                        Mpki::clamped(mpki),
                        Utilization::clamped(util),
                    );
                    xs.push(inputs.to_vector());
                    t_ys.push(2.2 / freq.as_ghz() + 0.05 * mpki);
                    p_ys.push(1.4 + 0.35 * freq.as_ghz() * freq.as_ghz());
                }
            }
        }
        let time = ResponseSurface::new(SurfaceKind::Quadratic, 9)
            .fit(&xs, &t_ys)
            .expect("well posed");
        let power = ResponseSurface::new(SurfaceKind::Quadratic, 9)
            .fit(&xs, &p_ys)
            .expect("well posed");
        DoraModels {
            load_time: PiecewiseSurface::new([None, None, None], time, FrequencyEncoding::Natural),
            power: PiecewiseSurface::new([None, None, None], power, FrequencyEncoding::Natural),
            leakage: Eq5Params {
                k1: 0.22,
                alpha: 800.0,
                beta: -4300.0,
                k2: 0.05,
                gamma: 2.0,
                delta: -2.0,
            },
            dvfs,
        }
    }

    fn obs(mpki: f64, temp_c: f64) -> GovernorObservation {
        GovernorObservation {
            now: SimTime::from_millis(100),
            interval: SimDuration::from_millis(100),
            frequency: Frequency::from_mhz(960.0),
            cluster: 0,
            per_core_utilization: [0.9, 0.5, 0.8, 0.0].map(Utilization::clamped).to_vec(),
            shared_l2_mpki: Mpki::clamped(mpki),
            corun_utilization: Utilization::clamped(0.8),
            temperature: Celsius::new(temp_c),
        }
    }

    #[test]
    fn name_reflects_leakage_flag() {
        let m = physical_models();
        let with = DoraGovernor::new(m.clone(), page(), DoraConfig::default());
        assert_eq!(with.name(), "DORA");
        let without = DoraGovernor::new(
            m,
            page(),
            DoraConfig {
                include_leakage: false,
                ..DoraConfig::default()
            },
        );
        assert_eq!(without.name(), "DORA_no_lkg");
    }

    #[test]
    fn decides_and_records_curve() {
        let m = physical_models();
        let mut g = DoraGovernor::new(m.clone(), page(), DoraConfig::default());
        let f = g.decide(&obs(2.0, 40.0));
        assert!(m.dvfs.index_of(f).is_some(), "must return a table entry");
        let d = g.last_decision().expect("recorded");
        assert_eq!(d.curve.len(), m.dvfs.len());
        assert_eq!(g.decision_count(), 1);
        // The probe-facing curve mirrors the decision, point for point.
        let probe_curve = g.decision_curve().expect("recorded");
        assert_eq!(probe_curve.len(), d.curve.len());
        for (traced, predicted) in probe_curve.iter().zip(d.curve.iter()) {
            assert_eq!(traced.frequency_khz, predicted.frequency.as_khz());
            assert_eq!(traced.load_time, predicted.load_time);
            assert_eq!(traced.ppw, predicted.ppw);
            assert_eq!(traced.feasible, predicted.feasible);
        }
    }

    #[test]
    fn interference_raises_chosen_frequency_when_deadline_binds() {
        let m = physical_models();
        let tight = DoraConfig {
            qos_target: Seconds::new(1.5),
            ..DoraConfig::default()
        };
        let mut g = DoraGovernor::new(m, page(), tight);
        let calm = g.decide(&obs(0.5, 40.0));
        g.reset();
        let noisy = g.decide(&obs(12.0, 40.0));
        assert!(noisy >= calm, "interference cannot lower fopt here");
        assert!(noisy > calm, "12 MPKI at a 1.5s target should move fopt");
    }

    #[test]
    fn hot_die_shifts_away_from_top_frequency() {
        // With leakage enabled, a hot die makes the top settings less
        // efficient; under a relaxed deadline DORA should not pick them.
        let m = physical_models();
        let relaxed = DoraConfig {
            qos_target: Seconds::new(10.0),
            ..DoraConfig::default()
        };
        let mut g = DoraGovernor::new(m.clone(), page(), relaxed);
        let hot = g.decide(&obs(1.0, 75.0));
        assert!(
            hot < m.dvfs.max_frequency(),
            "relaxed deadline + hot die should avoid fmax, got {hot}"
        );
    }

    #[test]
    fn retarget_clears_decision_state() {
        let m = physical_models();
        let mut g = DoraGovernor::new(m, page(), DoraConfig::default());
        let _ = g.decide(&obs(2.0, 40.0));
        assert!(g.last_decision().is_some());
        g.retarget(PageFeatures::new(900, 540, 150, 180, 230).expect("valid"));
        assert!(g.last_decision().is_none());
        assert_eq!(g.page().dom_nodes(), 900);
    }

    #[test]
    #[should_panic(expected = "invalid DORA configuration")]
    fn rejects_bad_config() {
        let m = physical_models();
        let _ = DoraGovernor::new(
            m,
            page(),
            DoraConfig {
                qos_target: Seconds::new(-1.0),
                ..DoraConfig::default()
            },
        );
    }

    #[test]
    fn dl_policy_tracks_lowest_feasible_frequency() {
        let m = physical_models();
        let mut dl = DoraGovernor::new(
            m.clone(),
            page(),
            DoraConfig {
                policy: DoraPolicy::DeadlineOnly,
                ..DoraConfig::default()
            },
        );
        assert_eq!(dl.name(), "DL");
        let f = dl.decide(&obs(2.0, 40.0));
        let d = dl.last_decision().expect("recorded").clone();
        assert_eq!(Some(f), d.f_deadline());
        // DL never picks above DORA's fopt when fE >= fD... but it always
        // picks the *lowest* feasible, so it is <= the full policy's pick.
        let mut full = DoraGovernor::new(m, page(), DoraConfig::default());
        let f_full = full.decide(&obs(2.0, 40.0));
        assert!(f <= f_full);
    }

    #[test]
    fn ee_policy_ignores_the_deadline() {
        let m = physical_models();
        let mut ee = DoraGovernor::new(
            m.clone(),
            page(),
            DoraConfig {
                qos_target: Seconds::new(0.01), // impossible
                policy: DoraPolicy::EnergyOnly,
                ..DoraConfig::default()
            },
        );
        assert_eq!(ee.name(), "EE");
        let f = ee.decide(&obs(2.0, 40.0));
        // EE still picks its PPW optimum rather than falling back to fmax.
        let d = ee.last_decision().expect("recorded").clone();
        assert_eq!(f, d.f_energy());
        assert!(f < m.dvfs.max_frequency());
    }

    #[test]
    fn dl_falls_back_to_fmax_when_infeasible() {
        let m = physical_models();
        let mut dl = DoraGovernor::new(
            m.clone(),
            page(),
            DoraConfig {
                qos_target: Seconds::new(0.01),
                policy: DoraPolicy::DeadlineOnly,
                ..DoraConfig::default()
            },
        );
        assert_eq!(dl.decide(&obs(2.0, 40.0)), m.dvfs.max_frequency());
    }

    #[test]
    fn decision_interval_is_100ms_by_default() {
        let m = physical_models();
        let g = DoraGovernor::new(m, page(), DoraConfig::default());
        assert_eq!(g.decision_interval(), SimDuration::from_millis(100));
    }

    fn biglittle_governor(config: DoraConfig) -> HeterogeneousDoraGovernor {
        let board = dora_soc::SocProfile::biglittle_a15a7().board_config();
        HeterogeneousDoraGovernor::from_profile(&physical_models(), &board, page(), config)
    }

    #[test]
    fn heterogeneous_single_cluster_matches_the_homogeneous_governor_bitwise() {
        let m = physical_models();
        let board = dora_soc::SocProfile::msm8974().board_config();
        let mut flat = DoraGovernor::new(m.clone(), page(), DoraConfig::default());
        let mut hetero =
            HeterogeneousDoraGovernor::from_profile(&m, &board, page(), DoraConfig::default());
        for mpki in [0.5, 2.0, 8.0, 16.0] {
            let o = obs(mpki, 42.0);
            let f_flat = flat.decide(&o);
            let p_hetero = hetero.decide_point(&o);
            assert_eq!(p_hetero.cluster, ClusterId::PRIMARY);
            assert_eq!(p_hetero.frequency, f_flat, "mpki={mpki}");
            let d_flat = flat.last_decision().expect("recorded");
            let d_het = hetero.last_decision().expect("recorded");
            assert_eq!(d_het.feasible, d_flat.feasible);
            assert_eq!(d_het.predicted_ppw, d_flat.predicted_ppw);
        }
    }

    #[test]
    fn relaxed_deadline_migrates_to_the_little_cluster() {
        // Under a loose deadline the A7's far smaller effective
        // capacitance dominates its 1.6x CPI penalty, so the 2-D search
        // should leave the big cluster.
        let mut g = biglittle_governor(DoraConfig {
            qos_target: Seconds::new(10.0),
            ..DoraConfig::default()
        });
        let p = g.decide_point(&obs(1.0, 40.0));
        assert_eq!(p.cluster, ClusterId::new(1), "expected LITTLE, got {p}");
        let d = g.last_decision().expect("recorded");
        assert!(d.feasible);
    }

    #[test]
    fn tight_deadline_keeps_the_big_cluster() {
        // At a deadline near the big cluster's best case, the A7 (1.6x
        // slower plus migration latency) cannot be feasible.
        let mut g = biglittle_governor(DoraConfig {
            qos_target: Seconds::new(1.45),
            ..DoraConfig::default()
        });
        let p = g.decide_point(&obs(1.0, 40.0));
        assert_eq!(p.cluster, ClusterId::new(0), "expected big, got {p}");
    }

    #[test]
    fn decide_restricts_to_the_observed_cluster() {
        let mut g = biglittle_governor(DoraConfig {
            qos_target: Seconds::new(10.0),
            ..DoraConfig::default()
        });
        // The plain decide() entry point may not migrate: even though the
        // full search would pick the LITTLE cluster, the frequency must
        // come from the observed (big) cluster's table.
        let f = g.decide(&obs(1.0, 40.0));
        assert!(
            g.cluster_models()[0].models.dvfs.index_of(f).is_some(),
            "{f} not in the big cluster's table"
        );
        let d = g.last_decision().expect("recorded");
        assert!(d.curve.iter().all(|p| p.point.cluster == ClusterId::new(0)));
    }

    #[test]
    fn heterogeneous_curve_reaches_probes_with_cluster_identities() {
        let mut g = biglittle_governor(DoraConfig::default());
        let _ = g.decide_point(&obs(2.0, 40.0));
        let curve = g.decision_curve().expect("recorded");
        let d = g.last_decision().expect("recorded");
        assert_eq!(curve.len(), d.curve.len());
        assert!(curve.iter().any(|p| p.cluster == 0));
        assert!(curve.iter().any(|p| p.cluster == 1));
        for (traced, predicted) in curve.iter().zip(d.curve.iter()) {
            assert_eq!(traced.cluster, predicted.point.cluster.index());
            assert_eq!(traced.frequency_khz, predicted.point.frequency.as_khz());
            assert_eq!(traced.ppw, predicted.ppw);
        }
    }

    #[test]
    fn heterogeneous_policies_and_names_mirror_the_flat_governor() {
        let dl = biglittle_governor(DoraConfig {
            policy: DoraPolicy::DeadlineOnly,
            ..DoraConfig::default()
        });
        assert_eq!(dl.name(), "DL");
        let mut ee = biglittle_governor(DoraConfig {
            qos_target: Seconds::new(0.01), // impossible
            policy: DoraPolicy::EnergyOnly,
            ..DoraConfig::default()
        });
        assert_eq!(ee.name(), "EE");
        // EE ignores the deadline: it still picks the global PPW optimum.
        let p = ee.decide_point(&obs(2.0, 40.0));
        let d = ee.last_decision().expect("recorded").clone();
        assert_eq!(p, d.point_energy());
    }

    #[test]
    fn migration_hysteresis_resists_marginal_cross_cluster_wins() {
        // With a huge switch margin, any cross-cluster improvement is
        // "marginal", so the governor stays put on its current feasible
        // point rather than paying a migration.
        let mut g = biglittle_governor(DoraConfig {
            qos_target: Seconds::new(10.0),
            switch_margin: 0.5,
            ..DoraConfig::default()
        });
        let o = GovernorObservation {
            frequency: Frequency::from_mhz(1000.0),
            ..obs(1.0, 40.0)
        };
        let sticky = g.decide_point(&o);
        let mut eager = biglittle_governor(DoraConfig {
            qos_target: Seconds::new(10.0),
            switch_margin: 0.0,
            ..DoraConfig::default()
        });
        let moved = eager.decide_point(&o);
        assert_eq!(moved.cluster, ClusterId::new(1));
        assert!(
            sticky.cluster == ClusterId::new(0) || sticky == moved,
            "hysteresis may only keep the current cluster, got {sticky}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn heterogeneous_rejects_empty_cluster_list() {
        let _ = HeterogeneousDoraGovernor::new(
            Vec::new(),
            dora_soc::MigrationCost::none(),
            page(),
            DoraConfig::default(),
        );
    }
}
