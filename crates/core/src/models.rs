//! The trained model bundle DORA predicts with.
//!
//! Three statically-trained components (Section III):
//!
//! * a **load-time** response surface (the paper selects the interaction
//!   form, Eq. 4, for its accuracy/simplicity balance — Section V-A);
//! * a **dynamic-power** response surface (the paper selects the linear
//!   form, Eq. 2);
//! * the **leakage** model (Eq. 5) as a function of voltage and die
//!   temperature.
//!
//! Both surfaces are *piecewise by memory-bus tier*: "we build piece-wise
//! models for each set of core frequencies that share a single memory bus
//! frequency" (Section III-A). A global fallback surface handles tiers
//! with too little training data.

use dora_browser::PageFeatures;
use dora_modeling::leakage::Eq5Params;
use dora_modeling::surface::FittedSurface;
use dora_modeling::ModelError;
use dora_sim_core::units::{Celsius, Mpki, Ppw, Seconds, Utilization, Watts};
use dora_soc::{BusTier, DvfsTable, Frequency};

/// The full nine-variable input vector of Table I, assembled from static
/// page features plus dynamic system conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorInputs {
    /// X1–X5: the page complexity features.
    pub page: PageFeatures,
    /// X6: shared L2 cache MPKI observed over the last interval.
    pub l2_mpki: Mpki,
    /// X7: the candidate core frequency.
    pub core_frequency: Frequency,
    /// X8: the memory bus frequency that X7 maps to.
    pub bus_frequency: Frequency,
    /// X9: core utilization of the co-scheduled task.
    pub corun_utilization: Utilization,
}

impl PredictorInputs {
    /// Builds the inputs for evaluating candidate frequency `f` under the
    /// given dynamic conditions.
    pub fn for_frequency(
        page: PageFeatures,
        f: Frequency,
        dvfs: &DvfsTable,
        l2_mpki: Mpki,
        corun_utilization: Utilization,
    ) -> Self {
        PredictorInputs {
            page,
            l2_mpki,
            core_frequency: f,
            bus_frequency: dvfs.bus_tier(f).bus_frequency(),
            corun_utilization,
        }
    }

    /// The vector in Table I order (X1..X9) for the regression models.
    pub fn to_vector(self) -> Vec<f64> {
        let [n, c, h, a, d] = self.page.as_vector();
        vec![
            n,
            c,
            h,
            a,
            d,
            self.l2_mpki.value(),
            self.core_frequency.as_ghz(),
            self.bus_frequency.as_mhz(),
            self.corun_utilization.value(),
        ]
    }
}

/// A response surface fit per memory-bus tier, with a global fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseSurface {
    per_tier: [Option<FittedSurface>; 3],
    global: FittedSurface,
    encoding: FrequencyEncoding,
}

/// How the two frequency variables (X7, X8) are presented to a surface.
///
/// Load time is, to first order, `instructions · CPI / f` — *linear in the
/// clock period*, not the clock rate. Presenting X7/X8 as periods lets the
/// interaction surface represent the `feature/frequency` terms exactly,
/// which is what pushes the load-time model into the paper's 97.5 %
/// accuracy band. Power, by contrast, grows with frequency, so the power
/// surface keeps the natural encoding. This is a pure reparameterization
/// of Table I's X7/X8 — the variables are the same, only their units
/// change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrequencyEncoding {
    /// X7 in GHz, X8 in MHz (natural units; used by the power model).
    #[default]
    Natural,
    /// X7 as nanoseconds per cycle, X8 as nanoseconds per bus cycle
    /// (used by the load-time model).
    Period,
}

impl FrequencyEncoding {
    /// Applies the encoding to a Table-I-ordered vector in place.
    pub fn encode(self, x: &mut [f64]) {
        if self == FrequencyEncoding::Period {
            // X7: GHz -> ns/cycle; X8: MHz -> ns/cycle.
            x[6] = 1.0 / x[6].max(1e-6);
            x[7] = 1000.0 / x[7].max(1e-3);
        }
    }
}

impl PiecewiseSurface {
    /// Assembles a piecewise surface. `per_tier` entries may be `None`
    /// when a tier lacked training data; `global` must cover everything.
    /// All constituent fits must have been trained on vectors transformed
    /// with the same `encoding`.
    pub fn new(
        per_tier: [Option<FittedSurface>; 3],
        global: FittedSurface,
        encoding: FrequencyEncoding,
    ) -> Self {
        PiecewiseSurface {
            per_tier,
            global,
            encoding,
        }
    }

    /// Predicts using the tier-specific fit when available.
    pub fn predict(&self, tier: BusTier, inputs: &PredictorInputs) -> f64 {
        let mut x = inputs.to_vector();
        self.encoding.encode(&mut x);
        match &self.per_tier[tier.index()] {
            Some(fit) => fit.predict(&x),
            None => self.global.predict(&x),
        }
    }

    /// How many tiers carry their own fit.
    pub fn tier_count(&self) -> usize {
        self.per_tier.iter().flatten().count()
    }

    /// The frequency encoding the surface was trained with.
    pub fn encoding(&self) -> FrequencyEncoding {
        self.encoding
    }

    /// The tier-specific fit for bus tier index `i` (0..3), if present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn tier_fit(&self, i: usize) -> Option<&FittedSurface> {
        self.per_tier[i].as_ref()
    }

    /// The global fallback fit.
    pub fn global_fit(&self) -> &FittedSurface {
        &self.global
    }
}

/// The complete trained bundle used by the DORA governor.
#[derive(Debug, Clone, PartialEq)]
pub struct DoraModels {
    /// Load-time surface (seconds).
    pub load_time: PiecewiseSurface,
    /// Dynamic + platform power surface (watts, leakage excluded).
    pub power: PiecewiseSurface,
    /// Fitted Eq. 5 leakage parameters.
    pub leakage: Eq5Params,
    /// The DVFS table the models were trained against.
    pub dvfs: DvfsTable,
}

impl DoraModels {
    /// Predicts the web page load time at the candidate frequency implied
    /// by `inputs` (Algorithm 1's `PredictLoadTime`).
    ///
    /// Predictions are floored at one millisecond: a regression can dip
    /// below zero far outside its training envelope, and a non-positive
    /// load time would poison the PPW comparison.
    pub fn predict_load_time(&self, inputs: &PredictorInputs) -> Seconds {
        let tier = self.tier_of(inputs);
        Seconds::new(self.load_time.predict(tier, inputs).max(1e-3))
    }

    /// Predicts total device power at the candidate frequency (Algorithm
    /// 1's `PredictTotalPower`): the dynamic surface plus the Eq. 5
    /// leakage evaluated at the candidate's voltage and the current die
    /// temperature. `include_leakage = false` reproduces the
    /// `DORA_no_lkg` ablation.
    pub fn predict_total_power(
        &self,
        inputs: &PredictorInputs,
        temp: Celsius,
        include_leakage: bool,
    ) -> Watts {
        let tier = self.tier_of(inputs);
        let dynamic = Watts::new(self.power.predict(tier, inputs).max(1e-2));
        if !include_leakage {
            return dynamic;
        }
        let voltage = self.voltage_at(inputs.core_frequency);
        dynamic + self.leakage.eval(voltage, temp)
    }

    /// Predicted energy efficiency `PPW = 1 / (T · P)` (Algorithm 1 line 8).
    pub fn predict_ppw(
        &self,
        inputs: &PredictorInputs,
        temp: Celsius,
        include_leakage: bool,
    ) -> Ppw {
        let t = self.predict_load_time(inputs);
        let p = self.predict_total_power(inputs, temp, include_leakage);
        Ppw::from_time_power(t, p)
    }

    fn tier_of(&self, inputs: &PredictorInputs) -> BusTier {
        let f = self.dvfs.nearest(inputs.core_frequency);
        self.dvfs.bus_tier(f)
    }

    /// The supply voltage (volts) of the nearest table frequency.
    pub fn voltage_at(&self, core_frequency: Frequency) -> f64 {
        self.dvfs.nearest_opp(core_frequency).voltage
    }

    /// Convenience check that the bundle is internally consistent.
    ///
    /// # Errors
    ///
    /// [`ModelError::ShapeMismatch`] when a surface is not over nine
    /// inputs.
    pub fn validate(&self) -> Result<(), ModelError> {
        // Probe with a nominal input; panics inside predict would indicate
        // wrong arity, so construct the probe through the public path.
        let page = PageFeatures::new(1000, 600, 200, 220, 280)
            .map_err(|e| ModelError::ShapeMismatch(format!("probe page invalid: {e}")))?;
        let probe = PredictorInputs::for_frequency(
            page,
            self.dvfs.min_frequency(),
            &self.dvfs,
            Mpki::clamped(1.0),
            Utilization::clamped(0.5),
        );
        if probe.to_vector().len() != 9 {
            return Err(ModelError::ShapeMismatch(
                "predictor inputs must have 9 entries".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_modeling::surface::{ResponseSurface, SurfaceKind};

    fn page() -> PageFeatures {
        PageFeatures::new(2100, 1300, 620, 680, 590).expect("valid")
    }

    /// A trivially fitted 9-input surface: y = c for all inputs.
    fn constant_surface(c: f64) -> FittedSurface {
        let xs: Vec<Vec<f64>> = (0..24)
            .map(|i| (0..9).map(|j| ((i * 7 + j * 3) % 13) as f64).collect())
            .collect();
        let ys = vec![c; xs.len()];
        ResponseSurface::new(SurfaceKind::Linear, 9)
            .fit(&xs, &ys)
            .expect("constant is trivially fittable")
    }

    fn models(time_s: f64, power_w: f64) -> DoraModels {
        DoraModels {
            load_time: PiecewiseSurface::new(
                [None, None, None],
                constant_surface(time_s),
                FrequencyEncoding::Natural,
            ),
            power: PiecewiseSurface::new(
                [None, None, None],
                constant_surface(power_w),
                FrequencyEncoding::Natural,
            ),
            leakage: Eq5Params {
                k1: 0.22,
                alpha: 800.0,
                beta: -4300.0,
                k2: 0.05,
                gamma: 2.0,
                delta: -2.0,
            },
            dvfs: DvfsTable::default(),
        }
    }

    #[test]
    fn inputs_vector_is_table1_ordered() {
        let dvfs = DvfsTable::default();
        let inputs = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(1497.6),
            &dvfs,
            Mpki::clamped(4.5),
            Utilization::clamped(0.8),
        );
        let v = inputs.to_vector();
        assert_eq!(v.len(), 9);
        assert_eq!(v[0], 2100.0); // X1 dom nodes
        assert_eq!(v[5], 4.5); // X6 mpki
        assert!((v[6] - 1.4976).abs() < 1e-9); // X7 GHz
        assert_eq!(v[7], 800.0); // X8 bus MHz (high tier)
        assert_eq!(v[8], 0.8); // X9 corun utilization
    }

    #[test]
    fn bus_frequency_follows_tier() {
        let dvfs = DvfsTable::default();
        let low = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(300.0),
            &dvfs,
            Mpki::ZERO,
            Utilization::ZERO,
        );
        let mid = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(960.0),
            &dvfs,
            Mpki::ZERO,
            Utilization::ZERO,
        );
        assert_eq!(low.bus_frequency.as_mhz(), 200.0);
        assert!((mid.bus_frequency.as_mhz() - 460.8).abs() < 1e-9);
    }

    #[test]
    fn predictions_compose_into_ppw() {
        let m = models(2.0, 2.5);
        let inputs = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(1497.6),
            &m.dvfs,
            Mpki::clamped(3.0),
            Utilization::clamped(0.5),
        );
        let warm = Celsius::new(40.0);
        let t = m.predict_load_time(&inputs);
        let p_no_lkg = m.predict_total_power(&inputs, warm, false);
        let p_lkg = m.predict_total_power(&inputs, warm, true);
        assert!((t.value() - 2.0).abs() < 1e-6);
        assert!((p_no_lkg.value() - 2.5).abs() < 1e-6);
        assert!(p_lkg > p_no_lkg, "leakage adds power");
        let ppw = m.predict_ppw(&inputs, warm, true);
        assert!((ppw.value() - 1.0 / (t.value() * p_lkg.value())).abs() < 1e-9);
    }

    #[test]
    fn leakage_raises_power_more_when_hot() {
        let m = models(1.0, 2.0);
        let inputs = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(2265.6),
            &m.dvfs,
            Mpki::clamped(3.0),
            Utilization::clamped(0.5),
        );
        let cold = m.predict_total_power(&inputs, Celsius::new(30.0), true);
        let hot = m.predict_total_power(&inputs, Celsius::new(70.0), true);
        assert!(hot > cold + Watts::new(0.2), "hot {hot} vs cold {cold}");
    }

    #[test]
    fn predictions_are_floored_positive() {
        let m = models(-5.0, -3.0);
        let inputs = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(300.0),
            &m.dvfs,
            Mpki::ZERO,
            Utilization::ZERO,
        );
        assert!(m.predict_load_time(&inputs) > Seconds::ZERO);
        assert!(m.predict_total_power(&inputs, Celsius::new(30.0), false) > Watts::ZERO);
        assert!(m.predict_ppw(&inputs, Celsius::new(30.0), true).is_finite());
    }

    #[test]
    fn piecewise_prefers_tier_fit() {
        let tiered = PiecewiseSurface::new(
            [Some(constant_surface(10.0)), None, None],
            constant_surface(99.0),
            FrequencyEncoding::Natural,
        );
        let dvfs = DvfsTable::default();
        let inputs = PredictorInputs::for_frequency(
            page(),
            Frequency::from_mhz(300.0),
            &dvfs,
            Mpki::ZERO,
            Utilization::ZERO,
        );
        assert!((tiered.predict(BusTier::Low, &inputs) - 10.0).abs() < 1e-6);
        assert!((tiered.predict(BusTier::High, &inputs) - 99.0).abs() < 1e-6);
        assert_eq!(tiered.tier_count(), 1);
    }

    #[test]
    fn voltage_lookup_snaps_to_table() {
        let m = models(1.0, 1.0);
        assert_eq!(m.voltage_at(Frequency::from_mhz(2265.6)), 1.100);
        assert_eq!(m.voltage_at(Frequency::from_mhz(300.0)), 0.800);
        // Between entries: snaps to nearest.
        let v = m.voltage_at(Frequency::from_mhz(1000.0));
        assert!(v > 0.79 && v < 1.11);
        assert!(m.validate().is_ok());
    }
}
