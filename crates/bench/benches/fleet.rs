//! Fleet streaming throughput.
//!
//! The fleet layer's cost model is: warm once per archetype, then a
//! per-session fork + governed load, folded into O(shards) sketches.
//! This benchmark tracks sessions/second through the sharded executor
//! (the CI artifact that catches regressions in the fork path, the
//! sampler or the sketch fold), plus the pure aggregation cost of
//! merging shard reports, which bounds how cheap the streaming side of
//! the design stays as fleets scale.

// Benchmark setup fails fast; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::fleet::{FleetConfig, FleetReport, GovernorSheet};
use dora_campaign::policy::Policy;
use dora_sim_core::SimDuration;

const SESSIONS: u64 = 100;

fn quick_config() -> FleetConfig {
    FleetConfig {
        sessions: SESSIONS,
        policies: vec![Policy::Interactive],
        warmup: SimDuration::from_secs(2),
        ..FleetConfig::default()
    }
}

fn stream_sessions(c: &mut Criterion) {
    let driver = CampaignDriver::new();
    let config = quick_config();
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.bench_function("stream_100_sessions", |b| {
        b.iter(|| {
            let report = driver.fleet(black_box(&config), None).expect("runs");
            black_box(report.digest())
        })
    });
    group.finish();
}

fn merge_shards(c: &mut Criterion) {
    // One populated shard report, merged repeatedly: the per-shard
    // aggregation overhead with the simulation factored out.
    let mut shard = FleetReport::empty(42, &["interactive"]);
    shard.shards = 1;
    shard.sessions = 256;
    let mut group = c.benchmark_group("fleet");
    group.bench_function("merge_shard_report", |b| {
        b.iter(|| {
            let mut merged = FleetReport::empty(42, &["interactive"]);
            for _ in 0..64 {
                merged.merge(black_box(&shard)).expect("same shape");
            }
            black_box(merged.digest())
        })
    });
    group.bench_function("record_session", |b| {
        let mut sheet = GovernorSheet::new("interactive");
        b.iter(|| {
            sheet.load_time.record(black_box(1.75));
            sheet.ppw.record(black_box(0.21));
            black_box(sheet.load_time.count())
        })
    });
    group.finish();
}

criterion_group!(benches, stream_sessions, merge_shards);
criterion_main!(benches);
