//! Microbenchmarks of the hot paths.
//!
//! `algorithm1_select_frequency` is the headline: it is the *actual*
//! compute DORA spends every 100 ms decision interval, so its wall-clock
//! cost here directly substantiates the Section V-H "< 1 % overhead"
//! claim (a few microseconds per decision against a 100 ms period).

// Benchmark setup fails fast; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use dora::models::PredictorInputs;
use dora_browser::catalog::Catalog;
use dora_browser::engine::RenderEngine;
use dora_experiments::pipeline::{Pipeline, Scale};
use dora_modeling::leakage::Eq5Params;
use dora_sim_core::units::{Celsius, Mpki, Seconds, Utilization};
use dora_sim_core::SimDuration;
use dora_soc::board::Board;
use dora_soc::cache::{CacheDemand, SharedCache};
use dora_soc::task::LoopTask;
use dora_soc::Frequency;
use std::hint::black_box;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| Pipeline::build(Scale::Quick, 42))
}

fn bench_algorithm(c: &mut Criterion) {
    let p = pipeline();
    let page = Catalog::alexa18().page("Reddit").expect("present").features;

    c.bench_function("algorithm1_select_frequency", |b| {
        b.iter(|| {
            black_box(dora::select_frequency(
                &p.models,
                black_box(page),
                Seconds::new(3.0),
                black_box(Mpki::clamped(6.5)),
                Utilization::clamped(0.8),
                Celsius::new(45.0),
                true,
            ))
        })
    });

    let inputs = PredictorInputs::for_frequency(
        page,
        Frequency::from_mhz(1497.6),
        &p.models.dvfs,
        Mpki::clamped(6.5),
        Utilization::clamped(0.8),
    );
    c.bench_function("load_time_prediction", |b| {
        b.iter(|| black_box(p.models.predict_load_time(black_box(&inputs))))
    });

    c.bench_function("eq5_leakage_eval", |b| {
        let params = Eq5Params {
            k1: 0.22,
            alpha: 800.0,
            beta: -4300.0,
            k2: 0.05,
            gamma: 2.0,
            delta: -2.0,
        };
        b.iter(|| black_box(params.eval(black_box(1.05), black_box(Celsius::new(55.0)))))
    });
}

fn bench_substrate(c: &mut Criterion) {
    c.bench_function("board_step_1ms_three_tasks", |b| {
        let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), 7);
        board
            .set_frequency(Frequency::from_mhz(1497.6))
            .expect("table frequency");
        board
            .assign(0, Box::new(LoopTask::compute_bound("a", 1.0)))
            .expect("fresh");
        board
            .assign(1, Box::new(LoopTask::compute_bound("b", 0.8)))
            .expect("fresh");
        board
            .assign(
                2,
                Box::new(LoopTask::new(
                    "c",
                    dora_soc::task::PhaseProfile::streaming(25.0),
                )),
            )
            .expect("fresh");
        b.iter(|| {
            board.step(SimDuration::from_millis(1));
            black_box(board.energy())
        })
    });

    c.bench_function("cache_apportion_4way", |b| {
        let cache = SharedCache::new(2.0 * 1024.0 * 1024.0);
        let demands = [
            CacheDemand {
                access_rate: 3.0e7,
                working_set: 2.5e6,
                reuse_fraction: 0.8,
            },
            CacheDemand {
                access_rate: 1.5e7,
                working_set: 1.0e6,
                reuse_fraction: 0.6,
            },
            CacheDemand {
                access_rate: 5.0e7,
                working_set: 8.0e6,
                reuse_fraction: 0.3,
            },
            CacheDemand {
                access_rate: 4.0e6,
                working_set: 3.0e5,
                reuse_fraction: 0.9,
            },
        ];
        b.iter(|| black_box(cache.apportion(black_box(&demands))))
    });

    c.bench_function("full_page_load_simulation", |b| {
        let catalog = Catalog::alexa18();
        let page = catalog.page("Amazon").expect("present");
        let engine = RenderEngine::default();
        b.iter(|| {
            let job = engine.spawn(page, 7);
            let mut board = Board::new(dora_soc::SocProfile::msm8974().board_config(), 7);
            board
                .set_frequency(Frequency::from_mhz(2265.6))
                .expect("table frequency");
            board.assign(0, Box::new(job.main)).expect("fresh");
            board.assign(1, Box::new(job.aux)).expect("fresh");
            while !board.task_finished(0) {
                board.step(SimDuration::from_millis(10));
            }
            black_box(board.finish_time(0))
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let p = pipeline();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("surface_fit_interaction", |b| {
        b.iter(|| {
            black_box(dora::trainer::train(
                &p.observations,
                &p.leakage_observations,
                &p.scenario.board.dvfs,
                dora::trainer::TrainerConfig::default(),
            ))
        })
    });
    group.bench_function("leakage_fit_lm", |b| {
        b.iter(|| {
            black_box(dora_modeling::leakage::fit_leakage(
                &p.leakage_observations,
                7,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = microbench;
    config = dora_bench::heavy_criterion();
    targets = bench_algorithm, bench_substrate, bench_training
}
criterion_main!(microbench);
