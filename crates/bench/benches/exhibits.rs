//! One benchmark per paper exhibit: the cost of regenerating each table
//! and figure on the simulator substrate.
//!
//! The trained pipeline (the expensive, shared prerequisite) is built once
//! at the quick scale before timing starts; each benchmark then measures
//! the exhibit's own measurement campaign. `table02` is the baseline
//! no-simulation case.

// Benchmark setup fails fast; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use dora_bench::heavy_criterion;
use dora_experiments::pipeline::{Pipeline, Scale};
use std::hint::black_box;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| Pipeline::build(Scale::Quick, 42))
}

fn bench_exhibits(c: &mut Criterion) {
    let p = pipeline();

    c.bench_function("table02_device_spec", |b| {
        b.iter(|| black_box(dora_experiments::table02::run(&p.scenario.board).render()))
    });

    c.bench_function("table03_classification", |b| {
        b.iter(|| {
            let config = dora_experiments::table03::default_config();
            black_box(dora_experiments::table03::run(&config).all_consistent())
        })
    });

    c.bench_function("fig01_interference_range", |b| {
        b.iter(|| black_box(dora_experiments::fig01::run(&p.scenario).rows.len()))
    });

    c.bench_function("fig02_interference_cost", |b| {
        b.iter(|| black_box(dora_experiments::fig02::run(&p.scenario).rows.len()))
    });

    c.bench_function("fig03_fopt_regimes", |b| {
        b.iter(|| black_box(dora_experiments::fig03::run(&p.scenario).msn.fmax_ppw_loss))
    });

    // Fig. 5's full regeneration re-measures hundreds of loads; the
    // benchmarkable kernel is the model-evaluation pass over the cached
    // campaign (588 load-time + power predictions).
    c.bench_function("fig05_model_evaluation_588_predictions", |b| {
        b.iter(|| {
            black_box(
                dora::trainer::evaluate_models(&p.models, &p.observations)
                    .load_time
                    .mape,
            )
        })
    });

    c.bench_function("fig06_fopt_sensitivity", |b| {
        b.iter(|| black_box(dora_experiments::fig06::run(p, &p.scenario).fopt_is_robust()))
    });

    // Fig. 9's six cells each need an oracle sweep; benchmark one sweep
    // (14 pinned loads), the unit the figure scales by.
    c.bench_function("fig09_oracle_sweep_one_workload", |b| {
        use dora_campaign::driver::CampaignDriver;
        let workload = p.workloads.workloads()[0].clone();
        let driver = CampaignDriver::new();
        b.iter(|| black_box(driver.oracle(&workload, &p.scenario).fopt))
    });

    c.bench_function("fig10_leakage_ablation", |b| {
        b.iter(|| black_box(dora_experiments::fig10::run(p).leakage_advantage()))
    });

    c.bench_function("fig11_deadline_staircase", |b| {
        b.iter(|| black_box(dora_experiments::fig11::run(p).fe_plateau_ghz()))
    });

    // Overhead accounting over a 6-workload slice (the full exhibit runs
    // all 54; the per-workload cost is what matters here).
    c.bench_function("overhead_accounting_slice", |b| {
        use dora::{DoraConfig, DoraGovernor};
        use dora_campaign::runner::run_scenario;
        let slice: Vec<_> = p.workloads.workloads().iter().take(6).cloned().collect();
        b.iter(|| {
            let mut switches = 0;
            for w in &slice {
                let mut g =
                    DoraGovernor::new(p.models.clone(), w.page.features, DoraConfig::default());
                switches += run_scenario(w, &mut g, &p.scenario).switches;
            }
            black_box(switches)
        })
    });
}

/// Fig. 7 and Fig. 8 are 54-workload × multi-governor evaluations — a
/// full regeneration takes minutes, so the benchmark measures the same
/// machinery on a 6-workload slice (two pages × three intensities). The
/// figure binaries remain the way to regenerate the full exhibits.
fn bench_big_evaluations(c: &mut Criterion) {
    use dora_campaign::driver::CampaignDriver;
    use dora_campaign::evaluate::Policy;
    use dora_campaign::workload::WorkloadSet;
    let p = pipeline();
    let slice = WorkloadSet::from_workloads(
        p.workloads
            .workloads()
            .iter()
            .filter(|w| w.page.name == "Amazon")
            .cloned()
            .collect(),
    );
    let mut group = c.benchmark_group("evaluation_slices");
    group.sample_size(10);

    let driver = CampaignDriver::new();
    group.bench_function("fig07_machinery_3_workloads", |b| {
        b.iter(|| {
            black_box(
                driver
                    .evaluate(&slice, &Policy::FIG7, Some(&p.models), &p.scenario)
                    .expect("models supplied")
                    .results()
                    .len(),
            )
        })
    });

    group.bench_function("fig08_machinery_3_workloads_with_oracle", |b| {
        b.iter(|| {
            black_box(
                driver
                    .evaluate(&slice, &Policy::FIG8, Some(&p.models), &p.scenario)
                    .expect("models supplied")
                    .oracles()
                    .len(),
            )
        })
    });

    group.finish();
}

criterion_group! {
    name = exhibits;
    config = heavy_criterion();
    targets = bench_exhibits, bench_big_evaluations
}
criterion_main!(exhibits);
