//! Fork-at-warmup vs full-re-run frequency sweeps.
//!
//! Under `WarmupPolicy::Pinned` the warm-up prefix is frequency-
//! invariant, so `sweep_frequencies_with` simulates it once, snapshots,
//! and forks 14 per-frequency continuations; the reference
//! `sweep_frequencies_rerun_with` re-runs the warm-up for every point.
//! Both produce bit-identical `SweepPoint`s (asserted in the campaign
//! tests) — this benchmark quantifies the speedup, which grows with the
//! warm-up share of the scenario. Both sides run on the sequential
//! executor so the comparison isolates the algorithmic saving from
//! thread-level scaling.

// Benchmark setup fails fast; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dora_campaign::runner::{
    sweep_frequencies_rerun_with, sweep_frequencies_with, ScenarioConfig, WarmupPolicy,
};
use dora_campaign::workload::WorkloadSet;
use dora_campaign::Executor;
use dora_coworkloads::Intensity;
use dora_sim_core::SimDuration;
use dora_soc::Frequency;

fn sweep_speedup(c: &mut Criterion) {
    let all = WorkloadSet::paper54();
    let workload = all
        .find_by_class("Amazon", Intensity::Low)
        .expect("present")
        .clone();
    let config = ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(5))
        .warmup_policy(WarmupPolicy::Pinned(Frequency::from_mhz(1497.6)))
        .build();
    let frequencies: Vec<Frequency> = config.board.dvfs.frequencies().collect();
    assert_eq!(frequencies.len(), 14, "full Nexus 5 table");
    let executor = Executor::sequential();

    let mut group = c.benchmark_group("sweep_warmup_reuse");
    group.sample_size(10);
    group.bench_function("full_rerun", |b| {
        b.iter(|| {
            let sweep = sweep_frequencies_rerun_with(
                black_box(&workload),
                black_box(&config),
                black_box(&frequencies),
                &executor,
            );
            black_box(sweep.len())
        })
    });
    group.bench_function("fork_at_warmup", |b| {
        b.iter(|| {
            let sweep = sweep_frequencies_with(
                black_box(&workload),
                black_box(&config),
                black_box(&frequencies),
                &executor,
            );
            black_box(sweep.len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = dora_bench::heavy_criterion();
    targets = sweep_speedup
}
criterion_main!(benches);
