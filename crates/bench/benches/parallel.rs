//! Sequential vs parallel campaign throughput.
//!
//! Measures the same fixed slice of the evaluation grid and the oracle
//! sweep through `Executor::sequential()` and a multi-worker executor,
//! so the reported times are directly comparable (the work is identical
//! — the executor guarantees bit-identical results). Expect the
//! multi-worker runs to approach `jobs×` on idle machines; the scaling
//! headroom is the whole point of the campaign executor.

// Benchmark setup fails fast; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::Policy;
use dora_campaign::runner::ScenarioConfig;
use dora_campaign::workload::WorkloadSet;
use dora_campaign::{Executor, Parallelism};
use dora_coworkloads::Intensity;
use dora_sim_core::SimDuration;

fn quick_config() -> ScenarioConfig {
    ScenarioConfig::builder()
        .warmup(SimDuration::from_secs(2))
        .build()
}

/// Six workloads × two stock policies: a 12-scenario grid, small enough
/// to sample yet wide enough to expose scaling.
fn bench_slice() -> WorkloadSet {
    let all = WorkloadSet::paper54();
    WorkloadSet::from_workloads(
        all.workloads()
            .iter()
            .filter(|w| ["Amazon", "MSN", "Reddit"].contains(&w.page.name))
            .cloned()
            .collect(),
    )
}

fn campaign_throughput(c: &mut Criterion) {
    let set = bench_slice();
    let config = quick_config();
    let policies = [Policy::Interactive, Policy::Performance];
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for (label, executor) in [
        ("sequential", Executor::sequential()),
        ("parallel", Executor::auto()),
    ] {
        let driver = CampaignDriver::new().executor(executor);
        group.bench_function(label, |b| {
            b.iter(|| {
                let eval = driver
                    .evaluate(
                        black_box(&set),
                        black_box(&policies),
                        None,
                        black_box(&config),
                    )
                    .expect("no models needed");
                black_box(eval.results().len())
            })
        });
    }
    group.finish();
}

fn oracle_sweep_throughput(c: &mut Criterion) {
    let all = WorkloadSet::paper54();
    let workload = all
        .find_by_class("Amazon", Intensity::Low)
        .expect("present")
        .clone();
    let config = quick_config();
    let mut group = c.benchmark_group("oracle_sweep");
    group.sample_size(10);
    for (label, executor) in [
        ("sequential", Executor::sequential()),
        ("parallel", Executor::auto()),
    ] {
        let driver = CampaignDriver::new().executor(executor);
        group.bench_function(label, |b| {
            b.iter(|| {
                let o = driver.oracle(black_box(&workload), black_box(&config));
                black_box(o.fopt)
            })
        });
    }
    group.finish();
}

fn executor_overhead(c: &mut Criterion) {
    // The fan-out machinery itself, without simulation inside: how much
    // the queue + ordered collection cost per item.
    let items: Vec<u64> = (0..1024).collect();
    let mut group = c.benchmark_group("executor_overhead");
    for (label, executor) in [
        ("sequential", Executor::sequential()),
        ("fixed4", Executor::new(Parallelism::Fixed(4))),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = executor.map(black_box(&items), |&x| x.wrapping_mul(2685821657736338717));
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = dora_bench::heavy_criterion();
    targets = campaign_throughput, oracle_sweep_throughput, executor_overhead
}
criterion_main!(benches);
