//! # dora-bench
//!
//! The benchmark harness of the DORA reproduction. The actual Criterion
//! targets live under `benches/`:
//!
//! * `exhibits` — one benchmark per paper table/figure, measuring the
//!   wall-clock cost of regenerating each exhibit from scratch on the
//!   simulator substrate (the shared trained pipeline is built once,
//!   outside the timed region).
//! * `microbench` — the hot paths: Algorithm 1 frequency selection (the
//!   real-time cost the paper's Section V-H budgets at "< 1 %"), board
//!   quantum stepping, cache apportionment, response-surface prediction,
//!   Eq. 5 evaluation, and model training.
//!
//! Run with `cargo bench --workspace`; results land in
//! `target/criterion/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A Criterion configuration tuned for heavy simulation benches: small
/// sample counts so whole-campaign measurements finish in minutes.
pub fn heavy_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}
