//! The CLI subcommands.

use crate::args::{Args, OutputFormat};
use dora::units::{Celsius, Mpki, Seconds, Utilization, WattHours};
use dora::{from_text, to_text, DoraConfig, DoraGovernor, DoraModels, HeterogeneousDoraGovernor};
use dora_browser::{Catalog, PageFeatures};
use dora_campaign::driver::CampaignDriver;
use dora_campaign::evaluate::Policy;
use dora_campaign::export::results_to_csv;
use dora_campaign::fleet::FleetConfig;
use dora_campaign::runner::{run_page, run_page_observed, ScenarioConfig};
use dora_campaign::workload::{Workload, WorkloadSet};
use dora_coworkloads::Kernel;
use dora_experiments::pipeline::{Pipeline, Scale};
use dora_governors::{Governor, InteractiveGovernor, PerformanceGovernor, PowersaveGovernor};

/// `dora train`: run the offline campaign and write the model bundle.
pub fn train(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let out = args.require("out")?;
    let common = args.common(42)?;
    let scale = if args.flag("quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let executor = common.executor;
    eprintln!(
        "training ({scale:?}, seed {}, {} worker{})...",
        common.seed,
        executor.jobs(),
        if executor.jobs() == 1 { "" } else { "s" }
    );
    let pipeline = Pipeline::build_with(scale, common.seed, &executor);
    let eval = dora::trainer::evaluate_models(&pipeline.models, &pipeline.observations);
    eprintln!(
        "trained on {} observations; train-set MAPE: time {:.2}%, power {:.2}%",
        pipeline.observations.len(),
        eval.load_time.mape * 100.0,
        eval.power.mape * 100.0
    );
    std::fs::write(out, to_text(&pipeline.models)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn load_models(path: &str) -> Result<DoraModels, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    from_text(&text).map_err(|e| e.to_string())
}

/// `dora inspect`: summarize a persisted model bundle.
pub fn inspect(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let path = args
        .positional(0)
        .ok_or("usage: dora inspect <models.txt>")?;
    let models = load_models(path)?;
    println!("model bundle: {path}");
    println!(
        "  DVFS table: {} settings, {} - {}",
        models.dvfs.len(),
        models.dvfs.min_frequency(),
        models.dvfs.max_frequency()
    );
    println!(
        "  load-time surface: {} ({:?} encoding), {} tier fits",
        models.load_time.global_fit().surface().kind(),
        models.load_time.encoding(),
        models.load_time.tier_count()
    );
    println!(
        "  power surface: {} ({:?} encoding), {} tier fits",
        models.power.global_fit().surface().kind(),
        models.power.encoding(),
        models.power.tier_count()
    );
    let lk = models.leakage;
    println!(
        "  leakage (Eq. 5): k1={:.4} alpha={:.1} beta={:.1} k2={:.4} gamma={:.2} delta={:.2}",
        lk.k1, lk.alpha, lk.beta, lk.k2, lk.gamma, lk.delta
    );
    println!(
        "  leakage at (1.0V, 50C): {:.3} W; at (1.1V, 65C): {:.3} W",
        lk.eval(1.0, Celsius::new(50.0)).value(),
        lk.eval(1.1, Celsius::new(65.0)).value()
    );
    Ok(())
}

/// `dora profile`: extract Table I features from an HTML file.
pub fn profile(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let path = args
        .positional(0)
        .ok_or("usage: dora profile <page.html>")?;
    let html = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let page = PageFeatures::from_html(&html).map_err(|e| e.to_string())?;
    println!("{path}:");
    println!("  X1 DOM tree nodes:    {}", page.dom_nodes());
    println!("  X2 class attributes:  {}", page.class_attrs());
    println!("  X3 href attributes:   {}", page.href_attrs());
    println!("  X4 <a> tags:          {}", page.a_tags());
    println!("  X5 <div> tags:        {}", page.div_tags());
    println!("  complexity score:     {:.0}", page.complexity_score());
    Ok(())
}

fn resolve_page(args: &Args) -> Result<PageFeatures, String> {
    match (args.get("page"), args.get("html")) {
        (Some(name), None) => Catalog::alexa18()
            .page(name)
            .map(|p| p.features)
            .ok_or_else(|| format!("unknown page {name:?}; see `dora pages`")),
        (None, Some(path)) => {
            let html = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            PageFeatures::from_html(&html).map_err(|e| e.to_string())
        }
        _ => Err("exactly one of --page or --html is required".into()),
    }
}

/// `dora predict`: print the Algorithm 1 curve and decision.
pub fn predict(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let path = args
        .positional(0)
        .ok_or("usage: dora predict <models.txt> --page NAME")?;
    let models = load_models(path)?;
    let page = resolve_page(&args)?;
    let mpki = args.get_f64("mpki", 3.0)?;
    let util = args.get_f64("util", 0.7)?;
    let temp = args.get_f64("temp", 45.0)?;
    let deadline = args.get_f64("deadline", 3.0)?;
    if deadline <= 0.0 {
        return Err(format!("--deadline must be positive, got {deadline}"));
    }
    let decision = dora::select_frequency(
        &models,
        page,
        Seconds::new(deadline),
        Mpki::clamped(mpki),
        Utilization::clamped(util),
        Celsius::new(temp),
        true,
    );
    println!(
        "conditions: MPKI {mpki:.1}, co-run util {util:.2}, die {temp:.0}C, deadline {deadline:.1}s"
    );
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9}",
        "freq", "time(s)", "power(W)", "PPW", "feasible"
    );
    for p in &decision.curve {
        println!(
            "{:<11} {:>9.3} {:>9.3} {:>9.4} {:>9}",
            p.frequency.to_string(),
            p.load_time.value(),
            p.power.value(),
            p.ppw.value(),
            p.feasible
        );
    }
    println!(
        "fopt = {}  (feasible: {}; fD = {}, fE = {})",
        decision.chosen,
        decision.feasible,
        decision
            .f_deadline()
            .map_or("none".to_string(), |f| f.to_string()),
        decision.f_energy()
    );
    Ok(())
}

fn resolve_kernel(args: &Args) -> Result<Option<Kernel>, String> {
    match args.get("kernel") {
        None => Ok(None),
        Some(name) if name.eq_ignore_ascii_case("none") => Ok(None),
        Some(name) => Kernel::by_name(name)
            .map(Some)
            .ok_or_else(|| format!("unknown kernel {name:?}; see `dora kernels`")),
    }
}

/// A probe collecting the decision trace `dora govern --trace` prints:
/// every governor decision (with DORA's predicted candidate curve) and
/// every resulting DVFS transition, in order.
#[derive(Debug, Default)]
struct DecisionTrace {
    lines: Vec<String>,
}

impl dora_sim_core::probe::Probe for DecisionTrace {
    fn on_event(&mut self, at: dora_sim_core::SimTime, event: &dora_sim_core::probe::ProbeEvent) {
        use dora_sim_core::probe::ProbeEvent;
        match event {
            ProbeEvent::GovernorDecision {
                governor,
                cluster,
                chosen_khz,
                curve,
            } => {
                let chosen = dora_soc::Frequency::from_khz(*chosen_khz);
                self.lines
                    .push(format!("{at}  {governor} -> cluster{cluster}@{chosen}"));
                for p in curve {
                    let f = dora_soc::Frequency::from_khz(p.frequency_khz);
                    self.lines.push(format!(
                        "{:12}  cluster{}@{f}: T={:.3}s P={:.3}W PPW={:.4}{}",
                        "",
                        p.cluster,
                        p.load_time.value(),
                        p.power.value(),
                        p.ppw.value(),
                        if p.feasible { "" } else { "  (misses QoS)" },
                    ));
                }
            }
            ProbeEvent::DvfsSwitch {
                cluster,
                from_khz,
                to_khz,
            } => {
                let from = dora_soc::Frequency::from_khz(*from_khz);
                let to = dora_soc::Frequency::from_khz(*to_khz);
                self.lines
                    .push(format!("{at}  dvfs cluster{cluster} {from} -> {to}"));
            }
            ProbeEvent::TaskMigrated {
                core,
                from_cluster,
                to_cluster,
            } => {
                self.lines.push(format!(
                    "{at}  migrate core{core} cluster{from_cluster} -> cluster{to_cluster}"
                ));
            }
            _ => {}
        }
    }
}

/// `dora govern`: simulate one governed page load.
pub fn govern(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let path = args
        .positional(0)
        .ok_or("usage: dora govern <models.txt> --page NAME")?;
    let page_name = args.require("page")?;
    let catalog = Catalog::alexa18();
    let page = catalog
        .page(page_name)
        .ok_or_else(|| format!("unknown page {page_name:?}; see `dora pages`"))?;
    let kernel = resolve_kernel(&args)?;
    let common = args.common(42)?;
    let deadline = args.get_f64("deadline", 3.0)?;
    let config = ScenarioConfig::builder()
        .seed(common.seed)
        .deadline(Seconds::new(deadline))
        .board(common.soc.board_config())
        .build();
    let governor_name = args.get("governor").unwrap_or("dora");
    let mut governor: Box<dyn Governor> = match governor_name {
        "dora" | "DORA" => {
            let models = load_models(path)?;
            let dora_config = DoraConfig {
                qos_target: Seconds::new(deadline),
                ..DoraConfig::default()
            };
            if config.board.clusters.len() > 1 {
                Box::new(HeterogeneousDoraGovernor::from_profile(
                    &models,
                    &config.board,
                    page.features,
                    dora_config,
                ))
            } else {
                Box::new(DoraGovernor::new(models, page.features, dora_config))
            }
        }
        "interactive" => Box::new(InteractiveGovernor::new(config.board.dvfs.clone())),
        "performance" => Box::new(PerformanceGovernor::new(config.board.dvfs.clone())),
        "powersave" => Box::new(PowersaveGovernor::new(config.board.dvfs.clone())),
        other => return Err(format!("unknown governor {other:?}")),
    };
    let trace = if common.trace {
        Some(std::rc::Rc::new(std::cell::RefCell::new(
            DecisionTrace::default(),
        )))
    } else {
        None
    };
    let r = match &trace {
        Some(t) => run_page_observed(page, kernel.as_ref(), governor.as_mut(), &config, t.clone()),
        None => run_page(page, kernel.as_ref(), governor.as_mut(), &config),
    };
    println!("{}  under {}", r.workload_id, r.governor);
    println!(
        "  load time:   {:.3} s ({}; deadline {deadline:.1}s)",
        r.load_time.value(),
        if r.met_deadline { "met" } else { "missed" }
    );
    println!("  mean power:  {:.3} W", r.mean_power.value());
    println!("  energy:      {:.2} J", r.energy.value());
    println!("  PPW:         {:.4}", r.ppw.value());
    println!(
        "  mean clock:  {:.2} GHz over {} switches",
        r.mean_frequency.as_ghz(),
        r.switches
    );
    println!("  die at end:  {:.1} C", r.final_temp.value());
    println!(
        "  L2 MPKI:     {:.2}   co-run util: {:.2}",
        r.mean_mpki.value(),
        r.corun_utilization.value()
    );
    if let Some(t) = trace {
        println!("decision trace (measured window):");
        for line in &t.borrow().lines {
            println!("  {line}");
        }
    }
    Ok(())
}

/// `dora csv`: run a workload slice under one stock governor, emit CSV.
pub fn csv(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let page = args.require("page")?;
    let all = WorkloadSet::paper54();
    let slice: Vec<Workload> = all
        .workloads()
        .iter()
        .filter(|w| w.page.name.eq_ignore_ascii_case(page))
        .filter(|w| match args.get("kernel") {
            Some(k) => w.kernel.name().eq_ignore_ascii_case(k),
            None => true,
        })
        .cloned()
        .collect();
    if slice.is_empty() {
        return Err(format!("no workloads match page {page:?}"));
    }
    let policy = match args.get("governor").unwrap_or("interactive") {
        "interactive" => Policy::Interactive,
        "performance" => Policy::Performance,
        "powersave" => Policy::Powersave,
        "conservative" => Policy::Conservative,
        other => return Err(format!("csv supports stock governors only, got {other:?}")),
    };
    let common = args.common(42)?;
    let evaluation = CampaignDriver::new()
        .executor(common.executor)
        .evaluate(
            &WorkloadSet::from_workloads(slice),
            &[policy],
            None,
            &ScenarioConfig::builder()
                .seed(common.seed)
                .board(common.soc.board_config())
                .build(),
        )
        .map_err(|e| e.to_string())?;
    print!("{}", results_to_csv(evaluation.results()));
    Ok(())
}

/// `dora fleet`: stream a population of sampled device sessions through
/// the sharded executor and report fleet-wide battery-life deltas per
/// governor.
pub fn fleet(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let common = args.common(42)?;
    let deadline = args.get_f64("deadline", 3.0)?;
    let mut config = FleetConfig {
        sessions: args.get_u64("sessions", 1000)?,
        seed: common.seed,
        shard_size: args.get_u64("shard", 256)?.max(1),
        deadline: Seconds::new(deadline),
        archetypes: dora_campaign::fleet::DeviceArchetype::population_for(&common.soc),
        ..FleetConfig::default()
    };
    if config.sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    if args.flag("quick") {
        config.warmup = dora_sim_core::SimDuration::from_secs(2);
    }
    let mut policies = vec![Policy::Interactive, Policy::Performance, Policy::Powersave];
    let models = match args.positional(0) {
        Some(path) => {
            policies.push(Policy::Dora);
            Some(load_models(path)?)
        }
        None => None,
    };
    if args.flag("oracle") {
        policies.push(Policy::OfflineOpt);
    }
    config.policies = policies;
    eprintln!(
        "fleet: {} sessions over {} archetypes, shard {}, {} worker{}...",
        config.sessions,
        config.archetypes.len(),
        config.shard_size,
        common.executor.jobs(),
        if common.executor.jobs() == 1 { "" } else { "s" }
    );
    let report = CampaignDriver::new()
        .executor(common.executor)
        .fleet(&config, models.as_ref())
        .map_err(|e| e.to_string())?;
    match common.format {
        OutputFormat::Text => print!("{}", report.render(Seconds::new(deadline))),
        OutputFormat::Csv => print!("{}", report.to_csv()),
    }
    Ok(())
}

/// `dora session`: run a multi-page browsing session under a governor.
pub fn session(raw: &[String]) -> Result<(), String> {
    use dora_campaign::session::{run_session, SessionConfig};
    let args = Args::parse(raw)?;
    let catalog = Catalog::alexa18();
    let itinerary = args.get("pages").unwrap_or("Reddit,CNN,Amazon,MSN");
    let pages: Result<Vec<_>, String> = itinerary
        .split(',')
        .map(|name| {
            catalog
                .page(name.trim())
                .ok_or_else(|| format!("unknown page {name:?}; see `dora pages`"))
        })
        .collect();
    let pages = pages?;
    let kernel = resolve_kernel(&args)?;
    let common = args.common(42)?;
    let config = SessionConfig {
        deadline: Seconds::new(args.get_f64("deadline", 3.0)?),
        board: common.soc.board_config(),
        seed: common.seed,
        ..SessionConfig::default()
    };
    let governor_name = args.get("governor").unwrap_or("interactive");
    let mut governor: Box<dyn Governor> = match governor_name {
        "dora" | "DORA" => {
            let path = args
                .positional(0)
                .ok_or("usage: dora session <models.txt> --governor dora ...")?;
            let models = load_models(path)?;
            let dora_config = DoraConfig {
                qos_target: config.deadline,
                ..DoraConfig::default()
            };
            if config.board.clusters.len() > 1 {
                Box::new(HeterogeneousDoraGovernor::from_profile(
                    &models,
                    &config.board,
                    pages[0].features,
                    dora_config,
                ))
            } else {
                Box::new(DoraGovernor::new(models, pages[0].features, dora_config))
            }
        }
        "interactive" => Box::new(InteractiveGovernor::new(config.board.dvfs.clone())),
        "performance" => Box::new(PerformanceGovernor::new(config.board.dvfs.clone())),
        "powersave" => Box::new(PowersaveGovernor::new(config.board.dvfs.clone())),
        other => return Err(format!("unknown governor {other:?}")),
    };
    let r = run_session(&pages, kernel.as_ref(), governor.as_mut(), &config);
    println!("{}-page session under {}", r.loads.len(), r.governor);
    for l in &r.loads {
        println!(
            "  {:<12} {:.2}s  {}",
            l.page,
            l.load_time.value(),
            if l.met_deadline { "met" } else { "missed" }
        );
    }
    println!(
        "  energy: {:.1} J over {:.1} s ({:.2} W mean)",
        r.energy.value(),
        r.duration.value(),
        r.mean_power().value()
    );
    println!(
        "  battery estimate (8.74 Wh pack): {:.1} h",
        r.battery_hours(WattHours::new(8.74))
    );
    Ok(())
}

/// `dora pages`: list the catalog.
pub fn pages() -> Result<(), String> {
    let catalog = Catalog::alexa18();
    println!(
        "{:<12} {:<6} {:<9} {:>7} {:>7} {:>6} {:>6} {:>6}",
        "page", "class", "split", "nodes", "class", "href", "a", "div"
    );
    for p in catalog.pages() {
        println!(
            "{:<12} {:<6} {:<9} {:>7} {:>7} {:>6} {:>6} {:>6}",
            p.name,
            p.class.to_string(),
            if p.training { "train" } else { "held-out" },
            p.features.dom_nodes(),
            p.features.class_attrs(),
            p.features.href_attrs(),
            p.features.a_tags(),
            p.features.div_tags(),
        );
    }
    Ok(())
}

/// `dora kernels`: list the co-run suite.
pub fn kernels() -> Result<(), String> {
    println!(
        "{:<18} {:<8} {:>10} {:>10}",
        "kernel", "class", "mean APKI", "duty"
    );
    for k in Kernel::all() {
        println!(
            "{:<18} {:<8} {:>10.1} {:>10.2}",
            k.name(),
            k.intensity().to_string(),
            k.mean_apki(),
            k.mean_duty_cycle(),
        );
    }
    Ok(())
}
