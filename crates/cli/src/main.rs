//! `dora` — the command-line face of the reproduction.
//!
//! ```text
//! dora train   [--quick] [--seed N] [--jobs N] --out models.txt
//! dora inspect <models.txt>
//! dora profile <page.html>
//! dora predict <models.txt> (--page NAME | --html FILE)
//!              [--mpki X] [--util X] [--temp C] [--deadline S]
//! dora govern  <models.txt> --page NAME [--kernel NAME] [--deadline S]
//!              [--governor dora|interactive|performance|powersave] [--trace]
//!              [--soc PROFILE]
//! dora csv     --page NAME [--kernel NAME] [--governor NAME] [--jobs N]
//! dora fleet   [<models.txt>] [--sessions N] [--shard N] [--oracle]
//!              [--jobs N] [--seed N] [--format text|csv] [--soc PROFILE] [--quick]
//! ```
//!
//! Argument parsing is hand-rolled: the grammar is small and the
//! workspace stays dependency-free.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
dora - DORA (ISPASS 2018) reproduction CLI

USAGE:
  dora train   [--quick] [--seed N] [--jobs N] --out <models.txt>
  dora inspect <models.txt>
  dora profile <page.html>
  dora predict <models.txt> (--page NAME | --html FILE)
               [--mpki X] [--util X] [--temp C] [--deadline S]
  dora govern  <models.txt> --page NAME [--kernel NAME] [--deadline S]
               [--governor dora|interactive|performance|powersave] [--trace]
               [--soc PROFILE]
  dora csv     --page NAME [--kernel NAME] [--governor NAME] [--jobs N]
  dora fleet   [<models.txt>] [--sessions N] [--shard N] [--oracle]
               [--deadline S] [--jobs N] [--seed N] [--format text|csv]
               [--quick] [--soc PROFILE]
  dora session [<models.txt>] [--pages A,B,C] [--kernel NAME]
               [--governor dora|interactive|performance|powersave]
               [--soc PROFILE]
  dora pages
  dora kernels

Campaign and fleet commands share --jobs/--seed/--format/--trace/--soc
and fan scenarios out over all cores; results are bit-identical at any
width. --jobs 1 forces the classic sequential loop. `dora fleet` streams
the sampled device population through mergeable sketches, so memory
stays flat no matter how many sessions you ask for.

--soc selects the SoC profile (msm8974, the paper's platform, or
biglittle-a15a7, a two-cluster big.LITTLE part); on multi-cluster
profiles the DORA governor searches the (cluster, frequency) product
space and migrates the browser between clusters.

Run `dora pages` / `dora kernels` to list the built-in catalog.";

fn main() -> ExitCode {
    // Exit quietly when stdout closes under us (`dora pages | head`):
    // the default Rust behaviour is a broken-pipe panic mid-print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if is_broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "train" => commands::train(rest),
        "inspect" => commands::inspect(rest),
        "profile" => commands::profile(rest),
        "predict" => commands::predict(rest),
        "govern" => commands::govern(rest),
        "csv" => commands::csv(rest),
        "fleet" => commands::fleet(rest),
        "session" => commands::session(rest),
        "pages" => commands::pages(),
        "kernels" => commands::kernels(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
