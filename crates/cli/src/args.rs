//! Minimal flag parsing for the CLI's small grammar.

use dora_campaign::{Executor, Parallelism};
use std::collections::HashMap;

/// Parsed arguments: positional operands plus `--flag [value]` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, Option<String>>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 3] = ["quick", "trace", "oracle"];

impl Args {
    /// Parses a raw argument list.
    ///
    /// # Errors
    ///
    /// Rejects options missing a required value.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let token = &raw[i];
            if let Some(name) = token.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    args.options.insert(name.to_string(), None);
                } else {
                    let value = raw
                        .get(i + 1)
                        .filter(|v| !v.starts_with("--"))
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    args.options.insert(name.to_string(), Some(value.clone()));
                    i += 1;
                }
            } else {
                args.positional.push(token.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// The `n`-th positional operand.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A string option's value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// When the option is absent.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// When present but unparseable.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }

    /// An integer option with a default.
    ///
    /// # Errors
    ///
    /// When present but unparseable.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
        }
    }

    /// The campaign executor selected by `--jobs N` (default: one worker
    /// per core; `--jobs 1` reproduces the sequential loop exactly;
    /// `--jobs 0` means auto, matching make/cargo convention).
    ///
    /// # Errors
    ///
    /// When `--jobs` is present but not a non-negative integer.
    /// The SoC profile selected by `--soc <name>` (MSM8974, the paper's
    /// platform, when absent).
    ///
    /// # Errors
    ///
    /// When `--soc` names an unknown profile; the message lists the
    /// registry.
    pub fn soc(&self) -> Result<dora_soc::SocProfile, String> {
        match self.get("soc") {
            None => Ok(dora_soc::SocProfile::msm8974()),
            Some(name) => dora_soc::SocProfile::by_name(name).ok_or_else(|| {
                format!(
                    "--soc expects one of {}, got {name:?}",
                    dora_soc::SocProfile::names().join(", ")
                )
            }),
        }
    }

    pub fn executor(&self) -> Result<Executor, String> {
        match self.get("jobs") {
            None => Ok(Executor::new(Parallelism::Auto)),
            Some(v) => {
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs expects a non-negative integer, got {v:?}"))?;
                Ok(Executor::new(match n {
                    0 => Parallelism::Auto,
                    n => Parallelism::Fixed(n),
                }))
            }
        }
    }
}

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable aligned tables (the default).
    Text,
    /// Machine-readable CSV on stdout.
    Csv,
}

/// The option set shared by every simulation subcommand — `--jobs N`,
/// `--seed N`, `--format text|csv`, `--trace`, `--soc <profile>` —
/// parsed once so govern, campaign and fleet commands agree on spelling
/// and defaults.
#[derive(Debug)]
pub struct CommonArgs {
    /// Fan-out width from `--jobs` (auto when absent or `0`).
    pub executor: Executor,
    /// Simulation seed from `--seed` (subcommand default when absent).
    pub seed: u64,
    /// Output format from `--format` (text when absent).
    pub format: OutputFormat,
    /// Whether `--trace` asked for per-decision probe output.
    pub trace: bool,
    /// The SoC profile from `--soc` (MSM8974 when absent).
    pub soc: dora_soc::SocProfile,
}

impl Args {
    /// Parses the shared subcommand options, defaulting `--seed` to
    /// `default_seed`.
    ///
    /// # Errors
    ///
    /// When `--jobs` or `--seed` is unparseable, or `--format` names an
    /// unknown format.
    pub fn common(&self, default_seed: u64) -> Result<CommonArgs, String> {
        let format = match self.get("format") {
            None | Some("text") => OutputFormat::Text,
            Some("csv") => OutputFormat::Csv,
            Some(other) => return Err(format!("--format expects text or csv, got {other:?}")),
        };
        Ok(CommonArgs {
            executor: self.executor()?,
            seed: self.get_u64("seed", default_seed)?,
            format,
            trace: self.flag("trace"),
            soc: self.soc()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_mixed_arguments() {
        let a = Args::parse(&strings(&[
            "models.txt",
            "--page",
            "Reddit",
            "--quick",
            "--mpki",
            "5.5",
        ]))
        .expect("valid");
        assert_eq!(a.positional(0), Some("models.txt"));
        assert_eq!(a.get("page"), Some("Reddit"));
        assert!(a.flag("quick"));
        assert_eq!(a.get_f64("mpki", 0.0).expect("number"), 5.5);
        assert_eq!(a.get_f64("util", 0.7).expect("default"), 0.7);
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Args::parse(&strings(&["--page"])).is_err());
        assert!(Args::parse(&strings(&["--page", "--quick"])).is_err());
    }

    #[test]
    fn bad_number_rejected() {
        let a = Args::parse(&strings(&["--mpki", "lots"])).expect("parses");
        assert!(a.get_f64("mpki", 0.0).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = Args::parse(&[]).expect("parses");
        let err = a.require("out").expect_err("absent");
        assert!(err.contains("--out"));
    }

    /// The executor `--jobs <value>` resolves to.
    fn executor_for(value: &str) -> Executor {
        Args::parse(&strings(&["--jobs", value]))
            .expect("parses")
            .executor()
            .expect("valid width")
    }

    #[test]
    fn jobs_flag_selects_executor_width() {
        let default = Args::parse(&[]).expect("parses").executor().expect("auto");
        assert!(default.jobs() >= 1);
        assert_eq!(executor_for("1").jobs(), 1);
        assert_eq!(executor_for("4").jobs(), 4);
        for bad in ["-2", "many", "1.5", ""] {
            // "-2" may already fail at parse; anything that parses must
            // be rejected by executor().
            if let Ok(a) = Args::parse(&strings(&["--jobs", bad])) {
                assert!(a.executor().is_err(), "--jobs {bad} must be rejected");
            }
        }
    }

    #[test]
    fn common_args_share_one_grammar() {
        let a = Args::parse(&strings(&[
            "--jobs", "2", "--seed", "7", "--format", "csv", "--trace",
        ]))
        .expect("parses");
        let common = a.common(42).expect("valid");
        assert_eq!(common.executor.jobs(), 2);
        assert_eq!(common.seed, 7);
        assert_eq!(common.format, OutputFormat::Csv);
        assert!(common.trace);

        let defaults = Args::parse(&[]).expect("parses").common(42).expect("valid");
        assert_eq!(defaults.seed, 42);
        assert_eq!(defaults.format, OutputFormat::Text);
        assert!(!defaults.trace);

        let bad = Args::parse(&strings(&["--format", "yaml"])).expect("parses");
        let err = bad.common(42).expect_err("unknown format");
        assert!(err.contains("yaml"), "{err}");
    }

    #[test]
    fn soc_flag_selects_a_registry_profile() {
        let default = Args::parse(&[]).expect("parses").soc().expect("default");
        assert_eq!(default.name(), "msm8974");
        let bl = Args::parse(&strings(&["--soc", "biglittle-a15a7"]))
            .expect("parses")
            .soc()
            .expect("registered");
        assert_eq!(bl.name(), "biglittle-a15a7");
        assert_eq!(bl.board_config().clusters.len(), 2);
        let err = Args::parse(&strings(&["--soc", "exynos9"]))
            .expect("parses")
            .soc()
            .expect_err("unknown profile");
        assert!(
            err.contains("msm8974") && err.contains("biglittle-a15a7"),
            "{err}"
        );
    }

    #[test]
    fn jobs_round_trips_through_parallelism() {
        // `--jobs 0` and the flag's absence both mean auto: one worker
        // per available core, exactly what Parallelism::Auto resolves to.
        let auto = Executor::new(Parallelism::Auto).jobs();
        let absent = Args::parse(&[]).expect("parses").executor().expect("auto");
        assert_eq!(absent.jobs(), auto);
        assert_eq!(executor_for("0").jobs(), auto);
        // Explicit widths round-trip verbatim, matching Fixed(n).
        for n in [1usize, 2, 3, 8, 64] {
            let got = executor_for(&n.to_string()).jobs();
            assert_eq!(got, Executor::new(Parallelism::Fixed(n)).jobs());
            assert_eq!(got, n);
        }
    }
}
