//! End-to-end tests of the `dora` binary via `std::process::Command`.

// Test code asserts invariants directly; the panic ratchet covers libraries.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::{Command, Output};

fn dora(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dora"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = dora(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = dora(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("dora train"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dora(&["transmogrify"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn pages_and_kernels_list_the_catalog() {
    let pages = dora(&["pages"]);
    assert!(pages.status.success());
    let text = stdout(&pages);
    assert!(text.contains("Reddit"));
    assert!(text.contains("Aliexpress"));
    assert_eq!(text.lines().count(), 19); // header + 18 pages

    let kernels = dora(&["kernels"]);
    assert!(kernels.status.success());
    let text = stdout(&kernels);
    assert!(text.contains("backprop"));
    assert_eq!(text.lines().count(), 10); // header + 9 kernels
}

#[test]
fn profile_extracts_features_from_html() {
    let dir = std::env::temp_dir().join("dora_cli_test_profile");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("page.html");
    std::fs::write(
        &path,
        r#"<html><body><div class="a"><a href="/x">x</a></div></body></html>"#,
    )
    .expect("writable");
    let out = dora(&["profile", path.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("X1 DOM tree nodes:    4"), "{text}");
    assert!(text.contains("X4 <a> tags:          1"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_rejects_tagless_input() {
    let dir = std::env::temp_dir().join("dora_cli_test_tagless");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("plain.html");
    std::fs::write(&path, "no markup here at all").expect("writable");
    let out = dora(&["profile", path.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_requires_a_page_source() {
    let out = dora(&["predict", "/nonexistent/models.txt"]);
    assert!(!out.status.success());
}

#[test]
fn inspect_rejects_garbage_bundles() {
    let dir = std::env::temp_dir().join("dora_cli_test_garbage");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad.txt");
    std::fs::write(&path, "not a model bundle").expect("writable");
    let out = dora(&["inspect", path.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("parse error"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_flag_is_validated() {
    // `--jobs 0` means auto (round-tripped at the unit level in
    // args.rs); only non-integers are rejected.
    let out = dora(&["csv", "--page", "Amazon", "--jobs", "some"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--jobs expects a non-negative integer"));
}

#[test]
#[ignore = "runs six governed loads twice (~minute in debug); run in release"]
fn csv_with_jobs_1_matches_parallel_output() {
    // --jobs 1 is the classic sequential loop; any other width must
    // produce byte-identical CSV (the executor's determinism guarantee).
    let sequential = dora(&["csv", "--page", "Amazon", "--jobs", "1"]);
    assert!(sequential.status.success(), "{}", stderr(&sequential));
    let parallel = dora(&["csv", "--page", "Amazon", "--jobs", "4"]);
    assert!(parallel.status.success(), "{}", stderr(&parallel));
    let seq_text = stdout(&sequential);
    assert_eq!(seq_text, stdout(&parallel));
    assert!(seq_text.starts_with("workload_id,"));
    assert_eq!(seq_text.lines().count(), 4); // header + 3 intensities
}

#[test]
#[ignore = "simulates a multi-page session (~minute in debug); run in release"]
fn session_without_models_uses_stock_governor() {
    let out = dora(&[
        "session",
        "--pages",
        "Amazon,Reddit",
        "--governor",
        "interactive",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2-page session under interactive"), "{text}");
    assert!(text.contains("battery estimate"), "{text}");
}

#[test]
fn session_rejects_unknown_page() {
    let out = dora(&["session", "--pages", "NotARealSite"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown page"));
}

#[test]
#[ignore = "trains a quick pipeline (~minutes in debug); run in release"]
fn full_flow_train_inspect_predict_govern() {
    let dir = std::env::temp_dir().join("dora_cli_test_flow");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let models = dir.join("models.txt");
    let models_str = models.to_str().expect("utf8 path");

    let out = dora(&["train", "--quick", "--out", models_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(models.exists());

    let out = dora(&["inspect", models_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("DVFS table: 14 settings"));

    let out = dora(&["predict", models_str, "--page", "Reddit", "--mpki", "8"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("fopt = "));

    let out = dora(&[
        "govern", models_str, "--page", "MSN", "--kernel", "backprop",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MSN+backprop"), "{text}");
    assert!(text.contains("load time:"), "{text}");

    let out = dora(&["csv", "--page", "Amazon", "--governor", "performance"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("workload_id,"));
    assert_eq!(text.lines().count(), 4); // header + 3 intensities

    std::fs::remove_dir_all(&dir).ok();
}
