//! The SoC profile registry: named, cited platform descriptions.
//!
//! A [`SocProfile`] bundles everything the layers above the board need to
//! target a platform — the cluster list with per-cluster DVFS tables and
//! power coefficients, the initial task-to-cluster affinity, and the
//! migration-cost model — behind a stable name the CLI exposes as
//! `--soc <name>`. Two profiles ship:
//!
//! * `msm8974` — the paper's Nexus 5: one homogeneous 4×Krait cluster.
//!   Byte-identical to the historical `BoardConfig::nexus5()`.
//! * `biglittle-a15a7` — an Exynos-5422-class big.LITTLE platform
//!   (Cortex-A15 "big" + Cortex-A7 "LITTLE"), the decision space of the
//!   paper's closest heterogeneous relatives (arXiv 1710.03559,
//!   arXiv 1906.08689).
//!
//! Cores bind to clusters *dynamically*: the board keeps a core→cluster
//! map seeded from [`BoardConfig::affinity`] and a governor may rebind a
//! core at run time, paying the [`MigrationCost`]. Clusters therefore do
//! not own fixed core ranges — this is the virtual-core reading of
//! global task scheduling, which keeps the homogeneous profile's core
//! numbering (and hence every golden output) untouched.

use crate::config::BoardConfig;
use crate::dvfs::{DvfsTable, Frequency};
use crate::memory::MemorySystem;
use crate::power::{LeakageParams, PowerParams};
use crate::thermal::ThermalParams;
use dora_sim_core::units::Joules;
use dora_sim_core::SimDuration;
use std::fmt;

// Ground-truth big.LITTLE model coefficients. This module is a designated
// constants module (`[constants] modules` in xtask/xtask.toml): every
// value states its provenance and `xtask lint` keeps it that way.

/// Exynos 5422 Cortex-A15 ("big") operating points as `(kHz, mV)` pairs.
///
/// The XU3 board used by both heterogeneous relatives exposes the A15
/// cluster from 200 MHz to 2.0 GHz; the table below samples that range
/// at the plotted granularity with the stock regulator voltages.
///
/// paper: 1710.03559 Section 3 (ODROID XU3, Exynos 5422 A15 0.2–2.0 GHz);
/// paper: 1906.08689 Section 2.1 (same platform and frequency range)
pub const EXYNOS5422_A15_KHZ_MV: [(u64, u32); 10] = [
    (200_000, 900),
    (400_000, 912),
    (600_000, 925),
    (800_000, 950),
    (1_000_000, 975),
    (1_200_000, 1_012),
    (1_400_000, 1_050),
    (1_600_000, 1_100),
    (1_800_000, 1_162),
    (2_000_000, 1_237),
];

/// Exynos 5422 Cortex-A7 ("LITTLE") operating points as `(kHz, mV)` pairs.
///
/// paper: 1710.03559 Section 3 (Exynos 5422 A7 0.2–1.4 GHz);
/// paper: 1906.08689 Section 2.1 (same platform and frequency range)
pub const EXYNOS5422_A7_KHZ_MV: [(u64, u32); 7] = [
    (200_000, 900),
    (400_000, 912),
    (600_000, 925),
    (800_000, 950),
    (1_000_000, 1_000),
    (1_200_000, 1_050),
    (1_400_000, 1_100),
];

const _: () = assert!(
    crate::dvfs::khz_mv_table_is_valid(&EXYNOS5422_A15_KHZ_MV),
    "A15 DVFS table must be strictly ascending with positive voltages"
);
const _: () = assert!(
    crate::dvfs::khz_mv_table_is_valid(&EXYNOS5422_A7_KHZ_MV),
    "A7 DVFS table must be strictly ascending with positive voltages"
);

/// Effective switching capacitance per Cortex-A15 core, farads.
const BIGLITTLE_A15_CEFF_CORE_F: f64 = 0.65e-9; // paper: 1906.08689 Section 2.2 C·V²·f power-model fit, big cluster
/// Effective switching capacitance per Cortex-A7 core, farads.
const BIGLITTLE_A7_CEFF_CORE_F: f64 = 0.12e-9; // paper: 1906.08689 Section 2.2 C·V²·f power-model fit, LITTLE cluster
/// Relative CPI of the in-order A7 against the out-of-order A15 at equal
/// clock on browser workloads.
const BIGLITTLE_A7_CPI_SCALE: f64 = 1.6; // paper: 1710.03559 Section 5 big-vs-LITTLE load-time gap at matched frequency
/// Uncore dynamic power per GHz of big-cluster clock, watts.
const BIGLITTLE_A15_UNCORE_W_PER_GHZ: f64 = 0.18; // paper: 1906.08689 Section 2.2 SoC-minus-core residual, big cluster
/// Uncore dynamic power per GHz of LITTLE-cluster clock, watts.
const BIGLITTLE_A7_UNCORE_W_PER_GHZ: f64 = 0.05; // paper: 1906.08689 Section 2.2 SoC-minus-core residual, LITTLE cluster
/// Leakage scale of the LITTLE cluster relative to the big cluster's
/// Eq. 5 parameters (smaller cores, lower-leakage process corner).
const BIGLITTLE_A7_LEAKAGE_SCALE: f64 = 0.25; // paper: 1906.08689 Section 2.2 idle-power gap between clusters
/// Latency of rebinding a task between clusters, seconds.
const BIGLITTLE_MIGRATION_LATENCY_S: f64 = 2.0e-3; // paper: 1710.03559 Section 4.2 cluster-migration overhead, order of milliseconds
/// Energy of one cluster migration (cache refill traffic), joules.
const BIGLITTLE_MIGRATION_ENERGY_J: f64 = 5.0e-3; // paper: 1710.03559 Section 4.2 migration cost model, energy term

/// Index of a cluster within a board's cluster list.
///
/// A thin newtype so (cluster, frequency) operating points cannot be
/// built with a core id in the cluster slot by accident. Probe events
/// carry the raw `usize` (the probe bus lives below this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(usize);

impl ClusterId {
    /// The primary cluster (index 0) — the only cluster of a homogeneous
    /// profile, and the cluster legacy single-table APIs act on.
    // paper: structural index, not a measured value (1710.03559 numbers
    // live on the tables/coefficients above).
    pub const PRIMARY: ClusterId = ClusterId(0);

    /// Constructs from a raw index.
    pub const fn new(index: usize) -> Self {
        ClusterId(index)
    }

    /// The raw index into the board's cluster list.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ClusterId {
    fn from(index: usize) -> Self {
        ClusterId(index)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// One cluster of cores: its DVFS table, relative instruction timing,
/// and power coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Human-readable microarchitecture name (e.g. `"Cortex-A15"`).
    pub name: String,
    /// The cluster's operating-point table.
    pub dvfs: DvfsTable,
    /// Multiplier applied to every task's base CPI while it runs on this
    /// cluster (1.0 on the reference microarchitecture; >1 on a simpler
    /// in-order core). Exactly 1.0 multiplies out bit-identically, which
    /// is what keeps homogeneous profiles on the historical arithmetic.
    pub cpi_scale: f64,
    /// Effective switching capacitance per core in farads.
    pub ceff_core_f: f64,
    /// Uncore dynamic power per GHz of this cluster's clock, watts,
    /// scaled by the mean utilization of the cores bound to it.
    pub uncore_w_per_ghz: f64,
    /// Eq. 5 leakage parameters of this cluster.
    pub leakage: LeakageParams,
}

impl ClusterConfig {
    /// The Nexus 5's single Krait 400 cluster, built from the same
    /// cited coefficients as [`PowerParams::nexus5`].
    pub fn krait400() -> Self {
        let power = PowerParams::nexus5();
        ClusterConfig {
            name: "Krait 400".to_string(),
            dvfs: DvfsTable::default(),
            cpi_scale: 1.0,
            ceff_core_f: power.ceff_core_f,
            uncore_w_per_ghz: power.uncore_w_per_ghz,
            leakage: power.leakage,
        }
    }

    /// The Exynos-5422-class big cluster (Cortex-A15).
    pub fn cortex_a15() -> Self {
        ClusterConfig {
            name: "Cortex-A15".to_string(),
            dvfs: DvfsTable::from_khz_mv(&EXYNOS5422_A15_KHZ_MV),
            cpi_scale: 1.0,
            ceff_core_f: BIGLITTLE_A15_CEFF_CORE_F,
            uncore_w_per_ghz: BIGLITTLE_A15_UNCORE_W_PER_GHZ,
            leakage: LeakageParams::nexus5(),
        }
    }

    /// The Exynos-5422-class LITTLE cluster (Cortex-A7).
    pub fn cortex_a7() -> Self {
        let big = LeakageParams::nexus5();
        ClusterConfig {
            name: "Cortex-A7".to_string(),
            dvfs: DvfsTable::from_khz_mv(&EXYNOS5422_A7_KHZ_MV),
            cpi_scale: BIGLITTLE_A7_CPI_SCALE,
            ceff_core_f: BIGLITTLE_A7_CEFF_CORE_F,
            uncore_w_per_ghz: BIGLITTLE_A7_UNCORE_W_PER_GHZ,
            leakage: LeakageParams {
                k1: big.k1 * BIGLITTLE_A7_LEAKAGE_SCALE,
                k2: big.k2 * BIGLITTLE_A7_LEAKAGE_SCALE,
                ..big
            },
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.cpi_scale.is_finite() && self.cpi_scale > 0.0) {
            return Err(format!(
                "cluster {:?}: cpi_scale must be positive and finite, got {}",
                self.name, self.cpi_scale
            ));
        }
        for (field, v) in [
            ("ceff_core_f", self.ceff_core_f),
            ("uncore_w_per_ghz", self.uncore_w_per_ghz),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!(
                    "cluster {:?}: {field} must be non-negative and finite, got {v}",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// The cost of rebinding a task from one cluster to another.
///
/// The paper's heterogeneous relatives model a cluster switch as a fixed
/// latency (pipeline drain, context transfer, cold-cache refill) plus an
/// energy term for the refill traffic (1710.03559 Section 4.2). Both are
/// charged once per migration, regardless of direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCost {
    /// Stall charged to the board when a core is rebound.
    pub latency: SimDuration,
    /// Energy charged to the device when a core is rebound.
    pub energy: Joules,
}

impl MigrationCost {
    /// A free migration — the only sensible value for single-cluster
    /// profiles, where no migration can ever happen.
    pub fn none() -> Self {
        MigrationCost {
            latency: SimDuration::ZERO,
            energy: Joules::ZERO,
        }
    }

    /// The cited Exynos-5422-class migration cost.
    pub fn biglittle() -> Self {
        MigrationCost {
            latency: SimDuration::from_secs_f64(BIGLITTLE_MIGRATION_LATENCY_S),
            energy: Joules::new(BIGLITTLE_MIGRATION_ENERGY_J),
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let e = self.energy.value();
        if !(e.is_finite() && e >= 0.0) {
            return Err(format!(
                "migration energy must be non-negative and finite, got {e}"
            ));
        }
        Ok(())
    }
}

/// A point in the (cluster, frequency) product space — what a
/// heterogeneous governor decides per interval, generalizing the single
/// frequency of the paper's Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperatingPoint {
    /// The cluster the governed task should run on.
    pub cluster: ClusterId,
    /// The frequency that cluster should run at.
    pub frequency: Frequency,
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.cluster, self.frequency)
    }
}

/// A named, validated platform description from the registry.
///
/// # Example
///
/// ```
/// use dora_soc::SocProfile;
///
/// let soc = SocProfile::by_name("biglittle-a15a7").expect("registered");
/// let board = soc.board_config();
/// assert_eq!(board.clusters.len(), 2);
/// assert!(board.validate().is_ok());
/// // The homogeneous default matches the historical Nexus 5 config.
/// assert_eq!(SocProfile::msm8974().dvfs().len(), 14);
/// ```
#[derive(Debug, Clone)]
pub struct SocProfile {
    name: &'static str,
    board: BoardConfig,
}

impl SocProfile {
    /// The registry's stable profile names, in presentation order.
    pub fn names() -> &'static [&'static str] {
        &["msm8974", "biglittle-a15a7"]
    }

    /// Looks a profile up by its registry name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "msm8974" => Some(SocProfile::msm8974()),
            "biglittle-a15a7" => Some(SocProfile::biglittle_a15a7()),
            _ => None,
        }
    }

    /// The paper's Nexus 5 (Snapdragon 800 / MSM8974): one homogeneous
    /// cluster of four Krait cores (fourth switched off, as in
    /// Section IV-B), 2 MB shared L2, LPDDR3, the 14-entry DVFS table.
    pub fn msm8974() -> Self {
        let krait = ClusterConfig::krait400();
        SocProfile {
            name: "msm8974",
            board: BoardConfig {
                name: "Google Nexus 5 (MSM8974 Snapdragon 800)".to_string(),
                num_cores: 4,
                cores_enabled: vec![true, true, true, false],
                dvfs: krait.dvfs.clone(),
                clusters: vec![krait],
                affinity: vec![0; 4],
                migration: MigrationCost::none(),
                l2_capacity_bytes: 2.0 * 1024.0 * 1024.0,
                memory: MemorySystem::lpddr3(),
                power: PowerParams::nexus5(),
                thermal: ThermalParams::nexus5_room(),
                quantum: SimDuration::from_millis(1),
                dvfs_switch_stall: SimDuration::from_micros(60),
                mem_overlap: 0.65,
                dirty_fraction: 0.30,
            },
        }
    }

    /// An Exynos-5422-class big.LITTLE platform: a Cortex-A15 big
    /// cluster and a Cortex-A7 LITTLE cluster sharing the L2 and LPDDR3
    /// of the reference board, with the cited migration cost. All cores
    /// start on the big cluster (affinity 0), matching the stock
    /// launch-on-big policy both heterogeneous relatives observe.
    pub fn biglittle_a15a7() -> Self {
        let a15 = ClusterConfig::cortex_a15();
        SocProfile {
            name: "biglittle-a15a7",
            board: BoardConfig {
                name: "big.LITTLE devboard (Exynos 5422 class, A15+A7)".to_string(),
                num_cores: 4,
                cores_enabled: vec![true, true, true, false],
                dvfs: a15.dvfs.clone(),
                clusters: vec![a15, ClusterConfig::cortex_a7()],
                affinity: vec![0; 4],
                migration: MigrationCost::biglittle(),
                l2_capacity_bytes: 2.0 * 1024.0 * 1024.0,
                memory: MemorySystem::lpddr3(),
                power: PowerParams::nexus5(),
                thermal: ThermalParams::nexus5_room(),
                quantum: SimDuration::from_millis(1),
                dvfs_switch_stall: SimDuration::from_micros(60),
                mem_overlap: 0.65,
                dirty_fraction: 0.30,
            },
        }
    }

    /// The registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The profile's board configuration (cloned; profiles are
    /// immutable registry entries).
    pub fn board_config(&self) -> BoardConfig {
        self.board.clone()
    }

    /// The primary cluster's DVFS table — the successor of the
    /// deprecated `DvfsTable::msm8974()` free constructor.
    pub fn dvfs(&self) -> DvfsTable {
        self.board.dvfs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_profile_validates() {
        for name in SocProfile::names() {
            let profile = SocProfile::by_name(name).expect("registered");
            assert_eq!(profile.name(), *name);
            profile
                .board_config()
                .validate()
                .unwrap_or_else(|e| panic!("profile {name}: {e}"));
        }
        assert!(SocProfile::by_name("sm8550").is_none());
    }

    #[test]
    fn msm8974_profile_matches_the_historical_config() {
        #[allow(deprecated)]
        let legacy = BoardConfig::nexus5();
        let board = SocProfile::msm8974().board_config();
        assert_eq!(board.name, legacy.name);
        assert_eq!(board.dvfs, legacy.dvfs);
        assert_eq!(board.power, legacy.power);
        assert_eq!(board.clusters.len(), 1);
        assert_eq!(board.clusters[0].cpi_scale, 1.0);
        assert_eq!(board.migration, MigrationCost::none());
        assert_eq!(board.affinity, vec![0; 4]);
    }

    #[test]
    fn biglittle_profile_shape() {
        let board = SocProfile::biglittle_a15a7().board_config();
        assert_eq!(board.clusters.len(), 2);
        let a15 = &board.clusters[0];
        let a7 = &board.clusters[1];
        assert_eq!(a15.dvfs.len(), EXYNOS5422_A15_KHZ_MV.len());
        assert_eq!(a7.dvfs.len(), EXYNOS5422_A7_KHZ_MV.len());
        // The primary-cluster alias points at the big cluster's table.
        assert_eq!(board.dvfs, a15.dvfs);
        // The LITTLE cluster is slower per clock and cheaper per switch.
        assert!(a7.cpi_scale > a15.cpi_scale);
        assert!(a7.ceff_core_f < a15.ceff_core_f);
        assert!(a7.dvfs.max_frequency() < a15.dvfs.max_frequency());
        // Migration is genuinely priced.
        assert!(board.migration.latency > SimDuration::ZERO);
        assert!(board.migration.energy > Joules::ZERO);
    }

    #[test]
    fn cluster_id_and_operating_point_display() {
        let point = OperatingPoint {
            cluster: ClusterId::new(1),
            frequency: Frequency::from_mhz(1400.0),
        };
        assert_eq!(point.to_string(), "cluster1@1.400GHz");
        assert_eq!(ClusterId::PRIMARY.index(), 0);
        assert_eq!(ClusterId::from(2).index(), 2);
    }

    #[test]
    fn invalid_cluster_parameters_are_rejected() {
        let mut cluster = ClusterConfig::krait400();
        cluster.cpi_scale = 0.0;
        assert!(cluster.validate().is_err());
        let mut cluster = ClusterConfig::cortex_a7();
        cluster.ceff_core_f = f64::NAN;
        assert!(cluster.validate().is_err());
        let bad = MigrationCost {
            latency: SimDuration::ZERO,
            energy: Joules::new(f64::NAN),
        };
        assert!(bad.validate().is_err());
    }
}
