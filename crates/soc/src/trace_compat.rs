//! String-trace compatibility shim over the probe bus.
//!
//! [`crate::board::Board::trace_events`] predates the typed probe layer
//! and is kept as a thin view for debugging and for callers that only
//! want readable lines. The shim is an ordinary [`Probe`]: it listens on
//! the board's bus, keeps only the lifecycle events the old string ring
//! recorded (assignments, DVFS switches, task completions), and formats
//! them into the historical messages. Formatting happens here — off the
//! stepping hot path, and only while tracing is enabled.

use crate::dvfs::Frequency;
use dora_sim_core::probe::{Probe, ProbeEvent};
use dora_sim_core::trace::{TraceEvent, TraceRing};
use dora_sim_core::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Bounded ring of formatted lifecycle events, fed by the probe bus.
#[derive(Debug)]
pub(crate) struct LifecycleTrace {
    ring: TraceRing,
}

impl LifecycleTrace {
    /// A shared handle holding at most `capacity` events, ready for
    /// [`dora_sim_core::probe::ProbeBus::attach`].
    pub(crate) fn shared(capacity: usize) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(LifecycleTrace {
            ring: TraceRing::new(capacity),
        }))
    }

    /// The formatted events, oldest first.
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().cloned().collect()
    }
}

impl Probe for LifecycleTrace {
    fn on_event(&mut self, at: SimTime, event: &ProbeEvent) {
        // Only the three lifecycle kinds the historical string ring
        // carried; per-quantum samples must not consume ring capacity.
        match event {
            ProbeEvent::TaskAssigned { core, name } => {
                self.ring
                    .record(at, format!("core{core}: assigned task {name:?}"));
            }
            ProbeEvent::DvfsSwitch { to_khz, .. } => {
                let f = Frequency::from_khz(*to_khz);
                self.ring.record(at, format!("dvfs: -> {f}"));
            }
            ProbeEvent::TaskFinished { core, at: when } => {
                self.ring
                    .record(at, format!("core{core}: task finished at {when}"));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_the_historical_messages_and_ignores_samples() {
        let shim = LifecycleTrace::shared(8);
        let now = SimTime::from_millis(3);
        let mut probe = shim.borrow_mut();
        probe.on_event(
            now,
            &ProbeEvent::TaskAssigned {
                core: 0,
                name: "job".to_string(),
            },
        );
        probe.on_event(
            now,
            &ProbeEvent::DvfsSwitch {
                cluster: 0,
                from_khz: 300_000,
                to_khz: 1_958_400,
            },
        );
        probe.on_event(
            now,
            &ProbeEvent::QuantumRetired {
                core: 0,
                instructions: 1.0e6,
                miss_ratio: 0.2,
            },
        );
        probe.on_event(
            now,
            &ProbeEvent::TaskFinished {
                core: 0,
                at: SimTime::from_millis(4),
            },
        );
        let messages: Vec<String> = probe.events().into_iter().map(|e| e.message).collect();
        assert_eq!(
            messages,
            vec![
                "core0: assigned task \"job\"".to_string(),
                "dvfs: -> 1.958GHz".to_string(),
                "core0: task finished at t=0.004000s".to_string(),
            ]
        );
    }
}
