//! Board checkpointing: capture a running simulation and fork it.
//!
//! A [`BoardSnapshot`] is a pure value holding everything that determines
//! a board's future behaviour: task progress, counters, thermal and
//! energy state, DVFS position, pending stall, and the seed. It
//! deliberately excludes observers (probes, the trace shim) and the
//! solver's scratch buffers — those never influence the simulation, so
//! restoring onto a board with different probes attached still replays
//! bit-identically.
//!
//! The campaign layer uses this to run a frequency-invariant warmup
//! prefix once, snapshot, and fan one continuation per candidate
//! frequency across worker threads. Snapshots are `Send + Sync` (tasks
//! carry those bounds) so a single snapshot can be shared by reference
//! across the executor's workers.

use crate::board::Board;
use crate::config::{BoardError, EnergyBreakdown};
use crate::counters::CounterSet;
use crate::power::PowerBreakdown;
use crate::task::Task;
use crate::thermal::ThermalNode;
use dora_sim_core::stats::TimeWeighted;
use dora_sim_core::units::Joules;
use dora_sim_core::{SimDuration, SimTime};

/// One core slot's captured state.
#[derive(Debug)]
pub struct SlotSnapshot {
    pub(crate) enabled: bool,
    pub(crate) task: Option<Box<dyn Task>>,
    pub(crate) finish_time: Option<SimTime>,
}

/// A point-in-time capture of a [`Board`]'s complete simulation state.
///
/// Produced by [`Board::snapshot`], consumed by [`Board::restore`]. The
/// same snapshot can be restored onto any number of boards built from a
/// structurally identical configuration; each restored board then evolves
/// bit-identically to the original under the same inputs.
#[derive(Debug)]
pub struct BoardSnapshot {
    pub(crate) slots: Vec<SlotSnapshot>,
    pub(crate) counters: CounterSet,
    /// Per-cluster DVFS indices, parallel to the board's cluster list.
    pub(crate) freq_indices: Vec<usize>,
    /// Live core→cluster binding at capture time.
    pub(crate) cluster_of: Vec<usize>,
    pub(crate) now: SimTime,
    pub(crate) energy: Joules,
    pub(crate) power_track: TimeWeighted,
    pub(crate) last_power: PowerBreakdown,
    pub(crate) switch_count: u64,
    pub(crate) pending_stall: SimDuration,
    pub(crate) energy_breakdown: EnergyBreakdown,
    pub(crate) thermal: ThermalNode,
    pub(crate) seed: u64,
}

impl BoardSnapshot {
    /// The simulated instant the snapshot was taken at.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// The seed of the board the snapshot was taken from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of core slots captured.
    pub fn num_cores(&self) -> usize {
        self.slots.len()
    }
}

impl Board {
    /// Captures the board's complete simulation state as a value.
    ///
    /// Tasks are deep-copied via [`Task::snapshot_box`], so the snapshot
    /// is independent of the live board: stepping the board afterwards
    /// does not disturb it. Probes and the trace shim are observers, not
    /// state, and are not captured.
    pub fn snapshot(&self) -> BoardSnapshot {
        BoardSnapshot {
            slots: self
                .slots
                .iter()
                .map(|s| SlotSnapshot {
                    enabled: s.enabled,
                    task: s.task.as_deref().map(Task::snapshot_box),
                    finish_time: s.finish_time,
                })
                .collect(),
            counters: self.counters.clone(),
            freq_indices: self.freq_indices.clone(),
            cluster_of: self.cluster_of.clone(),
            now: self.now,
            energy: self.energy,
            power_track: self.power_track.clone(),
            last_power: self.last_power,
            switch_count: self.switch_count,
            pending_stall: self.pending_stall,
            energy_breakdown: self.energy_breakdown,
            thermal: self.thermal.clone(),
            seed: self.seed,
        }
    }

    /// Overwrites this board's simulation state with a snapshot's.
    ///
    /// The board keeps its own configuration, probes, and trace shim;
    /// only simulation state is replaced. After a successful restore the
    /// board evolves bit-identically to the board the snapshot was taken
    /// from (under the same subsequent inputs).
    ///
    /// # Errors
    ///
    /// [`BoardError::SnapshotMismatch`] when the snapshot's core count
    /// or cluster count does not match this board, a DVFS index does not
    /// fit the corresponding cluster's table, or a core binding
    /// references a cluster this board does not have. On error the board
    /// is left unchanged.
    pub fn restore(&mut self, snapshot: &BoardSnapshot) -> Result<(), BoardError> {
        let structurally_compatible = snapshot.slots.len() == self.config.num_cores
            && snapshot.freq_indices.len() == self.config.clusters.len()
            && snapshot
                .freq_indices
                .iter()
                .zip(&self.config.clusters)
                .all(|(&i, cluster)| i < cluster.dvfs.len())
            && snapshot.cluster_of.len() == self.config.num_cores
            && snapshot
                .cluster_of
                .iter()
                .all(|&c| c < self.config.clusters.len());
        if !structurally_compatible {
            return Err(BoardError::SnapshotMismatch);
        }
        for (slot, snap) in self.slots.iter_mut().zip(snapshot.slots.iter()) {
            slot.enabled = snap.enabled;
            slot.task = snap.task.as_deref().map(Task::snapshot_box);
            slot.finish_time = snap.finish_time;
        }
        self.counters = snapshot.counters.clone();
        self.freq_indices.clone_from(&snapshot.freq_indices);
        self.cluster_of.clone_from(&snapshot.cluster_of);
        self.now = snapshot.now;
        self.energy = snapshot.energy;
        self.power_track = snapshot.power_track.clone();
        self.last_power = snapshot.last_power;
        self.switch_count = snapshot.switch_count;
        self.pending_stall = snapshot.pending_stall;
        self.energy_breakdown = snapshot.energy_breakdown;
        self.thermal = snapshot.thermal.clone();
        self.seed = snapshot.seed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::Frequency;
    use crate::profile::{ClusterId, SocProfile};
    use crate::task::{LoopTask, PhaseProfile, PhasedTask};

    fn nexus5() -> crate::board::BoardConfig {
        SocProfile::msm8974().board_config()
    }

    fn loaded_board() -> Board {
        let mut b = Board::new(nexus5(), 11);
        b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
        b.assign(
            0,
            Box::new(PhasedTask::new(
                "main",
                vec![(2.0e9, PhaseProfile::compute_bound())],
            )),
        )
        .expect("free");
        b.assign(
            2,
            Box::new(LoopTask::new("hog", PhaseProfile::streaming(40.0))),
        )
        .expect("free");
        b.step(SimDuration::from_millis(250));
        b
    }

    #[test]
    fn snapshot_is_independent_of_the_live_board() {
        let mut b = loaded_board();
        let snap = b.snapshot();
        let instructions_at_snap = snap.counters.core(0).instructions;
        b.step(SimDuration::from_millis(100));
        // The board moved on; the snapshot did not.
        assert!(b.counters(0).instructions > instructions_at_snap);
        assert_eq!(snap.counters.core(0).instructions, instructions_at_snap);
        assert_eq!(snap.time(), SimTime::from_millis(250));
        assert_eq!(snap.seed(), 11);
        assert_eq!(snap.num_cores(), 4);
    }

    #[test]
    fn restore_then_step_matches_the_original_bitwise() {
        let mut original = loaded_board();
        let snap = original.snapshot();

        let mut fork = Board::new(nexus5(), 0);
        fork.restore(&snap).expect("fits");

        let horizon = SimDuration::from_millis(400);
        original.step(horizon);
        fork.step(horizon);

        assert_eq!(original.time(), fork.time());
        assert_eq!(original.counter_set(), fork.counter_set());
        assert_eq!(original.energy(), fork.energy());
        assert_eq!(original.energy_breakdown(), fork.energy_breakdown());
        assert_eq!(original.temperature(), fork.temperature());
        assert_eq!(original.mean_power(), fork.mean_power());
        assert_eq!(original.switch_count(), fork.switch_count());
        assert_eq!(original.finish_time(0), fork.finish_time(0));
    }

    #[test]
    fn forks_can_diverge_by_frequency() {
        let b = loaded_board();
        let snap = b.snapshot();

        let run = |mhz: f64| {
            let mut fork = Board::new(nexus5(), 0);
            fork.restore(&snap).expect("fits");
            fork.set_frequency(Frequency::from_mhz(mhz)).expect("ok");
            while !fork.task_finished(0) {
                fork.step(SimDuration::from_millis(20));
            }
            fork.finish_time(0).expect("finished").as_secs_f64()
        };
        let slow = run(729.6);
        let fast = run(2265.6);
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn restore_rejects_structural_mismatch_and_leaves_board_untouched() {
        let b = loaded_board();
        let mut snap = b.snapshot();
        snap.slots.pop();

        let mut target = Board::new(nexus5(), 5);
        target.step(SimDuration::from_millis(3));
        let before = target.time();
        assert_eq!(target.restore(&snap), Err(BoardError::SnapshotMismatch));
        assert_eq!(target.time(), before);
        assert_eq!(target.seed(), 5);
    }

    #[test]
    fn heterogeneous_state_round_trips_and_cross_profile_restore_fails() {
        let mut b = Board::new(SocProfile::biglittle_a15a7().board_config(), 3);
        b.set_cluster_frequency(ClusterId::new(1), Frequency::from_mhz(1000.0))
            .expect("A7 entry");
        b.migrate(2, ClusterId::new(1)).expect("valid");
        let snap = b.snapshot();

        let mut fork = Board::new(SocProfile::biglittle_a15a7().board_config(), 0);
        fork.restore(&snap).expect("fits");
        assert_eq!(fork.cluster_of(2), ClusterId::new(1));
        assert_eq!(
            fork.cluster_frequency(ClusterId::new(1)),
            Frequency::from_mhz(1000.0)
        );

        // A homogeneous board cannot absorb a two-cluster snapshot.
        let mut other = Board::new(nexus5(), 0);
        assert_eq!(other.restore(&snap), Err(BoardError::SnapshotMismatch));
    }

    #[test]
    fn snapshot_leaves_probes_attached() {
        use dora_sim_core::probe::ProbeRing;

        let mut b = loaded_board();
        let ring = ProbeRing::shared(64);
        b.attach_probe(ring.clone());
        let snap = b.snapshot();
        b.restore(&snap).expect("fits");
        assert!(b.probes_active());
        b.step(SimDuration::from_millis(2));
        assert!(!ring.borrow().is_empty());
    }

    #[test]
    fn snapshots_are_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<BoardSnapshot>();
    }
}
