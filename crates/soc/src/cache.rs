//! Shared last-level cache contention model.
//!
//! The Nexus 5's four Krait cores share a 2 MB L2 (Table II). When a
//! memory-hungry co-runner executes next to the browser, it steals L2
//! occupancy, turning browser hits into misses — this is the "interference"
//! whose effect on load time and energy the whole paper quantifies
//! (Section II-B).
//!
//! The model is an occupancy/partition approximation in the spirit of
//! analytical shared-cache models: each task's steady-state occupancy is
//! proportional to its access rate (the rate at which it can re-install
//! lines), capped by its working set, with unclaimed capacity redistributed.
//! A task's hit ratio then follows a concave function of how much of its
//! working set fits.

/// A task's demand on the shared cache for one quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheDemand {
    /// L2 accesses per second the task issues.
    pub access_rate: f64,
    /// Bytes of cache the task could profitably use.
    pub working_set: f64,
    /// Fraction of accesses that are reusable (can hit if resident).
    pub reuse_fraction: f64,
}

/// The cache model's verdict for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheShare {
    /// Bytes of L2 occupancy the task holds at steady state.
    pub allocated_bytes: f64,
    /// Fraction of the task's L2 accesses that miss.
    pub miss_ratio: f64,
}

/// Reusable buffers for [`SharedCache::apportion_into`], so the
/// per-quantum contention fixed point allocates nothing at steady state.
#[derive(Debug, Clone, Default)]
pub struct ApportionScratch {
    alloc: Vec<f64>,
    satisfied: Vec<bool>,
}

/// The shared L2 cache.
///
/// # Example
///
/// ```
/// use dora_soc::cache::{CacheDemand, SharedCache};
///
/// let l2 = SharedCache::new(2.0 * 1024.0 * 1024.0);
/// let browser = CacheDemand {
///     access_rate: 2.0e7,
///     working_set: 1.5 * 1024.0 * 1024.0,
///     reuse_fraction: 0.8,
/// };
/// // Alone, the browser's working set fits: misses are only the
/// // non-reusable fraction.
/// let alone = l2.apportion(&[browser]);
/// assert!(alone[0].miss_ratio < 0.25);
///
/// // A streaming co-runner steals occupancy and the miss ratio rises.
/// let hog = CacheDemand {
///     access_rate: 8.0e7,
///     working_set: 8.0 * 1024.0 * 1024.0,
///     reuse_fraction: 0.1,
/// };
/// let shared = l2.apportion(&[browser, hog]);
/// assert!(shared[0].miss_ratio > alone[0].miss_ratio);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedCache {
    capacity_bytes: f64,
}

impl SharedCache {
    /// Creates a shared cache of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is not positive and finite.
    pub fn new(capacity_bytes: f64) -> Self {
        assert!(
            capacity_bytes.is_finite() && capacity_bytes > 0.0,
            "bad cache capacity {capacity_bytes}"
        );
        SharedCache { capacity_bytes }
    }

    /// The cache capacity in bytes.
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_bytes
    }

    /// Computes each task's occupancy and miss ratio under contention.
    ///
    /// Tasks with zero access rate receive no occupancy and a miss ratio of
    /// 1.0 (vacuously — they issue no accesses).
    pub fn apportion(&self, demands: &[CacheDemand]) -> Vec<CacheShare> {
        // alloc: convenience wrapper; hot callers hold their own buffers
        // and go through `apportion_into` instead.
        let mut shares = Vec::new();
        let mut scratch = ApportionScratch::default();
        self.apportion_into(demands, &mut shares, &mut scratch);
        shares
    }

    /// [`SharedCache::apportion`] into caller-owned buffers: `shares` is
    /// cleared and refilled, `scratch` is reused across calls. Identical
    /// arithmetic to `apportion` — only the storage differs — so results
    /// are bit-for-bit the same.
    pub fn apportion_into(
        &self,
        demands: &[CacheDemand],
        shares: &mut Vec<CacheShare>,
        scratch: &mut ApportionScratch,
    ) {
        shares.clear();
        let n = demands.len();
        if n == 0 {
            return;
        }
        for d in demands {
            debug_assert!(d.access_rate >= 0.0 && d.working_set >= 0.0);
            debug_assert!((0.0..=1.0).contains(&d.reuse_fraction));
        }

        // Water-filling: weight = access rate; each round, distribute the
        // remaining capacity among unsatisfied tasks proportionally to
        // weight, capping at the working set, until stable.
        let alloc = &mut scratch.alloc;
        let satisfied = &mut scratch.satisfied;
        alloc.clear();
        alloc.resize(n, 0.0);
        satisfied.clear();
        satisfied.resize(n, false);
        let mut remaining = self.capacity_bytes;
        for _ in 0..n {
            let weight_sum: f64 = demands
                .iter()
                .zip(satisfied.iter())
                .filter(|(_, &s)| !s)
                .map(|(d, _)| d.access_rate)
                .sum();
            if weight_sum <= 0.0 || remaining <= 0.0 {
                break;
            }
            let mut progressed = false;
            for i in 0..n {
                if satisfied[i] {
                    continue;
                }
                let fair = remaining * demands[i].access_rate / weight_sum;
                let want = demands[i].working_set - alloc[i];
                if want <= fair {
                    alloc[i] += want.max(0.0);
                    satisfied[i] = true;
                    progressed = true;
                }
            }
            if !progressed {
                // Nobody is capped: give everyone their fair share and stop.
                for i in 0..n {
                    if !satisfied[i] {
                        alloc[i] += remaining * demands[i].access_rate / weight_sum;
                        satisfied[i] = true;
                    }
                }
            }
            remaining = self.capacity_bytes - alloc.iter().sum::<f64>();
        }

        for (d, &a) in demands.iter().zip(alloc.iter()) {
            shares.push(CacheShare {
                allocated_bytes: a,
                miss_ratio: Self::miss_ratio(d, a),
            });
        }
    }

    /// Hit/miss curve: with fraction `x = alloc / working_set` of the
    /// working set resident, the reusable traffic hits with probability
    /// `sqrt(x)` (a standard concave utility shape — the hottest lines fit
    /// first). Non-reusable traffic always misses.
    fn miss_ratio(d: &CacheDemand, allocated: f64) -> f64 {
        if d.access_rate <= 0.0 {
            return 1.0;
        }
        if d.working_set <= 0.0 {
            // No working set: everything reusable trivially fits.
            return 1.0 - d.reuse_fraction;
        }
        let coverage = (allocated / d.working_set).clamp(0.0, 1.0);
        (1.0 - d.reuse_fraction * coverage.sqrt()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    fn demand(rate: f64, ws_mib: f64, reuse: f64) -> CacheDemand {
        CacheDemand {
            access_rate: rate,
            working_set: ws_mib * MIB,
            reuse_fraction: reuse,
        }
    }

    #[test]
    fn solo_task_fitting_working_set_gets_floor_miss_ratio() {
        let l2 = SharedCache::new(2.0 * MIB);
        let shares = l2.apportion(&[demand(1e7, 1.0, 0.9)]);
        assert!((shares[0].allocated_bytes - MIB).abs() < 1.0);
        assert!((shares[0].miss_ratio - 0.1).abs() < 1e-9);
    }

    #[test]
    fn solo_task_larger_than_cache_is_capped() {
        let l2 = SharedCache::new(2.0 * MIB);
        let shares = l2.apportion(&[demand(1e7, 8.0, 0.9)]);
        assert!((shares[0].allocated_bytes - 2.0 * MIB).abs() < 1.0);
        // coverage = 1/4 -> hit = 0.9*0.5 -> miss = 0.55
        assert!((shares[0].miss_ratio - 0.55).abs() < 1e-9);
    }

    #[test]
    fn total_allocation_never_exceeds_capacity() {
        let l2 = SharedCache::new(2.0 * MIB);
        let demands = [
            demand(5e7, 4.0, 0.5),
            demand(2e7, 3.0, 0.8),
            demand(9e7, 6.0, 0.2),
        ];
        let shares = l2.apportion(&demands);
        let total: f64 = shares.iter().map(|s| s.allocated_bytes).sum();
        assert!(total <= 2.0 * MIB + 1.0, "total {total}");
    }

    #[test]
    fn aggressive_corunner_raises_victim_miss_ratio() {
        let l2 = SharedCache::new(2.0 * MIB);
        let victim = demand(2e7, 1.5, 0.85);
        let alone = l2.apportion(&[victim])[0].miss_ratio;
        for hog_rate in [2e7, 6e7, 1.2e8] {
            let shared = l2.apportion(&[victim, demand(hog_rate, 8.0, 0.1)]);
            assert!(
                shared[0].miss_ratio > alone,
                "hog at {hog_rate} should hurt: {} vs {}",
                shared[0].miss_ratio,
                alone
            );
        }
    }

    #[test]
    fn interference_is_monotone_in_corunner_rate() {
        let l2 = SharedCache::new(2.0 * MIB);
        let victim = demand(2e7, 1.5, 0.85);
        let mut last = 0.0;
        for hog_rate in [1e7, 3e7, 6e7, 1.2e8] {
            let m = l2.apportion(&[victim, demand(hog_rate, 8.0, 0.1)])[0].miss_ratio;
            assert!(m >= last, "miss ratio should not decrease: {m} < {last}");
            last = m;
        }
    }

    #[test]
    fn small_corunner_leaves_fitting_victim_alone() {
        // Both working sets fit together: no interference.
        let l2 = SharedCache::new(2.0 * MIB);
        let victim = demand(2e7, 0.5, 0.85);
        let buddy = demand(2e7, 0.5, 0.85);
        let shares = l2.apportion(&[victim, buddy]);
        assert!((shares[0].miss_ratio - 0.15).abs() < 1e-9);
        assert!((shares[1].miss_ratio - 0.15).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_task_gets_nothing() {
        let l2 = SharedCache::new(2.0 * MIB);
        let shares = l2.apportion(&[demand(0.0, 4.0, 0.9), demand(1e7, 1.0, 0.9)]);
        assert_eq!(shares[0].allocated_bytes, 0.0);
        assert_eq!(shares[0].miss_ratio, 1.0);
        assert!((shares[1].allocated_bytes - MIB).abs() < 1.0);
    }

    #[test]
    fn empty_demand_list() {
        let l2 = SharedCache::new(2.0 * MIB);
        assert!(l2.apportion(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "bad cache capacity")]
    fn rejects_zero_capacity() {
        let _ = SharedCache::new(0.0);
    }

    #[test]
    fn reused_scratch_buffers_match_fresh_apportion_bitwise() {
        let l2 = SharedCache::new(2.0 * MIB);
        let mut shares = Vec::new();
        let mut scratch = ApportionScratch::default();
        let sets: [&[CacheDemand]; 4] = [
            &[demand(2e7, 1.5, 0.85), demand(6e7, 8.0, 0.1)],
            &[demand(1e7, 1.0, 0.9)],
            &[
                demand(5e7, 4.0, 0.5),
                demand(2e7, 3.0, 0.8),
                demand(9e7, 6.0, 0.2),
                demand(0.0, 4.0, 0.9),
            ],
            &[],
        ];
        for demands in sets {
            l2.apportion_into(demands, &mut shares, &mut scratch);
            assert_eq!(shares, l2.apportion(demands));
        }
    }
}
