//! DVFS operating points and the core→memory-bus frequency mapping.
//!
//! The MSM8974 chipset in the paper's Nexus 5 exposes 14 frequency settings
//! between 300 MHz and 2265.6 MHz (Section IV-A), and on a typical SoC "a
//! set of core frequencies map to a particular memory bus frequency"
//! (Section III-A) — which is why the paper trains *piecewise* models, one
//! per bus tier. This module carries both facts.

use std::fmt;

/// A core or bus frequency.
///
/// Stored internally in kilohertz as an integer so that frequencies are
/// `Eq`/`Ord`/`Hash` and can be used as model keys without floating-point
/// comparison hazards.
///
/// # Example
///
/// ```
/// use dora_soc::Frequency;
///
/// let f = Frequency::from_mhz(1497.6);
/// assert_eq!(f.as_khz(), 1_497_600);
/// assert!((f.as_ghz() - 1.4976).abs() < 1e-9);
/// assert_eq!(f.to_string(), "1.498GHz");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Frequency(u64);

impl Frequency {
    /// Constructs from kilohertz.
    pub const fn from_khz(khz: u64) -> Self {
        Frequency(khz)
    }

    /// Constructs from megahertz, rounding to the nearest kilohertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is negative or non-finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz >= 0.0, "bad frequency {mhz} MHz");
        Frequency((mhz * 1000.0).round() as u64)
    }

    /// The value in kilohertz.
    pub const fn as_khz(self) -> u64 {
        self.0
    }

    /// The value in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in hertz.
    pub fn as_hz(self) -> f64 {
        self.0 as f64 * 1e3
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}GHz", self.as_ghz())
        } else {
            write!(f, "{:.1}MHz", self.as_mhz())
        }
    }
}

/// The memory-bus tier a core frequency maps to.
///
/// Mirrors the bandwidth-level voting of the MSM8974: low core clocks run
/// the DDR slowly to save power; high clocks unlock full LPDDR3 bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BusTier {
    /// DDR at a power-saving clock; lowest bandwidth, highest base latency.
    Low,
    /// Intermediate DDR clock.
    Mid,
    /// Full LPDDR3 clock; highest bandwidth, lowest base latency.
    High,
}

impl BusTier {
    /// All tiers, low to high.
    pub const ALL: [BusTier; 3] = [BusTier::Low, BusTier::Mid, BusTier::High];

    /// The effective memory-bus frequency of this tier.
    pub fn bus_frequency(self) -> Frequency {
        match self {
            BusTier::Low => Frequency::from_mhz(200.0),
            BusTier::Mid => Frequency::from_mhz(460.8),
            BusTier::High => Frequency::from_mhz(800.0),
        }
    }

    /// A small index (0, 1, 2) for array lookup.
    pub fn index(self) -> usize {
        match self {
            BusTier::Low => 0,
            BusTier::Mid => 1,
            BusTier::High => 2,
        }
    }
}

impl fmt::Display for BusTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BusTier::Low => "bus-low",
            BusTier::Mid => "bus-mid",
            BusTier::High => "bus-high",
        };
        f.write_str(name)
    }
}

/// An operating performance point: a core frequency and its supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Opp {
    /// Core clock frequency.
    pub frequency: Frequency,
    /// Supply voltage in volts at this frequency.
    pub voltage: f64,
}

/// The MSM8974 operating points as integer `(kHz, millivolt)` pairs.
///
/// Kept as a `const` so sortedness and duplicate-freedom are proven at
/// compile time by the `const` assertion below — a corrupted table edit
/// fails `cargo build`, not a campaign three layers up. (`xtask lint`
/// additionally verifies this guard stays in place.)
///
/// paper: Section II — Nexus 5 (Snapdragon 800 / MSM8974) with 14 OPPs
/// from 300 MHz to 2.2656 GHz; voltages follow the msm8974 regulator
/// tables from the platform's ACPU clock driver.
pub const MSM8974_KHZ_MV: [(u64, u32); 14] = [
    (300_000, 800),
    (422_400, 810),
    (576_000, 825),
    (729_600, 840),
    (806_400, 850),
    (883_200, 860),
    (960_000, 875),
    (1_190_400, 900),
    (1_267_200, 910),
    (1_497_600, 945),
    (1_728_000, 974),
    (1_958_400, 1_030),
    (2_112_000, 1_065),
    (2_265_600, 1_100),
];

/// Compile-time check that a `(kHz, mV)` table is strictly ascending in
/// frequency (which also rules out duplicates) with positive voltages.
/// Shared with the profile registry, whose per-cluster tables carry the
/// same guard.
pub(crate) const fn khz_mv_table_is_valid(table: &[(u64, u32)]) -> bool {
    if table.is_empty() {
        return false;
    }
    let mut i = 0;
    while i < table.len() {
        if table[i].1 == 0 {
            return false;
        }
        if i > 0 && table[i - 1].0 >= table[i].0 {
            return false;
        }
        i += 1;
    }
    true
}

const _: () = assert!(
    khz_mv_table_is_valid(&MSM8974_KHZ_MV),
    "MSM8974 DVFS table must be strictly ascending with positive voltages"
);

/// The table of available operating points, sorted ascending by frequency.
///
/// # Example
///
/// ```
/// use dora_soc::{Frequency, SocProfile};
///
/// let table = SocProfile::msm8974().dvfs();
/// assert_eq!(table.len(), 14);
/// assert_eq!(table.min_frequency(), Frequency::from_mhz(300.0));
/// assert_eq!(table.max_frequency(), Frequency::from_mhz(2265.6));
/// // The paper's plots use an eight-frequency ladder from 0.7 to 2.2 GHz.
/// assert_eq!(table.paper_ladder().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    opps: Vec<Opp>,
}

impl DvfsTable {
    /// Builds a table from `(MHz, volts)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, unsorted, contains duplicate
    /// frequencies, or has non-positive voltages.
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty(), "a DVFS table needs at least one OPP");
        let opps: Vec<Opp> = points
            .iter()
            .map(|&(mhz, v)| {
                assert!(v > 0.0, "non-positive voltage {v} V at {mhz} MHz");
                Opp {
                    frequency: Frequency::from_mhz(mhz),
                    voltage: v,
                }
            })
            .collect();
        for pair in opps.windows(2) {
            assert!(
                pair[0].frequency < pair[1].frequency,
                "DVFS table must be strictly ascending: {} then {}",
                pair[0].frequency,
                pair[1].frequency
            );
        }
        DvfsTable { opps }
    }

    /// Builds a table from an integer `(kHz, mV)` constant table (the
    /// form the profile registry's cited OPP tables take).
    pub(crate) fn from_khz_mv(table: &[(u64, u32)]) -> Self {
        let points: Vec<(f64, f64)> = table
            .iter()
            .map(|&(khz, mv)| (khz as f64 / 1000.0, mv as f64 / 1000.0))
            .collect();
        DvfsTable::new(&points)
    }

    /// The 14-entry MSM8974 Snapdragon 800 table used throughout the
    /// reproduction (Table II: "14 different frequency settings available,
    /// ranging from 300 MHz to 2265 MHz"). Voltages follow the published
    /// Krait voltage-ladder shape: ~0.80 V at the bottom, ~1.10 V at the top
    /// with a super-linear tail.
    ///
    /// Built from [`MSM8974_KHZ_MV`], whose ordering is checked at
    /// compile time.
    #[deprecated(
        since = "0.11.0",
        note = "use the profile registry: `SocProfile::msm8974().dvfs()`"
    )]
    pub fn msm8974() -> Self {
        DvfsTable::from_khz_mv(&MSM8974_KHZ_MV)
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.opps.is_empty()
    }

    /// The operating points in ascending frequency order.
    pub fn opps(&self) -> &[Opp] {
        &self.opps
    }

    /// All frequencies in ascending order.
    pub fn frequencies(&self) -> impl Iterator<Item = Frequency> + '_ {
        self.opps.iter().map(|o| o.frequency)
    }

    /// The lowest frequency.
    pub fn min_frequency(&self) -> Frequency {
        self.opps[0].frequency
    }

    /// The highest frequency.
    pub fn max_frequency(&self) -> Frequency {
        self.opps[self.opps.len() - 1].frequency
    }

    /// The index of an exact frequency, if present.
    pub fn index_of(&self, f: Frequency) -> Option<usize> {
        self.opps.iter().position(|o| o.frequency == f)
    }

    /// The operating point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn opp(&self, index: usize) -> Opp {
        self.opps[index]
    }

    /// The supply voltage at an exact table frequency, if present.
    pub fn voltage_of(&self, f: Frequency) -> Option<f64> {
        self.index_of(f).map(|i| self.opps[i].voltage)
    }

    /// The operating point whose frequency is closest to `target` (ties
    /// resolve downward). The total alternative to
    /// `voltage_of(nearest(f)).unwrap()`: every lookup that only needs the
    /// nearest entry gets its voltage without an unwrap.
    pub fn nearest_opp(&self, target: Frequency) -> Opp {
        let mut best = self.opps[0];
        let mut best_d = best.frequency.as_khz().abs_diff(target.as_khz());
        for &opp in &self.opps[1..] {
            let d = opp.frequency.as_khz().abs_diff(target.as_khz());
            // Strict improvement only: on a tie the earlier (lower)
            // frequency wins because the table ascends.
            if d < best_d {
                best = opp;
                best_d = d;
            }
        }
        best
    }

    /// The table frequency closest to `target` (ties resolve downward).
    pub fn nearest(&self, target: Frequency) -> Frequency {
        self.nearest_opp(target).frequency
    }

    /// The lowest table frequency `>= target`, or the maximum if none.
    pub fn ceil(&self, target: Frequency) -> Frequency {
        self.opps
            .iter()
            .map(|o| o.frequency)
            .find(|&f| f >= target)
            .unwrap_or_else(|| self.max_frequency())
    }

    /// One step above `f` in the table (saturating at the top). `None` when
    /// `f` is not a table frequency.
    pub fn step_up(&self, f: Frequency) -> Option<Frequency> {
        let i = self.index_of(f)?;
        Some(self.opps[(i + 1).min(self.opps.len() - 1)].frequency)
    }

    /// One step below `f` in the table (saturating at the bottom). `None`
    /// when `f` is not a table frequency.
    pub fn step_down(&self, f: Frequency) -> Option<Frequency> {
        let i = self.index_of(f)?;
        Some(self.opps[i.saturating_sub(1)].frequency)
    }

    /// The memory-bus tier a core frequency maps to (Section III-A's
    /// piecewise core→bus mapping): ≤ 729.6 MHz votes the low DDR clock,
    /// ≤ 1267.2 MHz the intermediate one, and anything above runs the bus
    /// at full speed.
    pub fn bus_tier(&self, f: Frequency) -> BusTier {
        if f <= Frequency::from_mhz(729.6) {
            BusTier::Low
        } else if f <= Frequency::from_mhz(1267.2) {
            BusTier::Mid
        } else {
            BusTier::High
        }
    }

    /// The eight-frequency ladder the paper's figures sweep
    /// (0.7 … 2.2 GHz): 729.6, 806.4, 883.2, 1190.4, 1497.6, 1728, 1958.4
    /// and 2265.6 MHz.
    pub fn paper_ladder(&self) -> Vec<Frequency> {
        [729.6, 806.4, 883.2, 1190.4, 1497.6, 1728.0, 1958.4, 2265.6]
            .iter()
            .map(|&mhz| self.nearest(Frequency::from_mhz(mhz)))
            .collect()
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        DvfsTable::from_khz_mv(&MSM8974_KHZ_MV)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msm8974_shape() {
        let t = DvfsTable::default();
        assert_eq!(t.len(), 14);
        assert_eq!(t.min_frequency().as_mhz(), 300.0);
        assert!((t.max_frequency().as_mhz() - 2265.6).abs() < 1e-9);
        // Voltage must be non-decreasing with frequency.
        for pair in t.opps().windows(2) {
            assert!(pair[0].voltage <= pair[1].voltage);
        }
    }

    #[test]
    fn index_and_voltage_lookup() {
        let t = DvfsTable::default();
        let f = Frequency::from_mhz(1497.6);
        let i = t.index_of(f).expect("1497.6 in table");
        assert_eq!(t.opp(i).frequency, f);
        assert_eq!(t.voltage_of(f), Some(0.945));
        assert_eq!(t.voltage_of(Frequency::from_mhz(1000.0)), None);
    }

    #[test]
    fn nearest_snaps_and_breaks_ties_down() {
        let t = DvfsTable::new(&[(100.0, 0.8), (200.0, 0.9)]);
        assert_eq!(t.nearest(Frequency::from_mhz(120.0)).as_mhz(), 100.0);
        assert_eq!(t.nearest(Frequency::from_mhz(180.0)).as_mhz(), 200.0);
        assert_eq!(t.nearest(Frequency::from_mhz(150.0)).as_mhz(), 100.0);
        assert_eq!(t.nearest(Frequency::from_mhz(9999.0)).as_mhz(), 200.0);
    }

    #[test]
    fn ceil_finds_first_at_or_above() {
        let t = DvfsTable::default();
        assert_eq!(
            t.ceil(Frequency::from_mhz(1000.0)),
            Frequency::from_mhz(1190.4)
        );
        assert_eq!(
            t.ceil(Frequency::from_mhz(5000.0)),
            Frequency::from_mhz(2265.6)
        );
        assert_eq!(t.ceil(Frequency::from_mhz(0.0)), Frequency::from_mhz(300.0));
    }

    #[test]
    fn step_up_down_saturate() {
        let t = DvfsTable::default();
        let min = t.min_frequency();
        let max = t.max_frequency();
        assert_eq!(t.step_down(min), Some(min));
        assert_eq!(t.step_up(max), Some(max));
        assert_eq!(
            t.step_up(Frequency::from_mhz(300.0)),
            Some(Frequency::from_mhz(422.4))
        );
        assert_eq!(t.step_up(Frequency::from_mhz(555.0)), None);
    }

    #[test]
    fn bus_tier_piecewise_mapping() {
        let t = DvfsTable::default();
        assert_eq!(t.bus_tier(Frequency::from_mhz(300.0)), BusTier::Low);
        assert_eq!(t.bus_tier(Frequency::from_mhz(729.6)), BusTier::Low);
        assert_eq!(t.bus_tier(Frequency::from_mhz(806.4)), BusTier::Mid);
        assert_eq!(t.bus_tier(Frequency::from_mhz(1267.2)), BusTier::Mid);
        assert_eq!(t.bus_tier(Frequency::from_mhz(1497.6)), BusTier::High);
        assert_eq!(t.bus_tier(Frequency::from_mhz(2265.6)), BusTier::High);
    }

    #[test]
    fn paper_ladder_is_eight_ascending_table_entries() {
        let t = DvfsTable::default();
        let ladder = t.paper_ladder();
        assert_eq!(ladder.len(), 8);
        for pair in ladder.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        for f in &ladder {
            assert!(t.index_of(*f).is_some());
        }
    }

    #[test]
    fn bus_tier_frequencies_ascend() {
        assert!(
            BusTier::Low.bus_frequency() < BusTier::Mid.bus_frequency()
                && BusTier::Mid.bus_frequency() < BusTier::High.bus_frequency()
        );
        assert_eq!(BusTier::Low.index(), 0);
        assert_eq!(BusTier::High.index(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_table_rejected() {
        let _ = DvfsTable::new(&[(200.0, 0.9), (100.0, 0.8)]);
    }

    #[test]
    #[should_panic(expected = "at least one OPP")]
    fn empty_table_rejected() {
        let _ = DvfsTable::new(&[]);
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::from_mhz(300.0).to_string(), "300.0MHz");
        assert_eq!(Frequency::from_mhz(2265.6).to_string(), "2.266GHz");
    }
}
