//! DRAM bandwidth and queuing-delay model.
//!
//! The Nexus 5 carries 2 GB of LPDDR3 shared between the application cores
//! and accelerators (Table II). Two properties of this memory system matter
//! to DORA:
//!
//! 1. The effective DDR clock follows the core frequency piecewise
//!    ([`BusTier`]), so miss latency and bandwidth are functions of the
//!    *core* DVFS setting — this is why the paper includes the memory bus
//!    frequency (X8) as a model input and fits piecewise surfaces.
//! 2. Miss traffic from co-scheduled tasks contends in the controller:
//!    queuing delay grows super-linearly as utilization approaches
//!    saturation, which is how a high-MPKI co-runner slows the browser
//!    even beyond the cache-occupancy effect.
//!
//! The queuing model is the usual single-server approximation:
//! `latency = base · (1 + k · ρ / (1 − ρ))` with utilization `ρ` capped
//! below 1.

use crate::dvfs::BusTier;
use dora_sim_core::units::Seconds;

/// Bytes transferred per L2 miss (one cache line).
pub const LINE_BYTES: f64 = 64.0;

/// Per-tier memory-system parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierParams {
    /// Sustainable bandwidth in bytes per second.
    pub peak_bandwidth: f64,
    /// Unloaded (zero-queue) miss latency.
    pub base_latency: Seconds,
}

/// The LPDDR3 memory system.
///
/// # Example
///
/// ```
/// use dora_soc::dvfs::BusTier;
/// use dora_soc::memory::MemorySystem;
///
/// let mem = MemorySystem::lpddr3();
/// let idle = mem.miss_latency(BusTier::High, 0.0);
/// let busy = mem.miss_latency(BusTier::High, 5.0e9);
/// assert!(busy > idle); // queuing under load
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    tiers: [TierParams; 3],
    /// Queuing-delay gain `k` in `base·(1 + k·ρ/(1−ρ))`.
    queue_gain: f64,
    /// Cap applied to utilization to keep latency finite.
    max_utilization: f64,
}

impl MemorySystem {
    /// The LPDDR3-1600-class configuration used by the Nexus 5 board model.
    ///
    /// Peak bandwidths are effective (not theoretical) figures; base
    /// latencies fall as the DDR clock rises.
    pub fn lpddr3() -> Self {
        MemorySystem {
            tiers: [
                // BusTier::Low — 200 MHz DDR vote.
                TierParams {
                    peak_bandwidth: 2.0e9,
                    base_latency: Seconds::new(150.0e-9),
                },
                // BusTier::Mid — 460.8 MHz.
                TierParams {
                    peak_bandwidth: 4.2e9,
                    base_latency: Seconds::new(110.0e-9),
                },
                // BusTier::High — 800 MHz.
                TierParams {
                    peak_bandwidth: 6.8e9,
                    base_latency: Seconds::new(85.0e-9),
                },
            ],
            queue_gain: 0.55,
            max_utilization: 0.93,
        }
    }

    /// Builds a memory system from explicit tier parameters.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth or latency is non-positive, if
    /// `queue_gain < 0`, or if `max_utilization` is outside `(0, 1)`.
    pub fn new(tiers: [TierParams; 3], queue_gain: f64, max_utilization: f64) -> Self {
        for t in &tiers {
            assert!(t.peak_bandwidth > 0.0, "non-positive bandwidth");
            assert!(t.base_latency > Seconds::ZERO, "non-positive latency");
        }
        assert!(queue_gain >= 0.0, "negative queue gain");
        assert!(
            max_utilization > 0.0 && max_utilization < 1.0,
            "max utilization must be in (0,1)"
        );
        MemorySystem {
            tiers,
            queue_gain,
            max_utilization,
        }
    }

    /// The parameters of a tier.
    pub fn params(&self, tier: BusTier) -> TierParams {
        self.tiers[tier.index()]
    }

    /// DRAM utilization for a demand of `bytes_per_sec`, capped below 1.
    pub fn utilization(&self, tier: BusTier, bytes_per_sec: f64) -> f64 {
        let demand = bytes_per_sec.max(0.0);
        (demand / self.params(tier).peak_bandwidth).min(self.max_utilization)
    }

    /// Effective miss latency under the given aggregate demand.
    /// Monotone non-decreasing in demand.
    pub fn miss_latency(&self, tier: BusTier, bytes_per_sec: f64) -> Seconds {
        let p = self.params(tier);
        let rho = self.utilization(tier, bytes_per_sec);
        p.base_latency * (1.0 + self.queue_gain * rho / (1.0 - rho))
    }

    /// Convenience: converts an L2 miss rate (misses/second) into a DRAM
    /// demand in bytes/second, counting fill plus writeback traffic.
    pub fn demand_from_miss_rate(miss_rate_per_sec: f64, dirty_fraction: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&dirty_fraction));
        miss_rate_per_sec.max(0.0) * LINE_BYTES * (1.0 + dirty_fraction)
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        MemorySystem::lpddr3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_tier_is_faster_and_wider() {
        let mem = MemorySystem::lpddr3();
        let lo = mem.params(BusTier::Low);
        let hi = mem.params(BusTier::High);
        assert!(hi.peak_bandwidth > lo.peak_bandwidth);
        assert!(hi.base_latency < lo.base_latency);
    }

    #[test]
    fn idle_latency_equals_base() {
        let mem = MemorySystem::lpddr3();
        for tier in BusTier::ALL {
            assert_eq!(mem.miss_latency(tier, 0.0), mem.params(tier).base_latency);
        }
    }

    #[test]
    fn latency_is_monotone_in_demand() {
        let mem = MemorySystem::lpddr3();
        let mut last = Seconds::ZERO;
        for demand in [0.0, 1e9, 2e9, 4e9, 6e9, 1e10, 1e12] {
            let lat = mem.miss_latency(BusTier::High, demand);
            assert!(lat >= last, "{lat:?} < {last:?} at demand {demand}");
            last = lat;
        }
    }

    #[test]
    fn latency_stays_finite_past_saturation() {
        let mem = MemorySystem::lpddr3();
        let lat = mem.miss_latency(BusTier::Low, 1e15);
        assert!(lat.value().is_finite());
        // With rho capped at 0.93 and k = 0.55: 150·(1+0.55·0.93/0.07)
        assert!(lat < Seconds::new(150.0e-9 * 10.0));
    }

    #[test]
    fn utilization_caps() {
        let mem = MemorySystem::lpddr3();
        assert_eq!(mem.utilization(BusTier::High, -5.0), 0.0);
        assert!(mem.utilization(BusTier::High, 1e15) < 1.0);
    }

    #[test]
    fn demand_conversion_counts_writebacks() {
        let clean = MemorySystem::demand_from_miss_rate(1e6, 0.0);
        let dirty = MemorySystem::demand_from_miss_rate(1e6, 0.5);
        assert_eq!(clean, 64.0e6);
        assert_eq!(dirty, 96.0e6);
    }

    #[test]
    #[should_panic(expected = "max utilization")]
    fn rejects_bad_max_utilization() {
        let t = TierParams {
            peak_bandwidth: 1.0,
            base_latency: Seconds::new(1.0e-9),
        };
        let _ = MemorySystem::new([t, t, t], 0.5, 1.0);
    }
}
