//! Board configuration, errors, and energy accounting.
//!
//! These types used to live inside `board.rs`; they moved out when the
//! board was split so that the stepping hot path (`board.rs`,
//! `contention.rs`) contains no formatting or allocation — the
//! `probe-purity` xtask pass holds it to that. Everything here is
//! re-exported from [`crate::board`], so existing paths keep working.

use crate::dvfs::{DvfsTable, Frequency};
use crate::memory::MemorySystem;
use crate::power::{PowerBreakdown, PowerParams};
use crate::profile::{ClusterConfig, MigrationCost, SocProfile};
use crate::thermal::ThermalParams;
use dora_sim_core::units::{Celsius, Joules, Seconds};
use dora_sim_core::SimDuration;
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::board::Board`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardError {
    /// The referenced core id does not exist on this board.
    CoreOutOfRange(usize),
    /// The core already has a task assigned.
    CoreOccupied(usize),
    /// The core is powered off.
    CoreDisabled(usize),
    /// The frequency is not an entry of the DVFS table.
    UnknownFrequency(Frequency),
    /// The referenced cluster id does not exist on this board.
    ClusterOutOfRange(usize),
    /// The snapshot was taken from a structurally different board (core
    /// count or DVFS table shape differ) and cannot be restored here.
    SnapshotMismatch,
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::CoreOutOfRange(id) => write!(f, "core {id} out of range"),
            BoardError::CoreOccupied(id) => write!(f, "core {id} already has a task"),
            BoardError::CoreDisabled(id) => write!(f, "core {id} is powered off"),
            BoardError::UnknownFrequency(freq) => {
                write!(f, "frequency {freq} is not in the DVFS table")
            }
            BoardError::ClusterOutOfRange(id) => write!(f, "cluster {id} out of range"),
            BoardError::SnapshotMismatch => {
                write!(f, "snapshot does not fit this board's configuration")
            }
        }
    }
}

impl Error for BoardError {}

/// Static configuration of a board.
#[derive(Debug, Clone)]
pub struct BoardConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Number of physical cores.
    pub num_cores: usize,
    /// Which cores are powered on at construction.
    pub cores_enabled: Vec<bool>,
    /// The primary (cluster 0) DVFS operating-point table, kept as a
    /// direct field because every single-knob consumer reads it. Must
    /// equal `clusters[0].dvfs`; [`BoardConfig::validate`] enforces it.
    pub dvfs: DvfsTable,
    /// The cluster list: per-cluster DVFS tables, timing, and power
    /// coefficients. Homogeneous platforms have exactly one entry.
    pub clusters: Vec<ClusterConfig>,
    /// Initial core→cluster binding, one entry per core. The board's
    /// live binding starts here and moves via `Board::migrate`.
    pub affinity: Vec<usize>,
    /// The cost charged per cluster migration.
    pub migration: MigrationCost,
    /// Shared L2 capacity in bytes.
    pub l2_capacity_bytes: f64,
    /// The DRAM model.
    pub memory: MemorySystem,
    /// The power model parameters.
    pub power: PowerParams,
    /// The thermal node parameters.
    pub thermal: ThermalParams,
    /// Simulation quantum.
    pub quantum: SimDuration,
    /// Core stall incurred by one DVFS transition (Section V-H measures
    /// frequency switching as the dominant overhead, up to 3 % of
    /// execution time when switches are frequent).
    pub dvfs_switch_stall: SimDuration,
    /// Memory-level-parallelism overlap factor: the fraction of each miss
    /// latency that actually stalls retirement.
    pub mem_overlap: f64,
    /// Fraction of evicted lines that are dirty (written back).
    pub dirty_fraction: f64,
}

impl BoardConfig {
    /// The Nexus 5 platform of the paper's Table II: four Krait cores
    /// (fourth switched off, as in Section IV-B), 2 MB shared L2, LPDDR3,
    /// the 14-entry MSM8974 DVFS table, room ambient.
    #[deprecated(
        since = "0.11.0",
        note = "use the profile registry: `SocProfile::msm8974().board_config()`"
    )]
    pub fn nexus5() -> Self {
        SocProfile::msm8974().board_config()
    }

    /// Same platform at the cold ambient of Fig. 10(b).
    #[deprecated(
        since = "0.11.0",
        note = "use `SocProfile::msm8974().board_config().with_ambient(...)` \
                or `ThermalParams::nexus5_cold()`"
    )]
    pub fn nexus5_cold() -> Self {
        BoardConfig {
            thermal: ThermalParams::nexus5_cold(),
            ..SocProfile::msm8974().board_config()
        }
    }

    /// This platform with its thermal node re-anchored at `ambient` —
    /// the typed knob fleet archetypes turn instead of reaching into
    /// [`ThermalParams`] by hand.
    #[must_use]
    pub fn with_ambient(mut self, ambient: Celsius) -> Self {
        self.thermal.ambient = ambient;
        self
    }

    /// Validates all constituent parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("board needs at least one core".into());
        }
        if self.cores_enabled.len() != self.num_cores {
            return Err("cores_enabled length must equal num_cores".into());
        }
        if self.clusters.is_empty() {
            return Err("board needs at least one cluster".into());
        }
        for cluster in &self.clusters {
            cluster.validate()?;
        }
        if self.clusters[0].dvfs != self.dvfs {
            return Err("dvfs must alias the primary cluster's table (clusters[0].dvfs)".into());
        }
        if self.affinity.len() != self.num_cores {
            return Err("affinity length must equal num_cores".into());
        }
        if let Some(&bad) = self.affinity.iter().find(|&&c| c >= self.clusters.len()) {
            return Err(format!(
                "affinity references cluster {bad}, but only {} exist",
                self.clusters.len()
            ));
        }
        self.migration.validate()?;
        if !(self.l2_capacity_bytes.is_finite() && self.l2_capacity_bytes > 0.0) {
            return Err(format!("bad L2 capacity {}", self.l2_capacity_bytes));
        }
        if self.quantum.is_zero() {
            return Err("quantum must be positive".into());
        }
        if !(self.mem_overlap.is_finite() && (0.0..=1.0).contains(&self.mem_overlap)) {
            return Err(format!("mem_overlap {} outside [0,1]", self.mem_overlap));
        }
        if !(self.dirty_fraction.is_finite() && (0.0..=1.0).contains(&self.dirty_fraction)) {
            return Err(format!(
                "dirty_fraction {} outside [0,1]",
                self.dirty_fraction
            ));
        }
        self.power.validate()?;
        self.thermal.validate()?;
        Ok(())
    }
}

/// Cumulative device energy itemized by power-model component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Platform floor (display, rails).
    pub platform: Joules,
    /// Per-core dynamic switching energy.
    pub core_dynamic: Joules,
    /// Uncore/interconnect energy.
    pub uncore: Joules,
    /// DRAM traffic energy.
    pub dram: Joules,
    /// Eq. 5 leakage energy.
    pub leakage: Joules,
}

impl EnergyBreakdown {
    pub(crate) fn accumulate(&mut self, power: &PowerBreakdown, dt: Seconds) {
        self.platform += power.platform * dt;
        self.core_dynamic += power.core_dynamic * dt;
        self.uncore += power.uncore * dt;
        self.dram += power.dram * dt;
        self.leakage += power.leakage * dt;
    }

    /// The sum of all components.
    pub fn total(&self) -> Joules {
        self.platform + self.core_dynamic + self.uncore + self.dram + self.leakage
    }
}
