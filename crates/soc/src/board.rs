//! The assembled smartphone platform.
//!
//! A [`Board`] owns four cores (the paper disables the fourth), the shared
//! L2, the LPDDR3 memory system, a thermal node, and the power model, and
//! advances them together in fixed quanta (1 ms by default). Per quantum it
//! delegates to [`crate::contention::ContentionSolver`] for the small fixed
//! point — instruction rates determine cache pressure, cache pressure
//! determines miss ratios, misses determine DRAM queuing, and queuing feeds
//! back into effective CPI — that makes a co-scheduled memory hog genuinely
//! slow the browser down, the paper's central phenomenon.
//!
//! Observation goes through the typed probe bus
//! ([`Board::attach_probe`]): events are built lazily, so with no probe
//! attached the stepping path performs no allocation and no formatting.
//! The `probe-purity` xtask pass enforces that property on this file.
//! The string [`Board::trace_events`] view survives as a thin shim probe
//! (see `trace_compat`). Boards can also be checkpointed and forked
//! mid-run via [`Board::snapshot`] (see `snapshot`).

use crate::contention::{ContentionParams, ContentionSolver};
use crate::counters::{CoreCounters, CounterSet};
use crate::dvfs::{Frequency, Opp};
use crate::power::{PowerBreakdown, PowerModel};
use crate::profile::ClusterId;
use crate::task::Task;
use crate::thermal::ThermalNode;
use crate::trace_compat::LifecycleTrace;
use dora_sim_core::probe::{Probe, ProbeBus, ProbeEvent, ProbeId};
use dora_sim_core::stats::TimeWeighted;
use dora_sim_core::units::{Celsius, Joules, Seconds, Watts};
use dora_sim_core::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

pub use crate::cache::SharedCache;
pub use crate::config::{BoardConfig, BoardError, EnergyBreakdown};

/// One core's slot on the board.
#[derive(Debug)]
pub(crate) struct CoreSlot {
    pub(crate) enabled: bool,
    pub(crate) task: Option<Box<dyn Task>>,
    pub(crate) finish_time: Option<SimTime>,
}

/// Reusable per-quantum working storage, excluded from snapshots.
#[derive(Debug, Default)]
struct StepScratch {
    /// Indices of enabled cores holding unfinished tasks.
    active: Vec<usize>,
    /// Profiles of those tasks (base CPI pre-scaled by the owning
    /// cluster's `cpi_scale`), parallel to `active`.
    profiles: Vec<crate::task::PhaseProfile>,
    /// Each active task's cluster clock in Hz, parallel to `active`.
    clocks: Vec<f64>,
    /// Per-core utilization handed to the power model.
    core_utils: Vec<f64>,
    /// Per-cluster summed utilization (heterogeneous power path).
    cluster_busy: Vec<f64>,
    /// Per-cluster bound-core count (heterogeneous power path).
    cluster_cores: Vec<usize>,
}

/// The assembled, steppable platform.
///
/// # Example
///
/// ```
/// use dora_soc::board::Board;
/// use dora_soc::task::{PhasedTask, PhaseProfile};
/// use dora_soc::SocProfile;
/// use dora_sim_core::SimDuration;
///
/// let mut board = Board::new(SocProfile::msm8974().board_config(), 1);
/// board.assign(
///     0,
///     Box::new(PhasedTask::new(
///         "job",
///         vec![(5.0e8, PhaseProfile::compute_bound())],
///     )),
/// )?;
/// let fmax = board.config().dvfs.max_frequency();
/// board.set_frequency(fmax)?;
/// while !board.task_finished(0) {
///     board.step(SimDuration::from_millis(10));
/// }
/// let t = board.finish_time(0).expect("finished");
/// assert!(t.as_secs_f64() > 0.1 && t.as_secs_f64() < 1.0);
/// # Ok::<(), dora_soc::BoardError>(())
/// ```
#[derive(Debug)]
pub struct Board {
    pub(crate) config: BoardConfig,
    pub(crate) cache: SharedCache,
    pub(crate) power_model: PowerModel,
    pub(crate) thermal: ThermalNode,
    pub(crate) slots: Vec<CoreSlot>,
    pub(crate) counters: CounterSet,
    /// Current DVFS index of each cluster, indexed by cluster.
    pub(crate) freq_indices: Vec<usize>,
    /// Live core→cluster binding, seeded from `config.affinity`.
    pub(crate) cluster_of: Vec<usize>,
    pub(crate) now: SimTime,
    pub(crate) energy: Joules,
    pub(crate) power_track: TimeWeighted,
    pub(crate) last_power: PowerBreakdown,
    pub(crate) switch_count: u64,
    pub(crate) pending_stall: SimDuration,
    pub(crate) energy_breakdown: EnergyBreakdown,
    pub(crate) seed: u64,
    /// Observers. Not simulation state: excluded from snapshots.
    probes: ProbeBus,
    /// The string-trace shim, when enabled, with its bus handle.
    trace: Option<(ProbeId, Rc<RefCell<LifecycleTrace>>)>,
    /// Fixed-point solver with reusable buffers.
    solver: ContentionSolver,
    /// Per-quantum working storage.
    scratch: StepScratch,
}

impl Board {
    /// Builds a board from a validated configuration. The `seed` pins any
    /// stochastic elements (none in the board itself today; tasks carry
    /// their own seeds) and is recorded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BoardConfig::validate`].
    #[allow(clippy::expect_used)] // constructor contract: documented # Panics
    pub fn new(config: BoardConfig, seed: u64) -> Self {
        config.validate().expect("invalid board configuration");
        let cache = SharedCache::new(config.l2_capacity_bytes);
        let power_model = PowerModel::new(config.power).expect("validated above");
        let thermal = ThermalNode::new(config.thermal);
        let slots = config
            .cores_enabled
            .iter()
            .map(|&enabled| CoreSlot {
                enabled,
                task: None,
                finish_time: None,
            })
            // alloc: one-time construction, not the stepping hot path.
            .collect();
        let counters = CounterSet::new(config.num_cores);
        Board {
            cache,
            power_model,
            thermal,
            slots,
            counters,
            // alloc: one-time construction, not the stepping hot path.
            freq_indices: vec![0; config.clusters.len()],
            // alloc: one-time construction, not the stepping hot path.
            cluster_of: config.affinity.clone(),
            now: SimTime::ZERO,
            energy: Joules::ZERO,
            power_track: TimeWeighted::new(),
            last_power: PowerBreakdown::default(),
            switch_count: 0,
            pending_stall: SimDuration::ZERO,
            energy_breakdown: EnergyBreakdown::default(),
            seed,
            probes: ProbeBus::new(),
            trace: None,
            solver: ContentionSolver::new(),
            scratch: StepScratch::default(),
            config,
        }
    }

    /// Attaches a typed probe to the board's bus; it observes every
    /// subsequent event until detached. Probes are observers, not
    /// simulation state — they never perturb the simulation and are
    /// excluded from [`Board::snapshot`].
    pub fn attach_probe(&mut self, probe: Rc<RefCell<dyn Probe>>) -> ProbeId {
        self.probes.attach(probe)
    }

    /// Detaches a probe attached via [`Board::attach_probe`]. Returns
    /// whether the handle was still attached.
    pub fn detach_probe(&mut self, id: ProbeId) -> bool {
        self.probes.detach(id)
    }

    /// Whether any probe (including the trace shim) is listening.
    pub fn probes_active(&self) -> bool {
        self.probes.is_active()
    }

    /// Emits an externally constructed event onto the board's bus at the
    /// current simulated time. Drivers (e.g. the campaign runner) use
    /// this for events the board itself cannot know about, such as
    /// governor decisions.
    pub fn emit_event(&mut self, event: ProbeEvent) {
        self.probes.emit(self.now, event);
    }

    /// Enables event tracing: DVFS transitions, task assignments and task
    /// completions are recorded into a bounded ring of `capacity` events
    /// (oldest evicted first). Pass 0 to disable again.
    ///
    /// This is a compatibility shim: the ring is an ordinary probe on the
    /// bus that formats lifecycle events into the historical strings.
    /// New code should attach a typed probe instead.
    pub fn enable_trace(&mut self, capacity: usize) {
        if let Some((id, _)) = self.trace.take() {
            self.probes.detach(id);
        }
        if capacity > 0 {
            let shim = LifecycleTrace::shared(capacity);
            let id = self.probes.attach(shim.clone());
            self.trace = Some((id, shim));
        }
    }

    /// The recorded events, oldest first (empty when tracing is off).
    pub fn trace_events(&self) -> Vec<dora_sim_core::trace::TraceEvent> {
        self.trace
            .as_ref()
            .map(|(_, shim)| shim.borrow().events())
            .unwrap_or_default()
    }

    /// The static configuration.
    pub fn config(&self) -> &BoardConfig {
        &self.config
    }

    /// The seed this board was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Current operating point of the primary cluster.
    pub fn opp(&self) -> Opp {
        self.config.dvfs.opp(self.freq_indices[0])
    }

    /// Current core frequency of the primary cluster.
    pub fn frequency(&self) -> Frequency {
        self.opp().frequency
    }

    /// Number of clusters on this board.
    pub fn num_clusters(&self) -> usize {
        self.config.clusters.len()
    }

    /// Current operating point of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_opp(&self, cluster: ClusterId) -> Opp {
        self.config.clusters[cluster.index()]
            .dvfs
            .opp(self.freq_indices[cluster.index()])
    }

    /// Current frequency of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_frequency(&self, cluster: ClusterId) -> Frequency {
        self.cluster_opp(cluster).frequency
    }

    /// The cluster core `core` is currently bound to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cluster_of(&self, core: usize) -> ClusterId {
        ClusterId::new(self.cluster_of[core])
    }

    /// Die temperature.
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    /// Peak die temperature so far.
    pub fn peak_temperature(&self) -> Celsius {
        self.thermal.peak()
    }

    /// Total device energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// The cumulative energy itemized by power-model component.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.energy_breakdown
    }

    /// Time-weighted mean device power so far.
    pub fn mean_power(&self) -> Watts {
        Watts::new(self.power_track.mean())
    }

    /// The itemized power of the most recent quantum.
    pub fn last_power(&self) -> PowerBreakdown {
        self.last_power
    }

    /// Number of DVFS transitions performed.
    pub fn switch_count(&self) -> u64 {
        self.switch_count
    }

    /// The cumulative counters of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn counters(&self, i: usize) -> CoreCounters {
        *self.counters.core(i)
    }

    /// A snapshot of all counters (for governor delta sampling).
    pub fn counter_set(&self) -> &CounterSet {
        &self.counters
    }

    /// Assigns a task to a core.
    ///
    /// # Errors
    ///
    /// [`BoardError::CoreOutOfRange`], [`BoardError::CoreDisabled`], or
    /// [`BoardError::CoreOccupied`].
    pub fn assign(&mut self, core: usize, task: Box<dyn Task>) -> Result<(), BoardError> {
        let slot = self
            .slots
            .get_mut(core)
            .ok_or(BoardError::CoreOutOfRange(core))?;
        if !slot.enabled {
            return Err(BoardError::CoreDisabled(core));
        }
        if slot.task.is_some() {
            return Err(BoardError::CoreOccupied(core));
        }
        slot.task = Some(task);
        slot.finish_time = None;
        let slots = &self.slots;
        self.probes
            .emit_with(self.now, || ProbeEvent::TaskAssigned {
                core,
                name: slots[core]
                    .task
                    .as_deref()
                    .map(|t| t.name())
                    .unwrap_or("")
                    // alloc: lazy — the name is only copied when a probe listens.
                    .to_string(),
            });
        Ok(())
    }

    /// Removes and returns the task on a core, if any.
    ///
    /// # Errors
    ///
    /// [`BoardError::CoreOutOfRange`].
    pub fn clear_core(&mut self, core: usize) -> Result<Option<Box<dyn Task>>, BoardError> {
        let slot = self
            .slots
            .get_mut(core)
            .ok_or(BoardError::CoreOutOfRange(core))?;
        slot.finish_time = None;
        Ok(slot.task.take())
    }

    /// A shared view of the task on a core, if any.
    pub fn task(&self, core: usize) -> Option<&dyn Task> {
        self.slots.get(core)?.task.as_deref()
    }

    /// Whether the task on `core` has completed all its work. `false` when
    /// no task is assigned.
    pub fn task_finished(&self, core: usize) -> bool {
        self.slots
            .get(core)
            .and_then(|s| s.task.as_ref())
            .is_some_and(|t| t.is_finished())
    }

    /// The instant the task on `core` finished, interpolated within its
    /// final quantum. `None` while unfinished or unassigned.
    pub fn finish_time(&self, core: usize) -> Option<SimTime> {
        self.slots.get(core)?.finish_time
    }

    /// Sets the primary (cluster 0) frequency — the historical
    /// single-knob API, exact on homogeneous boards.
    ///
    /// # Errors
    ///
    /// [`BoardError::UnknownFrequency`] if `f` is not a table entry.
    pub fn set_frequency(&mut self, f: Frequency) -> Result<(), BoardError> {
        self.set_cluster_frequency(ClusterId::PRIMARY, f)
    }

    /// Sets one cluster's frequency. A no-op (no stall, no switch
    /// counted) when the target equals the current frequency — mirroring
    /// DORA's "change only when fopt moved" behaviour (Section V-H).
    ///
    /// # Errors
    ///
    /// [`BoardError::ClusterOutOfRange`] for a bad cluster id, or
    /// [`BoardError::UnknownFrequency`] if `f` is not an entry of that
    /// cluster's table.
    pub fn set_cluster_frequency(
        &mut self,
        cluster: ClusterId,
        f: Frequency,
    ) -> Result<(), BoardError> {
        let c = cluster.index();
        let table = &self
            .config
            .clusters
            .get(c)
            .ok_or(BoardError::ClusterOutOfRange(c))?
            .dvfs;
        let index = table.index_of(f).ok_or(BoardError::UnknownFrequency(f))?;
        if index != self.freq_indices[c] {
            let from_khz = table.opp(self.freq_indices[c]).frequency.as_khz();
            self.freq_indices[c] = index;
            self.switch_count += 1;
            self.pending_stall += self.config.dvfs_switch_stall;
            self.probes.emit_with(self.now, || ProbeEvent::DvfsSwitch {
                cluster: c,
                from_khz,
                to_khz: f.as_khz(),
            });
        }
        Ok(())
    }

    /// Rebinds a core to another cluster, paying the configured
    /// [`crate::profile::MigrationCost`]: the latency joins the pending
    /// stall (the quantum-grained model charges it globally, which is
    /// conservative) and the energy is charged to the device
    /// immediately, booked under the core-dynamic component (it is
    /// cache-refill switching activity). A no-op when the core is
    /// already on `to`.
    ///
    /// # Errors
    ///
    /// [`BoardError::CoreOutOfRange`] or [`BoardError::ClusterOutOfRange`].
    pub fn migrate(&mut self, core: usize, to: ClusterId) -> Result<(), BoardError> {
        if core >= self.cluster_of.len() {
            return Err(BoardError::CoreOutOfRange(core));
        }
        let to_cluster = to.index();
        if to_cluster >= self.config.clusters.len() {
            return Err(BoardError::ClusterOutOfRange(to_cluster));
        }
        let from_cluster = self.cluster_of[core];
        if from_cluster != to_cluster {
            self.cluster_of[core] = to_cluster;
            self.pending_stall += self.config.migration.latency;
            self.energy += self.config.migration.energy;
            self.energy_breakdown.core_dynamic += self.config.migration.energy;
            self.probes
                .emit_with(self.now, || ProbeEvent::TaskMigrated {
                    core,
                    from_cluster,
                    to_cluster,
                });
        }
        Ok(())
    }

    /// Advances the board by `duration`, in quanta of the configured size.
    pub fn step(&mut self, duration: SimDuration) {
        let mut left = duration;
        while !left.is_zero() {
            let dt = if left < self.config.quantum {
                left
            } else {
                self.config.quantum
            };
            self.step_quantum(dt);
            left = left.saturating_sub(dt);
        }
    }

    /// One quantum of execution.
    fn step_quantum(&mut self, dt: SimDuration) {
        let dt_s = dt.as_secs_f64();
        // Consume pending DVFS stall: it eats into the available run time
        // of this quantum for all cores.
        let stall = if self.pending_stall < dt {
            self.pending_stall
        } else {
            dt
        };
        self.pending_stall = self.pending_stall.saturating_sub(stall);
        let avail_s = (dt.saturating_sub(stall)).as_secs_f64();

        let opp = self.opp();
        let f_hz = opp.frequency.as_hz();
        // The memory bus serves every cluster: its tier is voted by the
        // fastest cluster clock (identical to the historical single-knob
        // mapping when there is one cluster).
        let mut bus_vote = opp.frequency;
        for c in 1..self.config.clusters.len() {
            let fc = self.config.clusters[c]
                .dvfs
                .opp(self.freq_indices[c])
                .frequency;
            if fc > bus_vote {
                bus_vote = fc;
            }
        }
        let tier = self.config.dvfs.bus_tier(bus_vote);

        // Collect active (enabled, unfinished) tasks. A task with a
        // profile is by definition unfinished. Each runs at its own
        // cluster's clock with its base CPI scaled by the cluster's
        // relative timing (×1.0 exactly on the reference cluster).
        self.scratch.active.clear();
        self.scratch.profiles.clear();
        self.scratch.clocks.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if !slot.enabled {
                continue;
            }
            if let Some(mut profile) = slot.task.as_deref().and_then(|t| t.profile()) {
                let cluster = &self.config.clusters[self.cluster_of[i]];
                profile.base_cpi *= cluster.cpi_scale;
                self.scratch.active.push(i);
                self.scratch.profiles.push(profile);
                self.scratch.clocks.push(
                    cluster
                        .dvfs
                        .opp(self.freq_indices[self.cluster_of[i]])
                        .frequency
                        .as_hz(),
                );
            }
        }

        // Fixed point: instruction rates <-> cache shares <-> DRAM latency.
        let params = ContentionParams {
            f_hz,
            tier,
            mem_overlap: self.config.mem_overlap,
            dirty_fraction: self.config.dirty_fraction,
        };
        self.solver.solve_with_clocks(
            &self.cache,
            &self.config.memory,
            &params,
            &self.scratch.profiles,
            &self.scratch.clocks,
        );

        // Retire work and update counters; interpolate finish times.
        self.scratch.core_utils.clear();
        self.scratch.core_utils.resize(self.config.num_cores, 0.0);
        for k in 0..self.scratch.active.len() {
            let core = self.scratch.active[k];
            let p = self.scratch.profiles[k];
            let miss_ratio = self.solver.miss_ratios()[k];
            let offered = self.solver.instr_rates()[k] * avail_s;
            let Some(task) = self.slots[core].task.as_mut() else {
                continue;
            };
            let remaining = task.remaining_instructions();
            let executed = match remaining {
                Some(rem) if rem < offered => rem,
                _ => offered,
            };
            task.retire(executed);
            let finished = task.is_finished();
            let busy_frac = if offered > 0.0 {
                p.duty_cycle * (executed / offered) * (avail_s / dt_s)
            } else {
                0.0
            };
            self.scratch.core_utils[core] = busy_frac;
            let c = self.counters.core_mut(core);
            c.instructions += executed;
            c.busy_time += Seconds::new(busy_frac * dt_s);
            let accesses = executed * p.l2_apki / 1000.0;
            c.l2_accesses += accesses;
            c.l2_misses += accesses * miss_ratio;
            self.probes
                .emit_with(self.now, || ProbeEvent::QuantumRetired {
                    core,
                    instructions: executed,
                    miss_ratio,
                });
            if finished && self.slots[core].finish_time.is_none() {
                // Fraction of the quantum actually needed.
                let frac = if offered > 0.0 {
                    (executed / offered).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let used = SimDuration::from_secs_f64(stall.as_secs_f64() + avail_s * frac);
                let at = self.now + used;
                self.slots[core].finish_time = Some(at);
                self.probes
                    .emit_with(self.now, || ProbeEvent::TaskFinished { core, at });
            }
        }
        // Wall time advances for every enabled core.
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.enabled {
                self.counters.core_mut(i).total_time += Seconds::new(dt_s);
            }
        }

        // Power and heat. The DRAM demand actually served is pro-rated by
        // the time the cores were running. Homogeneous boards keep the
        // historical single-OPP evaluation (bit-identical); heterogeneous
        // boards sum per-cluster dynamic, uncore, and leakage terms.
        let served_dram = self.solver.dram_demand() * (avail_s / dt_s.max(1e-12));
        let breakdown = if self.config.clusters.len() == 1 {
            self.power_model.evaluate(
                opp,
                &self.scratch.core_utils,
                served_dram,
                self.thermal.temperature(),
            )
        } else {
            self.clustered_power(served_dram)
        };
        let dt_span = Seconds::new(dt_s);
        self.energy += breakdown.total() * dt_span;
        self.energy_breakdown.accumulate(&breakdown, dt_span);
        self.power_track.record(breakdown.total().value(), dt_s);
        self.thermal.step(breakdown.soc(), dt_span);
        self.last_power = breakdown;
        self.probes.emit_with(self.now, || ProbeEvent::PowerSample {
            total: breakdown.total(),
            leakage: breakdown.leakage,
        });
        let temperature = self.thermal.temperature();
        self.probes
            .emit_with(self.now, || ProbeEvent::ThermalSample { temperature });
        self.now += dt;
    }

    /// Per-cluster power evaluation for heterogeneous boards: each
    /// core's dynamic term uses its own cluster's capacitance, voltage,
    /// and clock; uncore and Eq. 5 leakage are summed per cluster; the
    /// platform floor and DRAM terms stay whole-device, exactly as in
    /// [`PowerModel::evaluate`].
    fn clustered_power(&mut self, dram_bytes_per_sec: f64) -> PowerBreakdown {
        let params = self.power_model.params();
        let temp = self.thermal.temperature();
        let n_clusters = self.config.clusters.len();
        self.scratch.cluster_busy.clear();
        self.scratch.cluster_busy.resize(n_clusters, 0.0);
        self.scratch.cluster_cores.clear();
        self.scratch.cluster_cores.resize(n_clusters, 0);
        let mut core_dynamic = 0.0;
        for (i, u) in self.scratch.core_utils.iter().enumerate() {
            let c = self.cluster_of[i];
            let cluster = &self.config.clusters[c];
            let opp = cluster.dvfs.opp(self.freq_indices[c]);
            let u = u.clamp(0.0, 1.0);
            core_dynamic +=
                u * cluster.ceff_core_f * opp.voltage * opp.voltage * opp.frequency.as_hz();
            self.scratch.cluster_busy[c] += u;
            self.scratch.cluster_cores[c] += 1;
        }
        let mut uncore = 0.0;
        let mut leakage = Watts::ZERO;
        for (c, cluster) in self.config.clusters.iter().enumerate() {
            let opp = cluster.dvfs.opp(self.freq_indices[c]);
            if self.scratch.cluster_cores[c] > 0 {
                let mean_util = self.scratch.cluster_busy[c] / self.scratch.cluster_cores[c] as f64;
                uncore += cluster.uncore_w_per_ghz * opp.frequency.as_ghz() * mean_util;
            }
            leakage += cluster.leakage.power(opp.voltage, temp);
        }
        PowerBreakdown {
            platform: params.platform_floor,
            core_dynamic: Watts::new(core_dynamic),
            uncore: Watts::new(uncore),
            dram: Watts::new(params.dram_j_per_byte * dram_bytes_per_sec.max(0.0)),
            leakage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{LoopTask, PhaseProfile, PhasedTask};

    fn compute_task(instructions: f64) -> Box<PhasedTask> {
        Box::new(PhasedTask::new(
            "job",
            vec![(instructions, PhaseProfile::compute_bound())],
        ))
    }

    fn board() -> Board {
        Board::new(crate::profile::SocProfile::msm8974().board_config(), 7)
    }

    fn biglittle_board() -> Board {
        Board::new(
            crate::profile::SocProfile::biglittle_a15a7().board_config(),
            7,
        )
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_nexus5_shims_still_validate() {
        assert!(BoardConfig::nexus5().validate().is_ok());
        assert!(BoardConfig::nexus5_cold().validate().is_ok());
    }

    #[test]
    fn assign_errors() {
        let mut b = board();
        assert_eq!(
            b.assign(9, compute_task(1.0)).unwrap_err(),
            BoardError::CoreOutOfRange(9)
        );
        assert_eq!(
            b.assign(3, compute_task(1.0)).unwrap_err(),
            BoardError::CoreDisabled(3)
        );
        b.assign(0, compute_task(1.0)).expect("free core");
        assert_eq!(
            b.assign(0, compute_task(1.0)).unwrap_err(),
            BoardError::CoreOccupied(0)
        );
    }

    #[test]
    fn unknown_frequency_rejected() {
        let mut b = board();
        let err = b.set_frequency(Frequency::from_mhz(1234.0)).unwrap_err();
        assert_eq!(
            err,
            BoardError::UnknownFrequency(Frequency::from_mhz(1234.0))
        );
    }

    #[test]
    fn higher_frequency_finishes_sooner() {
        let work = 2.0e9;
        let mut times = Vec::new();
        for mhz in [729.6, 1497.6, 2265.6] {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(mhz)).expect("in table");
            b.assign(0, compute_task(work)).expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(50));
            }
            times.push(b.finish_time(0).expect("finished").as_secs_f64());
        }
        assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
        // Compute-bound: time should scale roughly inversely with frequency.
        let ratio = times[0] / times[2];
        let freq_ratio = 2265.6 / 729.6;
        assert!((ratio / freq_ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn finish_time_is_subquantum_accurate() {
        let mut b = board();
        let f = b.config().dvfs.max_frequency();
        b.set_frequency(f).expect("in table");
        // ~10.37 ms of work at 2.2656 GHz, CPI 1 (plus small L2 traffic).
        b.assign(0, compute_task(2.35e7)).expect("free");
        b.step(SimDuration::from_millis(30));
        let t = b.finish_time(0).expect("finished").as_secs_f64();
        assert!(t > 0.009 && t < 0.013, "finish {t}");
        // Not snapped to a quantum edge.
        let ms = t * 1000.0;
        assert!((ms - ms.round()).abs() > 1e-6, "suspiciously aligned: {ms}");
    }

    #[test]
    fn memory_hog_slows_the_victim() {
        let work = 2.0e9;
        let solo = {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
            b.assign(
                0,
                Box::new(PhasedTask::new(
                    "victim",
                    vec![(
                        work,
                        PhaseProfile {
                            l2_apki: 20.0,
                            working_set_bytes: 1.5 * 1024.0 * 1024.0,
                            reuse_fraction: 0.85,
                            ..PhaseProfile::compute_bound()
                        },
                    )],
                )),
            )
            .expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(50));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        let contended = {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
            b.assign(
                0,
                Box::new(PhasedTask::new(
                    "victim",
                    vec![(
                        work,
                        PhaseProfile {
                            l2_apki: 20.0,
                            working_set_bytes: 1.5 * 1024.0 * 1024.0,
                            reuse_fraction: 0.85,
                            ..PhaseProfile::compute_bound()
                        },
                    )],
                )),
            )
            .expect("free");
            b.assign(
                2,
                Box::new(LoopTask::new("hog", PhaseProfile::streaming(60.0))),
            )
            .expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(50));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        assert!(
            contended > solo * 1.05,
            "interference too weak: {solo} vs {contended}"
        );
    }

    #[test]
    fn energy_accumulates_and_power_is_plausible() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
        b.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))
            .expect("free");
        b.step(SimDuration::from_secs(2));
        let e = b.energy();
        let p = b.mean_power();
        assert!((p - e / Seconds::new(2.0)).value().abs() < 1e-9);
        assert!((1.5..5.0).contains(&p.value()), "power {p}");
    }

    #[test]
    fn temperature_rises_under_load() {
        let mut b = board();
        b.set_frequency(b.config().dvfs.max_frequency())
            .expect("ok");
        b.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))
            .expect("free");
        b.assign(1, Box::new(LoopTask::compute_bound("spin2", 1.0)))
            .expect("free");
        let t0 = b.temperature().value();
        b.step(SimDuration::from_secs(20));
        assert!(b.temperature().value() > t0 + 5.0);
        assert!(b.peak_temperature() >= b.temperature());
    }

    #[test]
    fn switch_counting_and_noop() {
        let mut b = board();
        let f1 = Frequency::from_mhz(1497.6);
        b.set_frequency(f1).expect("ok");
        b.set_frequency(f1).expect("ok"); // no-op
        assert_eq!(b.switch_count(), 1);
        b.set_frequency(Frequency::from_mhz(729.6)).expect("ok");
        assert_eq!(b.switch_count(), 2);
    }

    #[test]
    fn dvfs_stall_delays_completion() {
        // Same work, but one run thrashes the frequency between two
        // entries every quantum, paying the switch stall repeatedly.
        let work = 1.0e9;
        let run = |thrash: bool| {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(1958.4)).expect("ok");
            b.assign(0, compute_task(work)).expect("free");
            let mut flip = false;
            while !b.task_finished(0) {
                if thrash {
                    let f = if flip {
                        Frequency::from_mhz(1958.4)
                    } else {
                        Frequency::from_mhz(2112.0)
                    };
                    b.set_frequency(f).expect("ok");
                    flip = !flip;
                }
                b.step(SimDuration::from_millis(1));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        let calm = run(false);
        let thrashed = run(true);
        assert!(
            thrashed > calm,
            "stall should cost time: {calm} vs {thrashed}"
        );
    }

    #[test]
    fn utilization_reflects_duty_cycle() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
        b.assign(2, Box::new(LoopTask::compute_bound("duty", 0.4)))
            .expect("free");
        b.step(SimDuration::from_secs(1));
        let u = b.counters(2).utilization().value();
        assert!((u - 0.4).abs() < 0.05, "utilization {u}");
    }

    #[test]
    fn disabled_core_accumulates_no_wall_time() {
        let mut b = board();
        b.step(SimDuration::from_millis(100));
        assert_eq!(b.counters(3).total_time, Seconds::ZERO);
        assert!(b.counters(0).total_time > Seconds::ZERO);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(1728.0)).expect("ok");
        b.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))
            .expect("free");
        b.assign(
            2,
            Box::new(LoopTask::new("hog", PhaseProfile::streaming(30.0))),
        )
        .expect("free");
        b.step(SimDuration::from_secs(3));
        let e = b.energy_breakdown();
        assert!((e.total() - b.energy()).value().abs() < 1e-6);
        // Every component participated.
        assert!(e.platform > Joules::ZERO);
        assert!(e.core_dynamic > Joules::ZERO);
        assert!(e.uncore > Joules::ZERO);
        assert!(e.dram > Joules::ZERO, "{e:?}");
        assert!(e.leakage > Joules::ZERO);
        // The platform floor dominates a 3 s window at moderate load.
        assert!(e.platform > e.dram, "{e:?}");
    }

    #[test]
    fn trace_records_lifecycle_events() {
        let mut b = board();
        b.enable_trace(16);
        b.set_frequency(Frequency::from_mhz(1958.4)).expect("ok");
        b.assign(0, compute_task(1.0e7)).expect("free");
        while !b.task_finished(0) {
            b.step(SimDuration::from_millis(5));
        }
        let events: Vec<String> = b.trace_events().into_iter().map(|e| e.message).collect();
        assert!(
            events.iter().any(|m| m.contains("dvfs: -> 1.958GHz")),
            "{events:?}"
        );
        assert!(
            events.iter().any(|m| m.contains("assigned task \"job\"")),
            "{events:?}"
        );
        assert!(
            events.iter().any(|m| m.contains("core0: task finished")),
            "{events:?}"
        );
    }

    #[test]
    fn trace_off_by_default_and_disableable() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(729.6)).expect("ok");
        assert!(b.trace_events().is_empty());
        b.enable_trace(4);
        b.set_frequency(Frequency::from_mhz(960.0)).expect("ok");
        assert_eq!(b.trace_events().len(), 1);
        b.enable_trace(0);
        assert!(b.trace_events().is_empty());
    }

    #[test]
    fn clear_core_returns_task() {
        let mut b = board();
        b.assign(1, compute_task(5.0)).expect("free");
        let t = b.clear_core(1).expect("in range");
        assert!(t.is_some());
        assert!(b.clear_core(1).expect("in range").is_none());
        assert!(b.clear_core(77).is_err());
    }

    #[test]
    fn typed_probe_sees_quantum_and_lifecycle_events() {
        use dora_sim_core::probe::ProbeRing;

        let mut b = board();
        let ring = ProbeRing::shared(1 << 14);
        let id = b.attach_probe(ring.clone());
        assert!(b.probes_active());
        b.set_frequency(Frequency::from_mhz(1958.4)).expect("ok");
        b.assign(0, compute_task(1.0e7)).expect("free");
        b.step(SimDuration::from_millis(10));

        let events = ring.borrow().to_vec();
        let mut saw_switch = false;
        let mut saw_assign = false;
        let mut saw_finish = false;
        let mut saw_power = false;
        let mut saw_thermal = false;
        let mut retired = 0.0;
        for r in &events {
            match &r.event {
                ProbeEvent::DvfsSwitch {
                    cluster,
                    from_khz,
                    to_khz,
                } => {
                    assert_eq!(*cluster, 0);
                    assert_eq!(*from_khz, 300_000);
                    assert_eq!(*to_khz, 1_958_400);
                    saw_switch = true;
                }
                ProbeEvent::TaskMigrated { .. } => {
                    panic!("no migration on a homogeneous board")
                }
                ProbeEvent::TaskAssigned { core, name } => {
                    assert_eq!((*core, name.as_str()), (0, "job"));
                    saw_assign = true;
                }
                ProbeEvent::TaskFinished { core, at } => {
                    assert_eq!(*core, 0);
                    assert_eq!(Some(*at), b.finish_time(0));
                    saw_finish = true;
                }
                ProbeEvent::PowerSample { total, .. } => {
                    assert!(total.value() > 0.0);
                    saw_power = true;
                }
                ProbeEvent::ThermalSample { temperature } => {
                    assert!(temperature.value() > 0.0);
                    saw_thermal = true;
                }
                ProbeEvent::QuantumRetired {
                    core, instructions, ..
                } => {
                    assert_eq!(*core, 0);
                    retired += instructions;
                }
                ProbeEvent::GovernorDecision { .. } => {}
            }
        }
        assert!(saw_switch && saw_assign && saw_finish && saw_power && saw_thermal);
        // The probe saw every retired instruction.
        let counted = b.counters(0).instructions;
        assert!(
            (retired - counted).abs() < 1e-6,
            "probe {retired} vs counters {counted}"
        );

        // Detach: no further events.
        let before = ring.borrow().len();
        assert!(b.detach_probe(id));
        b.step(SimDuration::from_millis(5));
        assert_eq!(ring.borrow().len(), before);
    }

    #[test]
    fn clusters_hold_independent_frequencies() {
        let mut b = biglittle_board();
        assert_eq!(b.num_clusters(), 2);
        b.set_cluster_frequency(ClusterId::new(0), Frequency::from_mhz(1800.0))
            .expect("A15 entry");
        b.set_cluster_frequency(ClusterId::new(1), Frequency::from_mhz(600.0))
            .expect("A7 entry");
        assert_eq!(
            b.cluster_frequency(ClusterId::new(0)),
            Frequency::from_mhz(1800.0)
        );
        assert_eq!(
            b.cluster_frequency(ClusterId::new(1)),
            Frequency::from_mhz(600.0)
        );
        // An A15-only frequency is rejected on the A7 cluster.
        assert_eq!(
            b.set_cluster_frequency(ClusterId::new(1), Frequency::from_mhz(1800.0))
                .unwrap_err(),
            BoardError::UnknownFrequency(Frequency::from_mhz(1800.0))
        );
        assert_eq!(
            b.set_cluster_frequency(ClusterId::new(5), Frequency::from_mhz(600.0))
                .unwrap_err(),
            BoardError::ClusterOutOfRange(5)
        );
    }

    #[test]
    fn migration_rebinds_charges_and_emits() {
        use dora_sim_core::probe::ProbeRing;

        let mut b = biglittle_board();
        let ring = ProbeRing::shared(64);
        b.attach_probe(ring.clone());
        assert_eq!(b.cluster_of(0), ClusterId::new(0));
        let e0 = b.energy();
        b.migrate(0, ClusterId::new(1)).expect("valid target");
        assert_eq!(b.cluster_of(0), ClusterId::new(1));
        assert!(b.energy() > e0, "migration energy must be charged");
        assert!(
            (b.energy_breakdown().total() - b.energy()).value().abs() < 1e-12,
            "breakdown stays consistent with the total"
        );
        // No-op re-migration charges nothing further.
        let e1 = b.energy();
        b.migrate(0, ClusterId::new(1)).expect("no-op");
        assert_eq!(b.energy(), e1);
        assert!(b.migrate(0, ClusterId::new(9)).is_err());
        assert!(b.migrate(99, ClusterId::new(1)).is_err());
        let migrations: Vec<_> = ring
            .borrow()
            .iter()
            .filter(|r| matches!(r.event, ProbeEvent::TaskMigrated { .. }))
            .cloned()
            .collect();
        assert_eq!(migrations.len(), 1);
        assert_eq!(
            migrations[0].event,
            ProbeEvent::TaskMigrated {
                core: 0,
                from_cluster: 0,
                to_cluster: 1,
            }
        );
    }

    #[test]
    fn little_cluster_runs_the_same_work_slower_and_cheaper() {
        let work = 1.0e9;
        let run = |cluster: usize| {
            let mut b = biglittle_board();
            // Both clusters pinned to a common 1.4 GHz entry.
            b.set_cluster_frequency(ClusterId::new(0), Frequency::from_mhz(1400.0))
                .expect("A15 entry");
            b.set_cluster_frequency(ClusterId::new(1), Frequency::from_mhz(1400.0))
                .expect("A7 entry");
            b.migrate(0, ClusterId::new(cluster)).expect("valid");
            b.assign(0, compute_task(work)).expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(20));
            }
            (
                b.finish_time(0).expect("finished").as_secs_f64(),
                b.energy_breakdown().core_dynamic.value(),
            )
        };
        let (t_big, e_big) = run(0);
        let (t_little, e_little) = run(1);
        // The in-order A7 pays its CPI scale in time...
        assert!(
            t_little > t_big * 1.3,
            "LITTLE should be slower: {t_big} vs {t_little}"
        );
        // ...but its far smaller C_eff still wins on core-dynamic energy.
        assert!(
            e_little < e_big,
            "LITTLE should be cheaper: {e_big} vs {e_little}"
        );
    }

    #[test]
    fn migration_latency_stalls_execution() {
        let work = 5.0e8;
        let run = |migrations: u32| {
            let mut b = biglittle_board();
            b.set_cluster_frequency(ClusterId::new(0), Frequency::from_mhz(1400.0))
                .expect("A15 entry");
            b.set_cluster_frequency(ClusterId::new(1), Frequency::from_mhz(1400.0))
                .expect("A7 entry");
            b.assign(0, compute_task(work)).expect("free");
            for _ in 0..migrations {
                b.migrate(0, ClusterId::new(1)).expect("valid");
                b.migrate(0, ClusterId::new(0)).expect("valid");
            }
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(10));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        let calm = run(0);
        let thrashed = run(5);
        assert!(
            thrashed > calm + 0.015,
            "10 migrations at 2 ms each must stall: {calm} vs {thrashed}"
        );
    }
}
