//! The assembled smartphone platform.
//!
//! A [`Board`] owns four cores (the paper disables the fourth), the shared
//! L2, the LPDDR3 memory system, a thermal node, and the power model, and
//! advances them together in fixed quanta (1 ms by default). Per quantum it
//! solves a small fixed point: instruction rates determine cache pressure,
//! cache pressure determines miss ratios, misses determine DRAM queuing,
//! and queuing feeds back into effective CPI. That loop is what makes a
//! co-scheduled memory hog genuinely slow the browser down — the paper's
//! central phenomenon.

use crate::cache::{CacheDemand, SharedCache};
use crate::counters::{CoreCounters, CounterSet};
use crate::dvfs::{DvfsTable, Frequency, Opp};
use crate::memory::MemorySystem;
use crate::power::{PowerBreakdown, PowerModel, PowerParams};
use crate::task::Task;
use crate::thermal::{ThermalNode, ThermalParams};
use dora_sim_core::stats::TimeWeighted;
use dora_sim_core::trace::TraceRing;
use dora_sim_core::units::{Celsius, Joules, Seconds, Watts};
use dora_sim_core::{SimDuration, SimTime};
use std::error::Error;
use std::fmt;

/// Errors returned by [`Board`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardError {
    /// The referenced core id does not exist on this board.
    CoreOutOfRange(usize),
    /// The core already has a task assigned.
    CoreOccupied(usize),
    /// The core is powered off.
    CoreDisabled(usize),
    /// The frequency is not an entry of the DVFS table.
    UnknownFrequency(Frequency),
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::CoreOutOfRange(id) => write!(f, "core {id} out of range"),
            BoardError::CoreOccupied(id) => write!(f, "core {id} already has a task"),
            BoardError::CoreDisabled(id) => write!(f, "core {id} is powered off"),
            BoardError::UnknownFrequency(freq) => {
                write!(f, "frequency {freq} is not in the DVFS table")
            }
        }
    }
}

impl Error for BoardError {}

/// Static configuration of a board.
#[derive(Debug, Clone)]
pub struct BoardConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Number of physical cores.
    pub num_cores: usize,
    /// Which cores are powered on at construction.
    pub cores_enabled: Vec<bool>,
    /// The DVFS operating-point table.
    pub dvfs: DvfsTable,
    /// Shared L2 capacity in bytes.
    pub l2_capacity_bytes: f64,
    /// The DRAM model.
    pub memory: MemorySystem,
    /// The power model parameters.
    pub power: PowerParams,
    /// The thermal node parameters.
    pub thermal: ThermalParams,
    /// Simulation quantum.
    pub quantum: SimDuration,
    /// Core stall incurred by one DVFS transition (Section V-H measures
    /// frequency switching as the dominant overhead, up to 3 % of
    /// execution time when switches are frequent).
    pub dvfs_switch_stall: SimDuration,
    /// Memory-level-parallelism overlap factor: the fraction of each miss
    /// latency that actually stalls retirement.
    pub mem_overlap: f64,
    /// Fraction of evicted lines that are dirty (written back).
    pub dirty_fraction: f64,
}

impl BoardConfig {
    /// The Nexus 5 platform of the paper's Table II: four Krait cores
    /// (fourth switched off, as in Section IV-B), 2 MB shared L2, LPDDR3,
    /// the 14-entry MSM8974 DVFS table, room ambient.
    pub fn nexus5() -> Self {
        BoardConfig {
            name: "Google Nexus 5 (MSM8974 Snapdragon 800)".to_string(),
            num_cores: 4,
            cores_enabled: vec![true, true, true, false],
            dvfs: DvfsTable::msm8974(),
            l2_capacity_bytes: 2.0 * 1024.0 * 1024.0,
            memory: MemorySystem::lpddr3(),
            power: PowerParams::nexus5(),
            thermal: ThermalParams::nexus5_room(),
            quantum: SimDuration::from_millis(1),
            dvfs_switch_stall: SimDuration::from_micros(60),
            mem_overlap: 0.65,
            dirty_fraction: 0.30,
        }
    }

    /// Same platform at the cold ambient of Fig. 10(b).
    pub fn nexus5_cold() -> Self {
        BoardConfig {
            thermal: ThermalParams::nexus5_cold(),
            ..BoardConfig::nexus5()
        }
    }

    /// Validates all constituent parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("board needs at least one core".into());
        }
        if self.cores_enabled.len() != self.num_cores {
            return Err("cores_enabled length must equal num_cores".into());
        }
        if !(self.l2_capacity_bytes.is_finite() && self.l2_capacity_bytes > 0.0) {
            return Err(format!("bad L2 capacity {}", self.l2_capacity_bytes));
        }
        if self.quantum.is_zero() {
            return Err("quantum must be positive".into());
        }
        if !(self.mem_overlap.is_finite() && (0.0..=1.0).contains(&self.mem_overlap)) {
            return Err(format!("mem_overlap {} outside [0,1]", self.mem_overlap));
        }
        if !(self.dirty_fraction.is_finite() && (0.0..=1.0).contains(&self.dirty_fraction)) {
            return Err(format!(
                "dirty_fraction {} outside [0,1]",
                self.dirty_fraction
            ));
        }
        self.power.validate()?;
        self.thermal.validate()?;
        Ok(())
    }
}

/// Cumulative device energy itemized by power-model component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Platform floor (display, rails).
    pub platform: Joules,
    /// Per-core dynamic switching energy.
    pub core_dynamic: Joules,
    /// Uncore/interconnect energy.
    pub uncore: Joules,
    /// DRAM traffic energy.
    pub dram: Joules,
    /// Eq. 5 leakage energy.
    pub leakage: Joules,
}

impl EnergyBreakdown {
    fn accumulate(&mut self, power: &PowerBreakdown, dt: Seconds) {
        self.platform += power.platform * dt;
        self.core_dynamic += power.core_dynamic * dt;
        self.uncore += power.uncore * dt;
        self.dram += power.dram * dt;
        self.leakage += power.leakage * dt;
    }

    /// The sum of all components.
    pub fn total(&self) -> Joules {
        self.platform + self.core_dynamic + self.uncore + self.dram + self.leakage
    }
}

/// One core's slot on the board.
#[derive(Debug)]
struct CoreSlot {
    enabled: bool,
    task: Option<Box<dyn Task>>,
    finish_time: Option<SimTime>,
}

/// The assembled, steppable platform.
///
/// # Example
///
/// ```
/// use dora_soc::board::{Board, BoardConfig};
/// use dora_soc::task::{PhasedTask, PhaseProfile};
/// use dora_sim_core::SimDuration;
///
/// let mut board = Board::new(BoardConfig::nexus5(), 1);
/// board.assign(
///     0,
///     Box::new(PhasedTask::new(
///         "job",
///         vec![(5.0e8, PhaseProfile::compute_bound())],
///     )),
/// )?;
/// let fmax = board.config().dvfs.max_frequency();
/// board.set_frequency(fmax)?;
/// while !board.task_finished(0) {
///     board.step(SimDuration::from_millis(10));
/// }
/// let t = board.finish_time(0).expect("finished");
/// assert!(t.as_secs_f64() > 0.1 && t.as_secs_f64() < 1.0);
/// # Ok::<(), dora_soc::BoardError>(())
/// ```
#[derive(Debug)]
pub struct Board {
    config: BoardConfig,
    cache: SharedCache,
    power_model: PowerModel,
    thermal: ThermalNode,
    slots: Vec<CoreSlot>,
    counters: CounterSet,
    freq_index: usize,
    now: SimTime,
    energy: Joules,
    power_track: TimeWeighted,
    last_power: PowerBreakdown,
    switch_count: u64,
    pending_stall: SimDuration,
    energy_breakdown: EnergyBreakdown,
    trace: Option<TraceRing>,
    #[allow(dead_code)]
    seed: u64,
}

impl Board {
    /// Builds a board from a validated configuration. The `seed` pins any
    /// stochastic elements (none in the board itself today; tasks carry
    /// their own seeds) and is recorded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BoardConfig::validate`].
    #[allow(clippy::expect_used)] // constructor contract: documented # Panics
    pub fn new(config: BoardConfig, seed: u64) -> Self {
        config.validate().expect("invalid board configuration");
        let cache = SharedCache::new(config.l2_capacity_bytes);
        let power_model = PowerModel::new(config.power).expect("validated above");
        let thermal = ThermalNode::new(config.thermal);
        let slots = config
            .cores_enabled
            .iter()
            .map(|&enabled| CoreSlot {
                enabled,
                task: None,
                finish_time: None,
            })
            .collect();
        let counters = CounterSet::new(config.num_cores);
        Board {
            cache,
            power_model,
            thermal,
            slots,
            counters,
            freq_index: 0,
            now: SimTime::ZERO,
            energy: Joules::ZERO,
            power_track: TimeWeighted::new(),
            last_power: PowerBreakdown::default(),
            switch_count: 0,
            pending_stall: SimDuration::ZERO,
            energy_breakdown: EnergyBreakdown::default(),
            trace: None,
            seed,
            config,
        }
    }

    /// Enables event tracing: DVFS transitions, task assignments and task
    /// completions are recorded into a bounded ring of `capacity` events
    /// (oldest evicted first). Pass 0 to disable again.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = if capacity == 0 {
            None
        } else {
            Some(TraceRing::new(capacity))
        };
    }

    /// The recorded events, oldest first (empty when tracing is off).
    pub fn trace_events(&self) -> Vec<dora_sim_core::trace::TraceEvent> {
        self.trace
            .as_ref()
            .map(|t| t.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn record(&mut self, message: String) {
        if let Some(trace) = self.trace.as_mut() {
            trace.record(self.now, message);
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &BoardConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Current operating point.
    pub fn opp(&self) -> Opp {
        self.config.dvfs.opp(self.freq_index)
    }

    /// Current core frequency.
    pub fn frequency(&self) -> Frequency {
        self.opp().frequency
    }

    /// Die temperature.
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    /// Peak die temperature so far.
    pub fn peak_temperature(&self) -> Celsius {
        self.thermal.peak()
    }

    /// Total device energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// The cumulative energy itemized by power-model component.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.energy_breakdown
    }

    /// Time-weighted mean device power so far.
    pub fn mean_power(&self) -> Watts {
        Watts::new(self.power_track.mean())
    }

    /// The itemized power of the most recent quantum.
    pub fn last_power(&self) -> PowerBreakdown {
        self.last_power
    }

    /// Number of DVFS transitions performed.
    pub fn switch_count(&self) -> u64 {
        self.switch_count
    }

    /// The cumulative counters of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn counters(&self, i: usize) -> CoreCounters {
        *self.counters.core(i)
    }

    /// A snapshot of all counters (for governor delta sampling).
    pub fn counter_set(&self) -> &CounterSet {
        &self.counters
    }

    /// Assigns a task to a core.
    ///
    /// # Errors
    ///
    /// [`BoardError::CoreOutOfRange`], [`BoardError::CoreDisabled`], or
    /// [`BoardError::CoreOccupied`].
    pub fn assign(&mut self, core: usize, task: Box<dyn Task>) -> Result<(), BoardError> {
        let slot = self
            .slots
            .get_mut(core)
            .ok_or(BoardError::CoreOutOfRange(core))?;
        if !slot.enabled {
            return Err(BoardError::CoreDisabled(core));
        }
        if slot.task.is_some() {
            return Err(BoardError::CoreOccupied(core));
        }
        let name = task.name().to_string();
        slot.task = Some(task);
        slot.finish_time = None;
        self.record(format!("core{core}: assigned task {name:?}"));
        Ok(())
    }

    /// Removes and returns the task on a core, if any.
    ///
    /// # Errors
    ///
    /// [`BoardError::CoreOutOfRange`].
    pub fn clear_core(&mut self, core: usize) -> Result<Option<Box<dyn Task>>, BoardError> {
        let slot = self
            .slots
            .get_mut(core)
            .ok_or(BoardError::CoreOutOfRange(core))?;
        slot.finish_time = None;
        Ok(slot.task.take())
    }

    /// A shared view of the task on a core, if any.
    pub fn task(&self, core: usize) -> Option<&dyn Task> {
        self.slots.get(core)?.task.as_deref()
    }

    /// Whether the task on `core` has completed all its work. `false` when
    /// no task is assigned.
    pub fn task_finished(&self, core: usize) -> bool {
        self.slots
            .get(core)
            .and_then(|s| s.task.as_ref())
            .is_some_and(|t| t.is_finished())
    }

    /// The instant the task on `core` finished, interpolated within its
    /// final quantum. `None` while unfinished or unassigned.
    pub fn finish_time(&self, core: usize) -> Option<SimTime> {
        self.slots.get(core)?.finish_time
    }

    /// Sets the cluster frequency. A no-op (no stall, no switch counted)
    /// when the target equals the current frequency — mirroring DORA's
    /// "change only when fopt moved" behaviour (Section V-H).
    ///
    /// # Errors
    ///
    /// [`BoardError::UnknownFrequency`] if `f` is not a table entry.
    pub fn set_frequency(&mut self, f: Frequency) -> Result<(), BoardError> {
        let index = self
            .config
            .dvfs
            .index_of(f)
            .ok_or(BoardError::UnknownFrequency(f))?;
        if index != self.freq_index {
            self.freq_index = index;
            self.switch_count += 1;
            self.pending_stall += self.config.dvfs_switch_stall;
            self.record(format!("dvfs: -> {f}"));
        }
        Ok(())
    }

    /// Advances the board by `duration`, in quanta of the configured size.
    pub fn step(&mut self, duration: SimDuration) {
        let mut left = duration;
        while !left.is_zero() {
            let dt = if left < self.config.quantum {
                left
            } else {
                self.config.quantum
            };
            self.step_quantum(dt);
            left = left.saturating_sub(dt);
        }
    }

    /// One quantum of execution.
    #[allow(clippy::expect_used)] // internal invariant: active core indices hold unfinished tasks
    fn step_quantum(&mut self, dt: SimDuration) {
        let dt_s = dt.as_secs_f64();
        // Consume pending DVFS stall: it eats into the available run time
        // of this quantum for all cores.
        let stall = if self.pending_stall < dt {
            self.pending_stall
        } else {
            dt
        };
        self.pending_stall = self.pending_stall.saturating_sub(stall);
        let avail_s = (dt.saturating_sub(stall)).as_secs_f64();

        let opp = self.opp();
        let f_hz = opp.frequency.as_hz();
        let tier = self.config.dvfs.bus_tier(opp.frequency);

        // Collect active (enabled, unfinished) tasks.
        let active: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.enabled && s.task.as_ref().is_some_and(|t| !t.is_finished()))
            .map(|(i, _)| i)
            .collect();

        let profiles: Vec<_> = active
            .iter()
            .map(|&i| {
                self.slots[i]
                    .task
                    .as_ref()
                    .expect("active implies task")
                    .profile()
                    .expect("active implies unfinished")
            })
            .collect();

        // Fixed point: instruction rates <-> cache shares <-> DRAM latency.
        let n = active.len();
        let mut instr_rates: Vec<f64> = profiles
            .iter()
            .map(|p| p.duty_cycle * f_hz / p.base_cpi)
            .collect();
        let mut miss_ratios = vec![0.0f64; n];
        let mut dram_demand = 0.0f64;
        for _ in 0..4 {
            let demands: Vec<CacheDemand> = profiles
                .iter()
                .zip(&instr_rates)
                .map(|(p, &r)| CacheDemand {
                    access_rate: r * p.l2_apki / 1000.0,
                    working_set: p.working_set_bytes,
                    reuse_fraction: p.reuse_fraction,
                })
                .collect();
            let shares = self.cache.apportion(&demands);
            dram_demand = 0.0;
            for i in 0..n {
                miss_ratios[i] = shares[i].miss_ratio;
                let miss_rate = demands[i].access_rate * shares[i].miss_ratio;
                dram_demand +=
                    MemorySystem::demand_from_miss_rate(miss_rate, self.config.dirty_fraction);
            }
            let lat_ns = self.config.memory.miss_latency_ns(tier, dram_demand);
            for i in 0..n {
                let p = &profiles[i];
                let miss_cycles = (p.l2_apki / 1000.0)
                    * miss_ratios[i]
                    * lat_ns
                    * 1e-9
                    * f_hz
                    * self.config.mem_overlap;
                let cpi_eff = p.base_cpi + miss_cycles;
                instr_rates[i] = p.duty_cycle * f_hz / cpi_eff;
            }
        }

        // Retire work and update counters; interpolate finish times.
        let mut core_utils = vec![0.0f64; self.config.num_cores];
        let mut finished_cores: Vec<(usize, SimTime)> = Vec::new();
        for (k, &core) in active.iter().enumerate() {
            let p = &profiles[k];
            let offered = instr_rates[k] * avail_s;
            let task = self.slots[core].task.as_mut().expect("active");
            let remaining = remaining_of(task.as_ref());
            let executed = match remaining {
                Some(rem) if rem < offered => rem,
                _ => offered,
            };
            task.retire(executed);
            let busy_frac = if offered > 0.0 {
                p.duty_cycle * (executed / offered) * (avail_s / dt_s)
            } else {
                0.0
            };
            core_utils[core] = busy_frac;
            let c = self.counters.core_mut(core);
            c.instructions += executed;
            c.busy_time += Seconds::new(busy_frac * dt_s);
            let accesses = executed * p.l2_apki / 1000.0;
            c.l2_accesses += accesses;
            c.l2_misses += accesses * miss_ratios[k];
            if self.slots[core]
                .task
                .as_ref()
                .expect("active")
                .is_finished()
                && self.slots[core].finish_time.is_none()
            {
                // Fraction of the quantum actually needed.
                let frac = if offered > 0.0 {
                    (executed / offered).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let used = SimDuration::from_secs_f64(stall.as_secs_f64() + avail_s * frac);
                let at = self.now + used;
                self.slots[core].finish_time = Some(at);
                finished_cores.push((core, at));
            }
        }
        for (core, at) in finished_cores {
            self.record(format!("core{core}: task finished at {at}"));
        }
        // Wall time advances for every enabled core.
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.enabled {
                self.counters.core_mut(i).total_time += Seconds::new(dt_s);
            }
        }

        // Power and heat. The DRAM demand actually served is pro-rated by
        // the time the cores were running.
        let served_dram = dram_demand * (avail_s / dt_s.max(1e-12));
        let breakdown =
            self.power_model
                .evaluate(opp, &core_utils, served_dram, self.thermal.temperature());
        let dt_span = Seconds::new(dt_s);
        self.energy += breakdown.total() * dt_span;
        self.energy_breakdown.accumulate(&breakdown, dt_span);
        self.power_track.record(breakdown.total().value(), dt_s);
        self.thermal.step(breakdown.soc(), dt_span);
        self.last_power = breakdown;
        self.now += dt;
    }
}

/// Extracts a task's remaining-instruction hint when it offers one.
fn remaining_of(task: &dyn Task) -> Option<f64> {
    task.remaining_instructions()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{LoopTask, PhaseProfile, PhasedTask};

    fn compute_task(instructions: f64) -> Box<PhasedTask> {
        Box::new(PhasedTask::new(
            "job",
            vec![(instructions, PhaseProfile::compute_bound())],
        ))
    }

    fn board() -> Board {
        Board::new(BoardConfig::nexus5(), 7)
    }

    #[test]
    fn nexus5_config_is_valid() {
        assert!(BoardConfig::nexus5().validate().is_ok());
        assert!(BoardConfig::nexus5_cold().validate().is_ok());
    }

    #[test]
    fn assign_errors() {
        let mut b = board();
        assert_eq!(
            b.assign(9, compute_task(1.0)).unwrap_err(),
            BoardError::CoreOutOfRange(9)
        );
        assert_eq!(
            b.assign(3, compute_task(1.0)).unwrap_err(),
            BoardError::CoreDisabled(3)
        );
        b.assign(0, compute_task(1.0)).expect("free core");
        assert_eq!(
            b.assign(0, compute_task(1.0)).unwrap_err(),
            BoardError::CoreOccupied(0)
        );
    }

    #[test]
    fn unknown_frequency_rejected() {
        let mut b = board();
        let err = b.set_frequency(Frequency::from_mhz(1234.0)).unwrap_err();
        assert_eq!(
            err,
            BoardError::UnknownFrequency(Frequency::from_mhz(1234.0))
        );
    }

    #[test]
    fn higher_frequency_finishes_sooner() {
        let work = 2.0e9;
        let mut times = Vec::new();
        for mhz in [729.6, 1497.6, 2265.6] {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(mhz)).expect("in table");
            b.assign(0, compute_task(work)).expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(50));
            }
            times.push(b.finish_time(0).expect("finished").as_secs_f64());
        }
        assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
        // Compute-bound: time should scale roughly inversely with frequency.
        let ratio = times[0] / times[2];
        let freq_ratio = 2265.6 / 729.6;
        assert!((ratio / freq_ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn finish_time_is_subquantum_accurate() {
        let mut b = board();
        let f = b.config().dvfs.max_frequency();
        b.set_frequency(f).expect("in table");
        // ~10.37 ms of work at 2.2656 GHz, CPI 1 (plus small L2 traffic).
        b.assign(0, compute_task(2.35e7)).expect("free");
        b.step(SimDuration::from_millis(30));
        let t = b.finish_time(0).expect("finished").as_secs_f64();
        assert!(t > 0.009 && t < 0.013, "finish {t}");
        // Not snapped to a quantum edge.
        let ms = t * 1000.0;
        assert!((ms - ms.round()).abs() > 1e-6, "suspiciously aligned: {ms}");
    }

    #[test]
    fn memory_hog_slows_the_victim() {
        let work = 2.0e9;
        let solo = {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
            b.assign(
                0,
                Box::new(PhasedTask::new(
                    "victim",
                    vec![(
                        work,
                        PhaseProfile {
                            l2_apki: 20.0,
                            working_set_bytes: 1.5 * 1024.0 * 1024.0,
                            reuse_fraction: 0.85,
                            ..PhaseProfile::compute_bound()
                        },
                    )],
                )),
            )
            .expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(50));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        let contended = {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
            b.assign(
                0,
                Box::new(PhasedTask::new(
                    "victim",
                    vec![(
                        work,
                        PhaseProfile {
                            l2_apki: 20.0,
                            working_set_bytes: 1.5 * 1024.0 * 1024.0,
                            reuse_fraction: 0.85,
                            ..PhaseProfile::compute_bound()
                        },
                    )],
                )),
            )
            .expect("free");
            b.assign(
                2,
                Box::new(LoopTask::new("hog", PhaseProfile::streaming(60.0))),
            )
            .expect("free");
            while !b.task_finished(0) {
                b.step(SimDuration::from_millis(50));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        assert!(
            contended > solo * 1.05,
            "interference too weak: {solo} vs {contended}"
        );
    }

    #[test]
    fn energy_accumulates_and_power_is_plausible() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
        b.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))
            .expect("free");
        b.step(SimDuration::from_secs(2));
        let e = b.energy();
        let p = b.mean_power();
        assert!((p - e / Seconds::new(2.0)).value().abs() < 1e-9);
        assert!((1.5..5.0).contains(&p.value()), "power {p}");
    }

    #[test]
    fn temperature_rises_under_load() {
        let mut b = board();
        b.set_frequency(b.config().dvfs.max_frequency())
            .expect("ok");
        b.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))
            .expect("free");
        b.assign(1, Box::new(LoopTask::compute_bound("spin2", 1.0)))
            .expect("free");
        let t0 = b.temperature().value();
        b.step(SimDuration::from_secs(20));
        assert!(b.temperature().value() > t0 + 5.0);
        assert!(b.peak_temperature() >= b.temperature());
    }

    #[test]
    fn switch_counting_and_noop() {
        let mut b = board();
        let f1 = Frequency::from_mhz(1497.6);
        b.set_frequency(f1).expect("ok");
        b.set_frequency(f1).expect("ok"); // no-op
        assert_eq!(b.switch_count(), 1);
        b.set_frequency(Frequency::from_mhz(729.6)).expect("ok");
        assert_eq!(b.switch_count(), 2);
    }

    #[test]
    fn dvfs_stall_delays_completion() {
        // Same work, but one run thrashes the frequency between two
        // entries every quantum, paying the switch stall repeatedly.
        let work = 1.0e9;
        let run = |thrash: bool| {
            let mut b = board();
            b.set_frequency(Frequency::from_mhz(1958.4)).expect("ok");
            b.assign(0, compute_task(work)).expect("free");
            let mut flip = false;
            while !b.task_finished(0) {
                if thrash {
                    let f = if flip {
                        Frequency::from_mhz(1958.4)
                    } else {
                        Frequency::from_mhz(2112.0)
                    };
                    b.set_frequency(f).expect("ok");
                    flip = !flip;
                }
                b.step(SimDuration::from_millis(1));
            }
            b.finish_time(0).expect("finished").as_secs_f64()
        };
        let calm = run(false);
        let thrashed = run(true);
        assert!(
            thrashed > calm,
            "stall should cost time: {calm} vs {thrashed}"
        );
    }

    #[test]
    fn utilization_reflects_duty_cycle() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(1497.6)).expect("ok");
        b.assign(2, Box::new(LoopTask::compute_bound("duty", 0.4)))
            .expect("free");
        b.step(SimDuration::from_secs(1));
        let u = b.counters(2).utilization().value();
        assert!((u - 0.4).abs() < 0.05, "utilization {u}");
    }

    #[test]
    fn disabled_core_accumulates_no_wall_time() {
        let mut b = board();
        b.step(SimDuration::from_millis(100));
        assert_eq!(b.counters(3).total_time, Seconds::ZERO);
        assert!(b.counters(0).total_time > Seconds::ZERO);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(1728.0)).expect("ok");
        b.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))
            .expect("free");
        b.assign(
            2,
            Box::new(LoopTask::new("hog", PhaseProfile::streaming(30.0))),
        )
        .expect("free");
        b.step(SimDuration::from_secs(3));
        let e = b.energy_breakdown();
        assert!((e.total() - b.energy()).value().abs() < 1e-6);
        // Every component participated.
        assert!(e.platform > Joules::ZERO);
        assert!(e.core_dynamic > Joules::ZERO);
        assert!(e.uncore > Joules::ZERO);
        assert!(e.dram > Joules::ZERO, "{e:?}");
        assert!(e.leakage > Joules::ZERO);
        // The platform floor dominates a 3 s window at moderate load.
        assert!(e.platform > e.dram, "{e:?}");
    }

    #[test]
    fn trace_records_lifecycle_events() {
        let mut b = board();
        b.enable_trace(16);
        b.set_frequency(Frequency::from_mhz(1958.4)).expect("ok");
        b.assign(0, compute_task(1.0e7)).expect("free");
        while !b.task_finished(0) {
            b.step(SimDuration::from_millis(5));
        }
        let events: Vec<String> = b.trace_events().into_iter().map(|e| e.message).collect();
        assert!(
            events.iter().any(|m| m.contains("dvfs: -> 1.958GHz")),
            "{events:?}"
        );
        assert!(
            events.iter().any(|m| m.contains("assigned task \"job\"")),
            "{events:?}"
        );
        assert!(
            events.iter().any(|m| m.contains("core0: task finished")),
            "{events:?}"
        );
    }

    #[test]
    fn trace_off_by_default_and_disableable() {
        let mut b = board();
        b.set_frequency(Frequency::from_mhz(729.6)).expect("ok");
        assert!(b.trace_events().is_empty());
        b.enable_trace(4);
        b.set_frequency(Frequency::from_mhz(960.0)).expect("ok");
        assert_eq!(b.trace_events().len(), 1);
        b.enable_trace(0);
        assert!(b.trace_events().is_empty());
    }

    #[test]
    fn clear_core_returns_task() {
        let mut b = board();
        b.assign(1, compute_task(5.0)).expect("free");
        let t = b.clear_core(1).expect("in range");
        assert!(t.is_some());
        assert!(b.clear_core(1).expect("in range").is_none());
        assert!(b.clear_core(77).is_err());
    }
}
