//! `perf`-style performance counters.
//!
//! The paper configures the Android kernel for `perf` profiling and DORA
//! samples counters every decision interval (Section V-H task 1). Governors
//! in this reproduction read the same quantities: retired instructions,
//! busy time (→ utilization), and shared-L2 accesses/misses (→ MPKI, the
//! paper's interference proxy X6).
//!
//! Counters accumulate monotonically; governors take [`CounterSet::snapshot`]s
//! and difference them with [`CounterSet::delta`] to get per-interval rates,
//! exactly like reading `/proc`-exported counters twice.

use dora_sim_core::units::{Mpki, Seconds, Utilization};

/// Monotonic counters for one core.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreCounters {
    /// Retired instructions.
    pub instructions: f64,
    /// Time the core spent executing (not idle).
    pub busy_time: Seconds,
    /// Wall-clock time the core existed (powered on).
    pub total_time: Seconds,
    /// Accesses reaching the shared L2.
    pub l2_accesses: f64,
    /// Shared-L2 misses.
    pub l2_misses: f64,
}

impl CoreCounters {
    /// L2 misses per kilo-instruction. Zero when no instructions retired.
    pub fn mpki(&self) -> Mpki {
        if self.instructions <= 0.0 {
            Mpki::ZERO
        } else {
            Mpki::clamped(self.l2_misses / (self.instructions / 1000.0))
        }
    }

    /// L2 accesses per kilo-instruction.
    pub fn apki(&self) -> f64 {
        if self.instructions <= 0.0 {
            0.0
        } else {
            self.l2_accesses / (self.instructions / 1000.0)
        }
    }

    /// Busy fraction in `[0, 1]`. Zero when no wall time has elapsed.
    pub fn utilization(&self) -> Utilization {
        if self.total_time.value() <= 0.0 {
            Utilization::ZERO
        } else {
            Utilization::clamped(self.busy_time / self.total_time)
        }
    }

    /// Element-wise difference `self − earlier`, saturating at zero (a
    /// counter can never run backwards; clamping guards float dust).
    pub fn delta(&self, earlier: &CoreCounters) -> CoreCounters {
        CoreCounters {
            instructions: (self.instructions - earlier.instructions).max(0.0),
            busy_time: (self.busy_time - earlier.busy_time).max(Seconds::ZERO),
            total_time: (self.total_time - earlier.total_time).max(Seconds::ZERO),
            l2_accesses: (self.l2_accesses - earlier.l2_accesses).max(0.0),
            l2_misses: (self.l2_misses - earlier.l2_misses).max(0.0),
        }
    }

    /// Accumulates another counter block into this one.
    pub fn add(&mut self, other: &CoreCounters) {
        self.instructions += other.instructions;
        self.busy_time += other.busy_time;
        self.total_time += other.total_time;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
    }
}

/// A snapshot of all cores' counters at one instant.
///
/// # Example
///
/// ```
/// use dora_soc::counters::{CoreCounters, CounterSet};
///
/// let mut set = CounterSet::new(2);
/// set.core_mut(0).instructions = 1.0e6;
/// set.core_mut(0).l2_misses = 5.0e3;
/// let snap = set.snapshot();
/// set.core_mut(0).instructions = 2.0e6;
/// set.core_mut(0).l2_misses = 9.0e3;
/// let delta = set.delta(&snap);
/// assert_eq!(delta.core(0).instructions, 1.0e6);
/// assert_eq!(delta.core(0).mpki().value(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterSet {
    cores: Vec<CoreCounters>,
}

impl CounterSet {
    /// Creates a zeroed set for `n` cores.
    pub fn new(n: usize) -> Self {
        CounterSet {
            cores: vec![CoreCounters::default(); n],
        }
    }

    /// Number of cores tracked.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the set tracks zero cores.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The counters of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core(&self, i: usize) -> &CoreCounters {
        &self.cores[i]
    }

    /// Mutable access for the board to accumulate into.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core_mut(&mut self, i: usize) -> &mut CoreCounters {
        &mut self.cores[i]
    }

    /// All cores.
    pub fn cores(&self) -> &[CoreCounters] {
        &self.cores
    }

    /// A copy of the current values.
    pub fn snapshot(&self) -> CounterSet {
        self.clone()
    }

    /// Per-core difference `self − earlier`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets track different core counts.
    pub fn delta(&self, earlier: &CounterSet) -> CounterSet {
        assert_eq!(
            self.cores.len(),
            earlier.cores.len(),
            "snapshot core-count mismatch"
        );
        CounterSet {
            cores: self
                .cores
                .iter()
                .zip(&earlier.cores)
                .map(|(now, then)| now.delta(then))
                .collect(),
        }
    }

    /// Aggregate counters over a subset of cores (e.g. the two browser
    /// cores), summing instruction and cache traffic and wall/busy time.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn aggregate(&self, core_ids: &[usize]) -> CoreCounters {
        let mut acc = CoreCounters::default();
        for &i in core_ids {
            acc.add(&self.cores[i]);
        }
        acc
    }

    /// Combined L2 MPKI across every core — the "shared L2 cache MPKI"
    /// DORA monitors (the paper's X6 covers total pressure on the shared
    /// cache, not a single core's).
    pub fn shared_l2_mpki(&self) -> Mpki {
        let ids: Vec<usize> = (0..self.cores.len()).collect();
        self.aggregate(&ids).mpki()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(instr: f64, busy: f64, total: f64, acc: f64, miss: f64) -> CoreCounters {
        CoreCounters {
            instructions: instr,
            busy_time: Seconds::new(busy),
            total_time: Seconds::new(total),
            l2_accesses: acc,
            l2_misses: miss,
        }
    }

    #[test]
    fn derived_rates() {
        let c = counters(2.0e6, 0.5, 1.0, 4.0e4, 1.0e4);
        assert_eq!(c.mpki().value(), 5.0);
        assert_eq!(c.apki(), 20.0);
        assert_eq!(c.utilization().value(), 0.5);
    }

    #[test]
    fn zero_instruction_rates_are_zero() {
        let c = CoreCounters::default();
        assert_eq!(c.mpki(), Mpki::ZERO);
        assert_eq!(c.apki(), 0.0);
        assert_eq!(c.utilization(), Utilization::ZERO);
    }

    #[test]
    fn delta_saturates() {
        let a = counters(10.0, 1.0, 2.0, 5.0, 1.0);
        let b = counters(4.0, 0.5, 1.0, 2.0, 0.5);
        let d = a.delta(&b);
        assert_eq!(d.instructions, 6.0);
        // Reversed order clamps to zero rather than going negative.
        let r = b.delta(&a);
        assert_eq!(r.instructions, 0.0);
        assert_eq!(r.l2_misses, 0.0);
    }

    #[test]
    fn set_snapshot_delta_roundtrip() {
        let mut set = CounterSet::new(4);
        set.core_mut(2).instructions = 100.0;
        let snap = set.snapshot();
        set.core_mut(2).instructions = 350.0;
        set.core_mut(0).busy_time = Seconds::new(0.25);
        let d = set.delta(&snap);
        assert_eq!(d.core(2).instructions, 250.0);
        assert_eq!(d.core(0).busy_time, Seconds::new(0.25));
        assert_eq!(d.core(1).instructions, 0.0);
    }

    #[test]
    fn aggregate_sums_selected_cores() {
        let mut set = CounterSet::new(3);
        *set.core_mut(0) = counters(1000.0, 0.2, 1.0, 20.0, 4.0);
        *set.core_mut(1) = counters(3000.0, 0.9, 1.0, 60.0, 12.0);
        *set.core_mut(2) = counters(5000.0, 1.0, 1.0, 999.0, 500.0);
        let browser = set.aggregate(&[0, 1]);
        assert_eq!(browser.instructions, 4000.0);
        assert_eq!(browser.mpki().value(), 4.0);
        // Shared MPKI includes the noisy third core.
        assert!(set.shared_l2_mpki() > browser.mpki());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn delta_requires_same_shape() {
        let a = CounterSet::new(2);
        let b = CounterSet::new(3);
        let _ = a.delta(&b);
    }
}
