//! The workload abstraction executed by simulated cores.
//!
//! A [`Task`] is a stream of *phases*. Each phase advertises a
//! [`PhaseProfile`] — how compute- vs memory-hungry the work currently is —
//! and consumes retired instructions until its budget is exhausted. Browser
//! rendering stages (`dora-browser`) and Rodinia-like interference kernels
//! (`dora-coworkloads`) both implement this trait; the [`board`] only ever
//! sees the trait.
//!
//! [`board`]: crate::board

use std::fmt;

/// The execution profile of a task's current phase.
///
/// These are the knobs through which a workload influences the timing,
/// cache, memory and power models:
///
/// * `base_cpi` — cycles per instruction with a perfect L2 (no misses).
/// * `l2_apki` — L2 accesses per kilo-instruction (i.e. L1 misses reaching
///   the shared cache).
/// * `working_set_bytes` — how much L2 occupancy the phase can profitably
///   use; the contention model allocates occupancy against this.
/// * `reuse_fraction` — fraction of L2 accesses that *can* hit given enough
///   occupancy; the remainder is streaming/compulsory traffic that misses
///   regardless (so even an infinite cache shows some MPKI).
/// * `duty_cycle` — fraction of wall time the task wants the core; the rest
///   is idle (models interactive pauses and periodic kernels, and feeds the
///   paper's X9 "core utilization of co-scheduled task" variable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseProfile {
    /// Cycles per instruction assuming every L2 access hits.
    pub base_cpi: f64,
    /// Shared-L2 accesses per kilo-instruction.
    pub l2_apki: f64,
    /// Cache working set in bytes.
    pub working_set_bytes: f64,
    /// Fraction of L2 accesses that are reusable (cacheable) traffic.
    pub reuse_fraction: f64,
    /// Fraction of wall-clock time the task occupies its core.
    pub duty_cycle: f64,
}

impl PhaseProfile {
    /// A purely compute-bound profile: CPI 1, negligible L2 traffic.
    pub fn compute_bound() -> Self {
        PhaseProfile {
            base_cpi: 1.0,
            l2_apki: 0.2,
            working_set_bytes: 16.0 * 1024.0,
            reuse_fraction: 0.95,
            duty_cycle: 1.0,
        }
    }

    /// A memory-streaming profile: every access is a compulsory miss.
    pub fn streaming(l2_apki: f64) -> Self {
        PhaseProfile {
            base_cpi: 1.2,
            l2_apki,
            working_set_bytes: 8.0 * 1024.0 * 1024.0,
            reuse_fraction: 0.05,
            duty_cycle: 1.0,
        }
    }

    /// Validates that all fields are finite and within their domains.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, bool); 6] = [
            (
                "base_cpi must be positive and finite",
                self.base_cpi.is_finite() && self.base_cpi > 0.0,
            ),
            (
                "l2_apki must be non-negative and finite",
                self.l2_apki.is_finite() && self.l2_apki >= 0.0,
            ),
            (
                "working_set_bytes must be non-negative and finite",
                self.working_set_bytes.is_finite() && self.working_set_bytes >= 0.0,
            ),
            (
                "reuse_fraction must be in [0, 1]",
                self.reuse_fraction.is_finite() && (0.0..=1.0).contains(&self.reuse_fraction),
            ),
            (
                "duty_cycle must be in (0, 1]",
                self.duty_cycle.is_finite() && self.duty_cycle > 0.0 && self.duty_cycle <= 1.0,
            ),
            ("l2_apki must be at most 1000", self.l2_apki <= 1000.0),
        ];
        for (msg, ok) in checks {
            if !ok {
                return Err(format!("{msg} (got {self:?})"));
            }
        }
        Ok(())
    }
}

/// A unit of schedulable work, pulled on by a simulated core.
///
/// Implementations must be deterministic given their construction inputs;
/// any randomness should come from a seed captured at construction time.
///
/// `Send + Sync` bounds make boxed tasks — and therefore
/// [`crate::snapshot::BoardSnapshot`]s — shareable across the campaign
/// executor's worker threads, which is what lets one warmed-up snapshot
/// fan out into parallel per-frequency continuations.
pub trait Task: fmt::Debug + Send + Sync {
    /// A short human-readable name for traces and reports.
    fn name(&self) -> &str;

    /// The profile of the current phase, or `None` once the task has
    /// finished all its work.
    fn profile(&self) -> Option<PhaseProfile>;

    /// Consumes `instructions` retired instructions (fractional — quanta
    /// rarely align with phase boundaries). Implementations advance their
    /// phase machinery; over-delivery beyond the remaining budget is
    /// silently discarded.
    fn retire(&mut self, instructions: f64);

    /// Whether the task has no work left.
    fn is_finished(&self) -> bool {
        self.profile().is_none()
    }

    /// Total instructions retired so far.
    fn retired(&self) -> f64;

    /// How many instructions remain before the task finishes, when the
    /// task can tell. The board uses this hint to interpolate completion
    /// times within a quantum; endless tasks return `None` (the default).
    fn remaining_instructions(&self) -> Option<f64> {
        None
    }

    /// A boxed deep copy of the task in its *current* state (retired
    /// work, phase position and all), used by
    /// [`crate::board::Board::snapshot`] to checkpoint a running board.
    /// Cloneable implementations simply box a clone.
    fn snapshot_box(&self) -> Box<dyn Task>;
}

/// An endlessly repeating single-phase task.
///
/// Useful as a minimal co-runner or for calibration: it never finishes and
/// always advertises the same profile.
///
/// # Example
///
/// ```
/// use dora_soc::task::{LoopTask, PhaseProfile, Task};
///
/// let mut t = LoopTask::new("stream", PhaseProfile::streaming(30.0));
/// assert!(!t.is_finished());
/// t.retire(1.0e6);
/// assert_eq!(t.retired(), 1.0e6);
/// ```
#[derive(Debug, Clone)]
pub struct LoopTask {
    name: String,
    profile: PhaseProfile,
    retired: f64,
}

impl LoopTask {
    /// Creates a looping task with the given profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`PhaseProfile::validate`].
    #[allow(clippy::expect_used)] // constructor contract: documented # Panics
    pub fn new(name: impl Into<String>, profile: PhaseProfile) -> Self {
        profile.validate().expect("invalid phase profile");
        LoopTask {
            name: name.into(),
            profile,
            retired: 0.0,
        }
    }

    /// A compute-bound looping task with the given duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `duty_cycle` is outside `(0, 1]`.
    pub fn compute_bound(name: impl Into<String>, duty_cycle: f64) -> Self {
        let profile = PhaseProfile {
            duty_cycle,
            ..PhaseProfile::compute_bound()
        };
        LoopTask::new(name, profile)
    }
}

impl Task for LoopTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn profile(&self) -> Option<PhaseProfile> {
        Some(self.profile)
    }

    fn retire(&mut self, instructions: f64) {
        if instructions.is_finite() && instructions > 0.0 {
            self.retired += instructions;
        }
    }

    fn retired(&self) -> f64 {
        self.retired
    }

    fn snapshot_box(&self) -> Box<dyn Task> {
        Box::new(self.clone())
    }
}

/// A finite task built from an explicit list of `(instruction budget,
/// profile)` phases, executed in order.
///
/// This is the workhorse used by the browser rendering pipeline and the
/// co-run kernels.
///
/// # Example
///
/// ```
/// use dora_soc::task::{PhasedTask, PhaseProfile, Task};
///
/// let mut t = PhasedTask::new(
///     "two-phase",
///     vec![
///         (1000.0, PhaseProfile::compute_bound()),
///         (500.0, PhaseProfile::streaming(20.0)),
///     ],
/// );
/// t.retire(1200.0); // crosses the phase boundary
/// assert_eq!(t.current_phase(), Some(1));
/// t.retire(400.0);
/// assert!(t.is_finished());
/// ```
#[derive(Debug, Clone)]
pub struct PhasedTask {
    name: String,
    phases: Vec<(f64, PhaseProfile)>,
    phase_index: usize,
    consumed_in_phase: f64,
    retired: f64,
}

impl PhasedTask {
    /// Creates a task from ordered `(instructions, profile)` phases.
    ///
    /// # Panics
    ///
    /// Panics if any phase has a non-positive instruction budget or an
    /// invalid profile.
    #[allow(clippy::expect_used)] // constructor contract: documented # Panics
    pub fn new(name: impl Into<String>, phases: Vec<(f64, PhaseProfile)>) -> Self {
        for (budget, profile) in &phases {
            assert!(
                budget.is_finite() && *budget > 0.0,
                "phase budget must be positive, got {budget}"
            );
            profile.validate().expect("invalid phase profile");
        }
        PhasedTask {
            name: name.into(),
            phases,
            phase_index: 0,
            consumed_in_phase: 0.0,
            retired: 0.0,
        }
    }

    /// Index of the currently executing phase, or `None` when finished.
    pub fn current_phase(&self) -> Option<usize> {
        (self.phase_index < self.phases.len()).then_some(self.phase_index)
    }

    /// Total instruction budget across all phases.
    pub fn total_instructions(&self) -> f64 {
        self.phases.iter().map(|(b, _)| b).sum()
    }

    /// Instructions still to retire before the task finishes.
    // units: instruction counts are dimensionless; the `.0` below
    // projects a (budget, profile) phase tuple, not a unit newtype.
    pub fn remaining_instructions(&self) -> f64 {
        if self.phase_index >= self.phases.len() {
            return 0.0;
        }
        let current_left = self.phases[self.phase_index].0 - self.consumed_in_phase;
        let later: f64 = self.phases[self.phase_index + 1..]
            .iter()
            .map(|(b, _)| b)
            .sum();
        current_left + later
    }
}

impl Task for PhasedTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn profile(&self) -> Option<PhaseProfile> {
        self.phases.get(self.phase_index).map(|(_, p)| *p)
    }

    fn retire(&mut self, instructions: f64) {
        if !instructions.is_finite() || instructions <= 0.0 {
            return;
        }
        let mut left = instructions;
        while left > 0.0 && self.phase_index < self.phases.len() {
            let budget = self.phases[self.phase_index].0;
            let room = budget - self.consumed_in_phase;
            let eaten = left.min(room);
            self.consumed_in_phase += eaten;
            self.retired += eaten;
            left -= eaten;
            // Relative epsilon: accumulated float error from repeated
            // subtraction scales with the budget's magnitude.
            if self.consumed_in_phase >= budget - (budget * 1e-12).max(1e-9) {
                self.phase_index += 1;
                self.consumed_in_phase = 0.0;
            }
        }
    }

    fn retired(&self) -> f64 {
        self.retired
    }

    fn remaining_instructions(&self) -> Option<f64> {
        Some(PhasedTask::remaining_instructions(self))
    }

    fn snapshot_box(&self) -> Box<dyn Task> {
        Box::new(self.clone())
    }
}

/// An endless task cycling through a fixed sequence of phases.
///
/// Co-run interference kernels loop their algorithm for the whole
/// measurement (the paper pins them to a core for the duration of the web
/// page load); `CyclicTask` models that: when the last phase's budget is
/// consumed it wraps back to the first, forever.
///
/// # Example
///
/// ```
/// use dora_soc::task::{CyclicTask, PhaseProfile, Task};
///
/// let mut t = CyclicTask::new(
///     "kernel",
///     vec![
///         (100.0, PhaseProfile::compute_bound()),
///         (100.0, PhaseProfile::streaming(25.0)),
///     ],
/// );
/// t.retire(250.0); // wraps: ends 50 into the first phase again
/// assert!(!t.is_finished());
/// assert_eq!(t.completed_cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CyclicTask {
    name: String,
    phases: Vec<(f64, PhaseProfile)>,
    phase_index: usize,
    consumed_in_phase: f64,
    retired: f64,
    completed_cycles: u64,
}

impl CyclicTask {
    /// Creates an endless cyclic task.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any budget is non-positive, or any
    /// profile is invalid.
    #[allow(clippy::expect_used)] // constructor contract: documented # Panics
    pub fn new(name: impl Into<String>, phases: Vec<(f64, PhaseProfile)>) -> Self {
        assert!(!phases.is_empty(), "a cyclic task needs at least one phase");
        for (budget, profile) in &phases {
            assert!(
                budget.is_finite() && *budget > 0.0,
                "phase budget must be positive, got {budget}"
            );
            profile.validate().expect("invalid phase profile");
        }
        CyclicTask {
            name: name.into(),
            phases,
            phase_index: 0,
            consumed_in_phase: 0.0,
            retired: 0.0,
            completed_cycles: 0,
        }
    }

    /// How many full trips through the phase list have completed.
    pub fn completed_cycles(&self) -> u64 {
        self.completed_cycles
    }

    /// Index of the phase currently executing.
    pub fn current_phase(&self) -> usize {
        self.phase_index
    }
}

impl Task for CyclicTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn profile(&self) -> Option<PhaseProfile> {
        Some(self.phases[self.phase_index].1)
    }

    fn retire(&mut self, instructions: f64) {
        if !instructions.is_finite() || instructions <= 0.0 {
            return;
        }
        let mut left = instructions;
        // Bound the number of wraps so absurd over-delivery cannot spin.
        let mut guard = 0u32;
        while left > 0.0 && guard < 1_000_000 {
            guard += 1;
            let budget = self.phases[self.phase_index].0;
            let room = budget - self.consumed_in_phase;
            let eaten = left.min(room);
            self.consumed_in_phase += eaten;
            self.retired += eaten;
            left -= eaten;
            if self.consumed_in_phase >= budget - (budget * 1e-12).max(1e-9) {
                self.consumed_in_phase = 0.0;
                self.phase_index += 1;
                if self.phase_index == self.phases.len() {
                    self.phase_index = 0;
                    self.completed_cycles += 1;
                }
            }
        }
    }

    fn retired(&self) -> f64 {
        self.retired
    }

    fn snapshot_box(&self) -> Box<dyn Task> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_validation_catches_bad_fields() {
        let good = PhaseProfile::compute_bound();
        assert!(good.validate().is_ok());
        assert!(PhaseProfile {
            base_cpi: 0.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(PhaseProfile {
            l2_apki: -1.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(PhaseProfile {
            reuse_fraction: 1.5,
            ..good
        }
        .validate()
        .is_err());
        assert!(PhaseProfile {
            duty_cycle: 0.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(PhaseProfile {
            duty_cycle: 1.5,
            ..good
        }
        .validate()
        .is_err());
        assert!(PhaseProfile {
            working_set_bytes: f64::NAN,
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn loop_task_never_finishes() {
        let mut t = LoopTask::compute_bound("spin", 0.5);
        for _ in 0..100 {
            t.retire(1e6);
        }
        assert!(!t.is_finished());
        assert_eq!(t.retired(), 1e8);
        assert_eq!(t.profile().expect("looping").duty_cycle, 0.5);
    }

    #[test]
    fn loop_task_ignores_bad_retire_amounts() {
        let mut t = LoopTask::compute_bound("spin", 1.0);
        t.retire(-5.0);
        t.retire(f64::NAN);
        assert_eq!(t.retired(), 0.0);
    }

    #[test]
    fn phased_task_walks_phases_in_order() {
        let mut t = PhasedTask::new(
            "p",
            vec![
                (100.0, PhaseProfile::compute_bound()),
                (200.0, PhaseProfile::streaming(10.0)),
                (50.0, PhaseProfile::compute_bound()),
            ],
        );
        assert_eq!(t.total_instructions(), 350.0);
        assert_eq!(t.current_phase(), Some(0));
        t.retire(99.0);
        assert_eq!(t.current_phase(), Some(0));
        t.retire(1.0);
        assert_eq!(t.current_phase(), Some(1));
        assert!((t.remaining_instructions() - 250.0).abs() < 1e-9);
        t.retire(1000.0); // over-delivery is discarded
        assert!(t.is_finished());
        assert_eq!(t.profile(), None);
        assert!((t.retired() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn phased_task_crossing_boundary_in_one_retire() {
        let mut t = PhasedTask::new(
            "p",
            vec![
                (10.0, PhaseProfile::compute_bound()),
                (10.0, PhaseProfile::streaming(5.0)),
            ],
        );
        t.retire(15.0);
        assert_eq!(t.current_phase(), Some(1));
        assert!((t.remaining_instructions() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn phased_task_rejects_zero_budget() {
        let _ = PhasedTask::new("bad", vec![(0.0, PhaseProfile::compute_bound())]);
    }

    #[test]
    fn cyclic_task_wraps_and_counts_cycles() {
        let mut t = CyclicTask::new(
            "c",
            vec![
                (10.0, PhaseProfile::compute_bound()),
                (20.0, PhaseProfile::streaming(5.0)),
            ],
        );
        t.retire(35.0); // one full cycle (30) plus 5 into phase 0
        assert_eq!(t.completed_cycles(), 1);
        assert_eq!(t.current_phase(), 0);
        assert!(!t.is_finished());
        assert_eq!(t.retired(), 35.0);
        assert_eq!(t.remaining_instructions(), None);
    }

    #[test]
    fn cyclic_task_profile_follows_phase() {
        let mut t = CyclicTask::new(
            "c",
            vec![
                (10.0, PhaseProfile::compute_bound()),
                (10.0, PhaseProfile::streaming(50.0)),
            ],
        );
        let first = t.profile().expect("endless").l2_apki;
        t.retire(10.0);
        let second = t.profile().expect("endless").l2_apki;
        assert!(second > first);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn cyclic_task_rejects_empty() {
        let _ = CyclicTask::new("c", vec![]);
    }

    #[test]
    fn streaming_profile_is_memory_heavy() {
        let p = PhaseProfile::streaming(40.0);
        assert!(p.l2_apki > PhaseProfile::compute_bound().l2_apki);
        assert!(p.reuse_fraction < 0.5);
        assert!(p.validate().is_ok());
    }
}
