//! # dora-soc
//!
//! A software stand-in for the Google Nexus 5 hardware the DORA paper
//! evaluates on. The crate models the pieces of an MSM8974-class SoC whose
//! interactions the paper's governor exploits:
//!
//! * [`dvfs`] — the 14-entry operating-performance-point (OPP) table with a
//!   voltage map and the piecewise core→memory-bus frequency mapping the
//!   paper builds piecewise regression models around.
//! * [`task`] — the workload abstraction: a task exposes a phase profile
//!   (base CPI, L2 accesses per kilo-instruction, working set, duty cycle)
//!   and retires instructions handed to it by a core.
//! * [`cache`] — the shared 2 MB L2 occupancy-contention model: co-running
//!   tasks steal cache occupancy in proportion to their access rates,
//!   raising each other's miss ratios.
//! * [`memory`] — the LPDDR3 bandwidth/queuing model: aggregate miss
//!   traffic drives DRAM utilization, which inflates miss latency.
//! * [`thermal`] — a lumped RC thermal node with configurable ambient.
//! * [`power`] — whole-device power: platform floor (display etc.), per-core
//!   dynamic `util·C·V²·f`, DRAM access energy, and the Liao et al.
//!   temperature/voltage leakage model the paper adopts as Eq. 5.
//! * [`profile`] — the SoC profile registry: named platform descriptions
//!   (`msm8974`, `biglittle-a15a7`) with per-cluster DVFS tables, power
//!   coefficients, task-to-cluster affinity, and a cited migration-cost
//!   model — the `--soc <name>` axis of every layer above.
//! * [`counters`] — the `perf`-style counters governors sample: retired
//!   instructions, busy cycles, L2 accesses/misses, per-core utilization.
//! * [`contention`] — the pure per-quantum fixed point coupling
//!   instruction rates, cache shares, and DRAM queuing latency.
//! * [`board`] — the assembled platform stepped in fixed quanta, with DVFS
//!   switch overhead accounting, a typed probe bus for observation, and
//!   [`snapshot`] checkpoint/fork support.
//!
//! The timing model is quantum-stepped (default 1 ms) rather than
//! cycle-accurate: per quantum each busy core retires
//! `f·dt / CPI_eff` instructions, where
//! `CPI_eff = CPI_base + MPI_L2 · miss_latency_cycles · overlap`.
//! Miss ratio and miss latency come from the cache and memory contention
//! models, so interference genuinely propagates into load time and energy —
//! the phenomenon the whole paper is about.
//!
//! # Example
//!
//! ```
//! use dora_soc::board::Board;
//! use dora_soc::task::LoopTask;
//! use dora_soc::SocProfile;
//! use dora_sim_core::SimDuration;
//!
//! let mut board = Board::new(SocProfile::msm8974().board_config(), 42);
//! board.assign(0, Box::new(LoopTask::compute_bound("spin", 1.0)))?;
//! let top = board.config().dvfs.max_frequency();
//! board.set_frequency(top)?;
//! board.step(SimDuration::from_millis(10));
//! assert!(board.counters(0).instructions > 0.0);
//! # Ok::<(), dora_soc::BoardError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod board;
pub mod cache;
pub mod config;
pub mod contention;
pub mod counters;
pub mod dvfs;
pub mod memory;
pub mod power;
pub mod profile;
pub mod snapshot;
pub mod task;
pub mod thermal;
mod trace_compat;

pub use board::{Board, BoardConfig, BoardError};
pub use dvfs::{BusTier, DvfsTable, Frequency, Opp};
pub use profile::{ClusterConfig, ClusterId, MigrationCost, OperatingPoint, SocProfile};
pub use snapshot::BoardSnapshot;
pub use task::{PhaseProfile, Task};
