//! Whole-device power model.
//!
//! The paper's DAQ measurements cover *the entire smartphone* — display,
//! application processor, storage, "and all other active components"
//! (Section IV-A) — which is why energy-efficiency gains translate directly
//! to battery life, and why the most energy-efficient frequency `fE` sits in
//! the middle of the range: at low frequency the fixed platform power
//! dominates a long-running load (race-to-idle), at high frequency dynamic
//! `C·V²·f` and hot leakage dominate.
//!
//! Components:
//!
//! * **platform floor** — display at browsing brightness plus rails, radios
//!   idle: a constant.
//! * **core dynamic** — `util · C_eff · V² · f` per core.
//! * **uncore dynamic** — interconnect/L2 clock tree, proportional to the
//!   core clock while any core is active.
//! * **DRAM** — energy per byte moved; this term is what makes interference
//!   cost extra *energy*, not just time (Fig. 2b's `E_Δ`).
//! * **leakage** — the paper's Eq. 5 (Liao–He–Lepak form):
//!   `P_lkg = k1·v·T²·e^((α·v+β)/T) + k2·e^(γ·v+δ)` with `T` in kelvin.

use crate::dvfs::Opp;
use dora_sim_core::units::{Celsius, Watts};

// Ground-truth Nexus 5 model coefficients. This module is a designated
// constants module (`[constants] modules` in xtask/xtask.toml): every
// value states its provenance and `xtask lint` keeps it that way.

/// Eq. 5 subthreshold-term scale `k1`.
const NEXUS5_K1: f64 = 0.22; // paper: Eq. 5; tuned to ~0.15 W at (0.80 V, 35 °C)
/// Eq. 5 voltage slope `α` inside the exponential, kelvin per volt.
const NEXUS5_ALPHA: f64 = 800.0; // paper: Eq. 5
/// Eq. 5 exponential offset `β`, kelvin.
const NEXUS5_BETA: f64 = -4300.0; // paper: Eq. 5
/// Eq. 5 gate-term scale `k2`.
const NEXUS5_K2: f64 = 0.05; // paper: Eq. 5; tuned to ~1.2 W at (1.10 V, 65 °C)
/// Eq. 5 gate-term voltage slope `γ`.
const NEXUS5_GAMMA: f64 = 2.0; // paper: Eq. 5
/// Eq. 5 gate-term offset `δ`.
const NEXUS5_DELTA: f64 = -2.0; // paper: Eq. 5
/// Constant whole-device platform power, watts.
const NEXUS5_PLATFORM_FLOOR_W: f64 = 1.45; // paper: Section IV-A whole-phone DAQ floor
/// Effective switching capacitance per Krait 400 core, farads.
const NEXUS5_CEFF_CORE_F: f64 = 0.30e-9; // paper: Section II Snapdragon 800; C·V²·f fit
/// Uncore dynamic power per GHz of core clock, watts.
const NEXUS5_UNCORE_W_PER_GHZ: f64 = 0.18; // paper: Section IV SoC-minus-core residual
/// DRAM energy per byte moved, joules.
const NEXUS5_DRAM_J_PER_BYTE: f64 = 150.0e-12; // paper: Fig. 2b interference energy E_Δ

/// Parameters of the Eq. 5 leakage model.
///
/// `P_lkg(v, T) = k1·v·T²·exp((α·v + β)/T) + k2·exp(γ·v + δ)`, `T` in
/// kelvin, result in watts for the whole SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageParams {
    /// Scale of the temperature-dependent subthreshold term.
    pub k1: f64,
    /// Voltage slope inside the exponential (kelvin per volt).
    pub alpha: f64,
    /// Offset inside the exponential (kelvin).
    pub beta: f64,
    /// Scale of the temperature-independent (gate) term.
    pub k2: f64,
    /// Voltage slope of the gate term.
    pub gamma: f64,
    /// Offset of the gate term.
    pub delta: f64,
}

impl LeakageParams {
    /// Ground-truth parameters for the simulated SoC, tuned so leakage is
    /// ≈0.15 W at (0.80 V, 35 °C) and ≈1.2 W at (1.10 V, 65 °C) — a strong
    /// enough temperature dependence to reproduce the paper's Fig. 10.
    pub fn nexus5() -> Self {
        LeakageParams {
            k1: NEXUS5_K1,
            alpha: NEXUS5_ALPHA,
            beta: NEXUS5_BETA,
            k2: NEXUS5_K2,
            gamma: NEXUS5_GAMMA,
            delta: NEXUS5_DELTA,
        }
    }

    /// Evaluates the leakage power at supply `voltage` (volts) and die
    /// temperature `temp`.
    pub fn power(&self, voltage: f64, temp: Celsius) -> Watts {
        let t = temp.to_kelvin();
        if t <= 0.0 || !voltage.is_finite() || voltage <= 0.0 {
            return Watts::ZERO;
        }
        let sub = self.k1 * voltage * t * t * ((self.alpha * voltage + self.beta) / t).exp();
        let gate = self.k2 * (self.gamma * voltage + self.delta).exp();
        Watts::new((sub + gate).max(0.0))
    }
}

/// Parameters of the whole-device power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Constant platform power (display at browsing brightness, rails,
    /// idle radios).
    pub platform_floor: Watts,
    /// Effective switching capacitance per core in farads.
    pub ceff_core_f: f64,
    /// Uncore dynamic power per GHz of core clock, in watts, scaled by
    /// the mean core utilization (interconnect/L2 clock activity tracks
    /// total traffic, not any single core).
    pub uncore_w_per_ghz: f64,
    /// DRAM energy per byte moved, in joules.
    pub dram_j_per_byte: f64,
    /// Eq. 5 leakage parameters.
    pub leakage: LeakageParams,
}

impl PowerParams {
    /// Nexus-5-like defaults.
    pub fn nexus5() -> Self {
        PowerParams {
            platform_floor: Watts::new(NEXUS5_PLATFORM_FLOOR_W),
            ceff_core_f: NEXUS5_CEFF_CORE_F,
            uncore_w_per_ghz: NEXUS5_UNCORE_W_PER_GHZ,
            dram_j_per_byte: NEXUS5_DRAM_J_PER_BYTE,
            leakage: LeakageParams::nexus5(),
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("platform_floor", self.platform_floor.value()),
            ("ceff_core_f", self.ceff_core_f),
            ("uncore_w_per_ghz", self.uncore_w_per_ghz),
            ("dram_j_per_byte", self.dram_j_per_byte),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative and finite, got {v}"));
            }
        }
        Ok(())
    }
}

/// Itemized power at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Constant platform (display etc.) power.
    pub platform: Watts,
    /// Sum of per-core dynamic power.
    pub core_dynamic: Watts,
    /// Uncore/interconnect dynamic power.
    pub uncore: Watts,
    /// DRAM traffic power.
    pub dram: Watts,
    /// Eq. 5 leakage power.
    pub leakage: Watts,
}

impl PowerBreakdown {
    /// Total device power.
    pub fn total(&self) -> Watts {
        self.platform + self.core_dynamic + self.uncore + self.dram + self.leakage
    }

    /// The SoC-only share (everything except the platform floor) — the
    /// portion that heats the die.
    pub fn soc(&self) -> Watts {
        self.core_dynamic + self.uncore + self.leakage + self.dram * 0.5
    }
}

/// The power model.
///
/// # Example
///
/// ```
/// use dora_sim_core::units::Celsius;
/// use dora_soc::dvfs::DvfsTable;
/// use dora_soc::power::{PowerModel, PowerParams};
///
/// let model = PowerModel::new(PowerParams::nexus5()).expect("valid params");
/// let table = DvfsTable::default();
/// let t = Celsius::new(40.0);
/// let low = model.evaluate(table.opp(0), &[1.0, 0.0, 0.0, 0.0], 0.0, t);
/// let high = model.evaluate(table.opp(13), &[1.0, 0.0, 0.0, 0.0], 0.0, t);
/// assert!(high.total() > low.total());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    params: PowerParams,
}

impl PowerModel {
    /// Creates a model after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for out-of-domain parameters.
    pub fn new(params: PowerParams) -> Result<Self, String> {
        params.validate()?;
        Ok(PowerModel { params })
    }

    /// The configured parameters.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Evaluates instantaneous device power.
    ///
    /// * `opp` — the active operating point (frequency + voltage).
    /// * `core_utilizations` — busy fraction per core in `[0, 1]`; powered
    ///   off cores should be 0.
    /// * `dram_bytes_per_sec` — aggregate DRAM traffic.
    /// * `temp` — die temperature for the leakage term.
    pub fn evaluate(
        &self,
        opp: Opp,
        core_utilizations: &[f64],
        dram_bytes_per_sec: f64,
        temp: Celsius,
    ) -> PowerBreakdown {
        let p = &self.params;
        let v = opp.voltage;
        let f_hz = opp.frequency.as_hz();
        let core_dynamic: f64 = core_utilizations
            .iter()
            .map(|u| u.clamp(0.0, 1.0) * p.ceff_core_f * v * v * f_hz)
            .sum();
        let mean_util = if core_utilizations.is_empty() {
            0.0
        } else {
            core_utilizations
                .iter()
                .map(|u| u.clamp(0.0, 1.0))
                .sum::<f64>()
                / core_utilizations.len() as f64
        };
        let uncore = p.uncore_w_per_ghz * opp.frequency.as_ghz() * mean_util;
        let dram = p.dram_j_per_byte * dram_bytes_per_sec.max(0.0);
        let leakage = p.leakage.power(v, temp);
        PowerBreakdown {
            platform: p.platform_floor,
            core_dynamic: Watts::new(core_dynamic),
            uncore: Watts::new(uncore),
            dram: Watts::new(dram),
            leakage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsTable;

    fn model() -> PowerModel {
        PowerModel::new(PowerParams::nexus5()).expect("valid")
    }

    fn c(t: f64) -> Celsius {
        Celsius::new(t)
    }

    #[test]
    fn leakage_anchor_points() {
        let lk = LeakageParams::nexus5();
        let cold_low = lk.power(0.80, c(35.0)).value();
        let hot_high = lk.power(1.10, c(65.0)).value();
        assert!((0.10..0.25).contains(&cold_low), "low anchor {cold_low}");
        assert!((0.8..1.6).contains(&hot_high), "high anchor {hot_high}");
    }

    #[test]
    fn leakage_monotone_in_temperature_and_voltage() {
        let lk = LeakageParams::nexus5();
        let mut last = 0.0;
        for t in [20.0, 35.0, 50.0, 65.0, 80.0] {
            let p = lk.power(1.0, c(t)).value();
            assert!(p > last, "leakage must rise with temperature");
            last = p;
        }
        let mut last = 0.0;
        for v in [0.8, 0.9, 1.0, 1.1] {
            let p = lk.power(v, c(50.0)).value();
            assert!(p > last, "leakage must rise with voltage");
            last = p;
        }
    }

    #[test]
    fn leakage_handles_degenerate_inputs() {
        let lk = LeakageParams::nexus5();
        assert_eq!(lk.power(0.0, c(40.0)), Watts::ZERO);
        assert_eq!(lk.power(-1.0, c(40.0)), Watts::ZERO);
        assert_eq!(lk.power(1.0, c(-300.0)), Watts::ZERO);
        assert_eq!(lk.power(f64::NAN, c(40.0)), Watts::ZERO);
    }

    #[test]
    fn dynamic_power_scales_with_v_squared_f() {
        let m = model();
        let t = DvfsTable::default();
        let lo = m.evaluate(t.opp(0), &[1.0], 0.0, c(40.0));
        let hi = m.evaluate(t.opp(13), &[1.0], 0.0, c(40.0));
        let lo_opp = t.opp(0);
        let hi_opp = t.opp(13);
        let expected_ratio = (hi_opp.voltage / lo_opp.voltage).powi(2)
            * (hi_opp.frequency.as_hz() / lo_opp.frequency.as_hz());
        let actual_ratio = hi.core_dynamic.value() / lo.core_dynamic.value();
        assert!((actual_ratio - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn idle_cores_draw_no_dynamic_power() {
        let m = model();
        let t = DvfsTable::default();
        let b = m.evaluate(t.opp(10), &[0.0, 0.0, 0.0, 0.0], 0.0, c(40.0));
        assert_eq!(b.core_dynamic, Watts::ZERO);
        assert_eq!(b.uncore, Watts::ZERO);
        assert!(b.platform > Watts::ZERO);
        assert!(b.leakage > Watts::ZERO);
    }

    #[test]
    fn dram_term_scales_with_traffic() {
        let m = model();
        let t = DvfsTable::default();
        let quiet = m.evaluate(t.opp(5), &[1.0], 1e8, c(40.0));
        let busy = m.evaluate(t.opp(5), &[1.0], 4e9, c(40.0));
        assert!((busy.dram / quiet.dram - 40.0).abs() < 1e-9);
    }

    #[test]
    fn whole_device_power_is_plausible() {
        let m = model();
        let t = DvfsTable::default();
        // Browser on two cores + co-runner at max frequency, warm die,
        // heavy DRAM traffic: a Nexus 5 pulls 3–6 W in this regime.
        let peak = m.evaluate(t.opp(13), &[1.0, 0.8, 1.0, 0.0], 3e9, c(60.0));
        assert!(
            (3.0..6.5).contains(&peak.total().value()),
            "peak power {}",
            peak.total()
        );
        // Idle at minimum frequency: dominated by the platform floor.
        let idle = m.evaluate(t.opp(0), &[0.0, 0.0, 0.0, 0.0], 0.0, c(30.0));
        assert!(
            (1.3..1.8).contains(&idle.total().value()),
            "idle power {}",
            idle.total()
        );
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let m = model();
        let t = DvfsTable::default();
        let b = m.evaluate(t.opp(7), &[0.5, 0.5], 1e9, c(45.0));
        let sum = b.platform + b.core_dynamic + b.uncore + b.dram + b.leakage;
        assert!((b.total() - sum).value().abs() < 1e-12);
        assert!(b.soc() < b.total());
    }

    #[test]
    fn utilization_is_clamped() {
        let m = model();
        let t = DvfsTable::default();
        let a = m.evaluate(t.opp(5), &[2.0], 0.0, c(40.0));
        let b = m.evaluate(t.opp(5), &[1.0], 0.0, c(40.0));
        assert_eq!(a.core_dynamic, b.core_dynamic);
        let z = m.evaluate(t.opp(5), &[-1.0], 0.0, c(40.0));
        assert_eq!(z.core_dynamic, Watts::ZERO);
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = PowerParams {
            platform_floor: Watts::new(-1.0),
            ..PowerParams::nexus5()
        };
        assert!(PowerModel::new(bad).is_err());
    }
}
