//! Whole-device power model.
//!
//! The paper's DAQ measurements cover *the entire smartphone* — display,
//! application processor, storage, "and all other active components"
//! (Section IV-A) — which is why energy-efficiency gains translate directly
//! to battery life, and why the most energy-efficient frequency `fE` sits in
//! the middle of the range: at low frequency the fixed platform power
//! dominates a long-running load (race-to-idle), at high frequency dynamic
//! `C·V²·f` and hot leakage dominate.
//!
//! Components:
//!
//! * **platform floor** — display at browsing brightness plus rails, radios
//!   idle: a constant.
//! * **core dynamic** — `util · C_eff · V² · f` per core.
//! * **uncore dynamic** — interconnect/L2 clock tree, proportional to the
//!   core clock while any core is active.
//! * **DRAM** — energy per byte moved; this term is what makes interference
//!   cost extra *energy*, not just time (Fig. 2b's `E_Δ`).
//! * **leakage** — the paper's Eq. 5 (Liao–He–Lepak form):
//!   `P_lkg = k1·v·T²·e^((α·v+β)/T) + k2·e^(γ·v+δ)` with `T` in kelvin.

use crate::dvfs::Opp;

/// Parameters of the Eq. 5 leakage model.
///
/// `P_lkg(v, T) = k1·v·T²·exp((α·v + β)/T) + k2·exp(γ·v + δ)`, `T` in
/// kelvin, result in watts for the whole SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageParams {
    /// Scale of the temperature-dependent subthreshold term.
    pub k1: f64,
    /// Voltage slope inside the exponential (kelvin per volt).
    pub alpha: f64,
    /// Offset inside the exponential (kelvin).
    pub beta: f64,
    /// Scale of the temperature-independent (gate) term.
    pub k2: f64,
    /// Voltage slope of the gate term.
    pub gamma: f64,
    /// Offset of the gate term.
    pub delta: f64,
}

impl LeakageParams {
    /// Ground-truth parameters for the simulated SoC, tuned so leakage is
    /// ≈0.15 W at (0.80 V, 35 °C) and ≈1.2 W at (1.10 V, 65 °C) — a strong
    /// enough temperature dependence to reproduce the paper's Fig. 10.
    pub fn nexus5() -> Self {
        LeakageParams {
            k1: 0.22,
            alpha: 800.0,
            beta: -4300.0,
            k2: 0.05,
            gamma: 2.0,
            delta: -2.0,
        }
    }

    /// Evaluates the leakage power in watts at supply `voltage` (volts)
    /// and die temperature `temp_c` (°C).
    pub fn power_w(&self, voltage: f64, temp_c: f64) -> f64 {
        let t = temp_c + 273.15;
        if t <= 0.0 || !voltage.is_finite() || voltage <= 0.0 {
            return 0.0;
        }
        let sub = self.k1 * voltage * t * t * ((self.alpha * voltage + self.beta) / t).exp();
        let gate = self.k2 * (self.gamma * voltage + self.delta).exp();
        (sub + gate).max(0.0)
    }
}

/// Parameters of the whole-device power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Constant platform power (display at browsing brightness, rails,
    /// idle radios) in watts.
    pub platform_floor_w: f64,
    /// Effective switching capacitance per core in farads.
    pub ceff_core_f: f64,
    /// Uncore dynamic power per GHz of core clock, in watts, scaled by
    /// the mean core utilization (interconnect/L2 clock activity tracks
    /// total traffic, not any single core).
    pub uncore_w_per_ghz: f64,
    /// DRAM energy per byte moved, in joules.
    pub dram_j_per_byte: f64,
    /// Eq. 5 leakage parameters.
    pub leakage: LeakageParams,
}

impl PowerParams {
    /// Nexus-5-like defaults.
    pub fn nexus5() -> Self {
        PowerParams {
            platform_floor_w: 1.45,
            ceff_core_f: 0.30e-9,
            uncore_w_per_ghz: 0.18,
            dram_j_per_byte: 150.0e-12,
            leakage: LeakageParams::nexus5(),
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("platform_floor_w", self.platform_floor_w),
            ("ceff_core_f", self.ceff_core_f),
            ("uncore_w_per_ghz", self.uncore_w_per_ghz),
            ("dram_j_per_byte", self.dram_j_per_byte),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative and finite, got {v}"));
            }
        }
        Ok(())
    }
}

/// Itemized power at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Constant platform (display etc.) watts.
    pub platform_w: f64,
    /// Sum of per-core dynamic watts.
    pub core_dynamic_w: f64,
    /// Uncore/interconnect dynamic watts.
    pub uncore_w: f64,
    /// DRAM traffic watts.
    pub dram_w: f64,
    /// Eq. 5 leakage watts.
    pub leakage_w: f64,
}

impl PowerBreakdown {
    /// Total device power in watts.
    pub fn total_w(&self) -> f64 {
        self.platform_w + self.core_dynamic_w + self.uncore_w + self.dram_w + self.leakage_w
    }

    /// The SoC-only share (everything except the platform floor) — the
    /// portion that heats the die.
    pub fn soc_w(&self) -> f64 {
        self.core_dynamic_w + self.uncore_w + self.leakage_w + self.dram_w * 0.5
    }
}

/// The power model.
///
/// # Example
///
/// ```
/// use dora_soc::dvfs::DvfsTable;
/// use dora_soc::power::{PowerModel, PowerParams};
///
/// let model = PowerModel::new(PowerParams::nexus5()).expect("valid params");
/// let table = DvfsTable::msm8974();
/// let low = model.evaluate(table.opp(0), &[1.0, 0.0, 0.0, 0.0], 0.0, 40.0);
/// let high = model.evaluate(table.opp(13), &[1.0, 0.0, 0.0, 0.0], 0.0, 40.0);
/// assert!(high.total_w() > low.total_w());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    params: PowerParams,
}

impl PowerModel {
    /// Creates a model after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for out-of-domain parameters.
    pub fn new(params: PowerParams) -> Result<Self, String> {
        params.validate()?;
        Ok(PowerModel { params })
    }

    /// The configured parameters.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Evaluates instantaneous device power.
    ///
    /// * `opp` — the active operating point (frequency + voltage).
    /// * `core_utilizations` — busy fraction per core in `[0, 1]`; powered
    ///   off cores should be 0.
    /// * `dram_bytes_per_sec` — aggregate DRAM traffic.
    /// * `temp_c` — die temperature for the leakage term.
    pub fn evaluate(
        &self,
        opp: Opp,
        core_utilizations: &[f64],
        dram_bytes_per_sec: f64,
        temp_c: f64,
    ) -> PowerBreakdown {
        let p = &self.params;
        let v = opp.voltage;
        let f_hz = opp.frequency.as_hz();
        let core_dynamic_w: f64 = core_utilizations
            .iter()
            .map(|u| u.clamp(0.0, 1.0) * p.ceff_core_f * v * v * f_hz)
            .sum();
        let mean_util = if core_utilizations.is_empty() {
            0.0
        } else {
            core_utilizations
                .iter()
                .map(|u| u.clamp(0.0, 1.0))
                .sum::<f64>()
                / core_utilizations.len() as f64
        };
        let uncore_w = p.uncore_w_per_ghz * opp.frequency.as_ghz() * mean_util;
        let dram_w = p.dram_j_per_byte * dram_bytes_per_sec.max(0.0);
        let leakage_w = p.leakage.power_w(v, temp_c);
        PowerBreakdown {
            platform_w: p.platform_floor_w,
            core_dynamic_w,
            uncore_w,
            dram_w,
            leakage_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsTable;

    fn model() -> PowerModel {
        PowerModel::new(PowerParams::nexus5()).expect("valid")
    }

    #[test]
    fn leakage_anchor_points() {
        let lk = LeakageParams::nexus5();
        let cold_low = lk.power_w(0.80, 35.0);
        let hot_high = lk.power_w(1.10, 65.0);
        assert!((0.10..0.25).contains(&cold_low), "low anchor {cold_low}");
        assert!((0.8..1.6).contains(&hot_high), "high anchor {hot_high}");
    }

    #[test]
    fn leakage_monotone_in_temperature_and_voltage() {
        let lk = LeakageParams::nexus5();
        let mut last = 0.0;
        for t in [20.0, 35.0, 50.0, 65.0, 80.0] {
            let p = lk.power_w(1.0, t);
            assert!(p > last, "leakage must rise with temperature");
            last = p;
        }
        let mut last = 0.0;
        for v in [0.8, 0.9, 1.0, 1.1] {
            let p = lk.power_w(v, 50.0);
            assert!(p > last, "leakage must rise with voltage");
            last = p;
        }
    }

    #[test]
    fn leakage_handles_degenerate_inputs() {
        let lk = LeakageParams::nexus5();
        assert_eq!(lk.power_w(0.0, 40.0), 0.0);
        assert_eq!(lk.power_w(-1.0, 40.0), 0.0);
        assert_eq!(lk.power_w(1.0, -300.0), 0.0);
        assert_eq!(lk.power_w(f64::NAN, 40.0), 0.0);
    }

    #[test]
    fn dynamic_power_scales_with_v_squared_f() {
        let m = model();
        let t = DvfsTable::msm8974();
        let lo = m.evaluate(t.opp(0), &[1.0], 0.0, 40.0);
        let hi = m.evaluate(t.opp(13), &[1.0], 0.0, 40.0);
        let lo_opp = t.opp(0);
        let hi_opp = t.opp(13);
        let expected_ratio = (hi_opp.voltage / lo_opp.voltage).powi(2)
            * (hi_opp.frequency.as_hz() / lo_opp.frequency.as_hz());
        let actual_ratio = hi.core_dynamic_w / lo.core_dynamic_w;
        assert!((actual_ratio - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn idle_cores_draw_no_dynamic_power() {
        let m = model();
        let t = DvfsTable::msm8974();
        let b = m.evaluate(t.opp(10), &[0.0, 0.0, 0.0, 0.0], 0.0, 40.0);
        assert_eq!(b.core_dynamic_w, 0.0);
        assert_eq!(b.uncore_w, 0.0);
        assert!(b.platform_w > 0.0);
        assert!(b.leakage_w > 0.0);
    }

    #[test]
    fn dram_term_scales_with_traffic() {
        let m = model();
        let t = DvfsTable::msm8974();
        let quiet = m.evaluate(t.opp(5), &[1.0], 1e8, 40.0);
        let busy = m.evaluate(t.opp(5), &[1.0], 4e9, 40.0);
        assert!((busy.dram_w / quiet.dram_w - 40.0).abs() < 1e-9);
    }

    #[test]
    fn whole_device_power_is_plausible() {
        let m = model();
        let t = DvfsTable::msm8974();
        // Browser on two cores + co-runner at max frequency, warm die,
        // heavy DRAM traffic: a Nexus 5 pulls 3–6 W in this regime.
        let peak = m.evaluate(t.opp(13), &[1.0, 0.8, 1.0, 0.0], 3e9, 60.0);
        assert!(
            (3.0..6.5).contains(&peak.total_w()),
            "peak power {}",
            peak.total_w()
        );
        // Idle at minimum frequency: dominated by the platform floor.
        let idle = m.evaluate(t.opp(0), &[0.0, 0.0, 0.0, 0.0], 0.0, 30.0);
        assert!(
            (1.3..1.8).contains(&idle.total_w()),
            "idle power {}",
            idle.total_w()
        );
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let m = model();
        let t = DvfsTable::msm8974();
        let b = m.evaluate(t.opp(7), &[0.5, 0.5], 1e9, 45.0);
        let sum = b.platform_w + b.core_dynamic_w + b.uncore_w + b.dram_w + b.leakage_w;
        assert!((b.total_w() - sum).abs() < 1e-12);
        assert!(b.soc_w() < b.total_w());
    }

    #[test]
    fn utilization_is_clamped() {
        let m = model();
        let t = DvfsTable::msm8974();
        let a = m.evaluate(t.opp(5), &[2.0], 0.0, 40.0);
        let b = m.evaluate(t.opp(5), &[1.0], 0.0, 40.0);
        assert_eq!(a.core_dynamic_w, b.core_dynamic_w);
        let c = m.evaluate(t.opp(5), &[-1.0], 0.0, 40.0);
        assert_eq!(c.core_dynamic_w, 0.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = PowerParams {
            platform_floor_w: -1.0,
            ..PowerParams::nexus5()
        };
        assert!(PowerModel::new(bad).is_err());
    }
}
