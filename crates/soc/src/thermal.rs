//! Lumped-RC thermal model.
//!
//! Smartphones have no active cooling, so sustained SoC power raises die
//! temperature, which raises leakage, which raises power — a feedback loop
//! the paper shows can move the optimal frequency (Fig. 10: fopt shifts
//! from 1.9 to 1.7 GHz between cold and room ambient because leakage grows
//! steeply at the hot, high-voltage end).
//!
//! The die is a single thermal node with resistance `R` (K/W) to ambient
//! and time constant `τ = R·C`:
//!
//! ```text
//! T_ss = T_amb + P·R,      T(t+dt) = T_ss + (T(t) − T_ss)·exp(−dt/τ)
//! ```

/// Parameters of the thermal node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance in kelvin per watt.
    pub resistance_k_per_w: f64,
    /// RC time constant in seconds.
    pub time_constant_s: f64,
    /// Ambient temperature in °C.
    pub ambient_c: f64,
}

impl ThermalParams {
    /// Nexus-5-like defaults at room ambient: R chosen so the maximum
    /// sustained SoC power lands near the 65 °C the paper reports at
    /// 1.9 GHz, with a ~8 s settling time constant.
    pub fn nexus5_room() -> Self {
        ThermalParams {
            resistance_k_per_w: 13.0,
            time_constant_s: 8.0,
            ambient_c: 25.0,
        }
    }

    /// The cold-ambient condition used by the paper's Fig. 10(b)
    /// ("low ambient temperature").
    pub fn nexus5_cold() -> Self {
        ThermalParams {
            ambient_c: 5.0,
            ..ThermalParams::nexus5_room()
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.resistance_k_per_w.is_finite() && self.resistance_k_per_w > 0.0) {
            return Err(format!(
                "bad thermal resistance {}",
                self.resistance_k_per_w
            ));
        }
        if !(self.time_constant_s.is_finite() && self.time_constant_s > 0.0) {
            return Err(format!("bad time constant {}", self.time_constant_s));
        }
        if !(self.ambient_c.is_finite() && (-40.0..=60.0).contains(&self.ambient_c)) {
            return Err(format!("implausible ambient {} °C", self.ambient_c));
        }
        Ok(())
    }
}

/// The die temperature state.
///
/// # Example
///
/// ```
/// use dora_soc::thermal::{ThermalNode, ThermalParams};
///
/// let mut node = ThermalNode::new(ThermalParams::nexus5_room());
/// assert_eq!(node.temperature_c(), 25.0);
/// // 3 W sustained for a long time settles at ambient + P·R.
/// for _ in 0..10_000 {
///     node.step(3.0, 0.01);
/// }
/// let expected = 25.0 + 3.0 * node.params().resistance_k_per_w;
/// assert!((node.temperature_c() - expected).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNode {
    params: ThermalParams,
    temperature_c: f64,
    peak_c: f64,
}

impl ThermalNode {
    /// Creates a node initialized to ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    pub fn new(params: ThermalParams) -> Self {
        params.validate().expect("invalid thermal parameters");
        ThermalNode {
            params,
            temperature_c: params.ambient_c,
            peak_c: params.ambient_c,
        }
    }

    /// Advances the node by `dt_s` seconds under `soc_power_w` watts of
    /// heat (SoC power only — the display's heat path is separate and
    /// excluded, as in the paper's CPU-focused thermal discussion).
    ///
    /// Negative or non-finite power is treated as zero.
    pub fn step(&mut self, soc_power_w: f64, dt_s: f64) {
        if dt_s <= 0.0 || !dt_s.is_finite() {
            return;
        }
        let p = if soc_power_w.is_finite() {
            soc_power_w.max(0.0)
        } else {
            0.0
        };
        let t_ss = self.params.ambient_c + p * self.params.resistance_k_per_w;
        let decay = (-dt_s / self.params.time_constant_s).exp();
        self.temperature_c = t_ss + (self.temperature_c - t_ss) * decay;
        self.peak_c = self.peak_c.max(self.temperature_c);
    }

    /// Current die temperature in °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Current die temperature in kelvin.
    pub fn temperature_k(&self) -> f64 {
        self.temperature_c + 273.15
    }

    /// The hottest temperature seen so far.
    pub fn peak_c(&self) -> f64 {
        self.peak_c
    }

    /// The configured parameters.
    pub fn params(&self) -> ThermalParams {
        self.params
    }

    /// Changes the ambient temperature (e.g. moving the phone outdoors);
    /// the die temperature then relaxes toward the new steady state.
    ///
    /// # Panics
    ///
    /// Panics if the resulting parameters fail validation.
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        let next = ThermalParams {
            ambient_c,
            ..self.params
        };
        next.validate().expect("invalid ambient");
        self.params = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient() {
        let node = ThermalNode::new(ThermalParams::nexus5_room());
        assert_eq!(node.temperature_c(), 25.0);
        assert_eq!(node.temperature_k(), 298.15);
    }

    #[test]
    fn settles_at_ambient_plus_pr() {
        let params = ThermalParams::nexus5_room();
        let mut node = ThermalNode::new(params);
        for _ in 0..100_000 {
            node.step(2.0, 0.01);
        }
        let expected = 25.0 + 2.0 * params.resistance_k_per_w;
        assert!((node.temperature_c() - expected).abs() < 0.01);
    }

    #[test]
    fn time_constant_governs_approach() {
        let params = ThermalParams::nexus5_room();
        let mut node = ThermalNode::new(params);
        // One time constant of heating at 1 W: should cover ~63% of the gap.
        let steps = (params.time_constant_s / 0.001) as usize;
        for _ in 0..steps {
            node.step(1.0, 0.001);
        }
        let frac = (node.temperature_c() - 25.0) / params.resistance_k_per_w;
        assert!((frac - 0.632).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn cooling_when_power_drops() {
        let mut node = ThermalNode::new(ThermalParams::nexus5_room());
        for _ in 0..10_000 {
            node.step(3.0, 0.01);
        }
        let hot = node.temperature_c();
        for _ in 0..10_000 {
            node.step(0.0, 0.01);
        }
        assert!(node.temperature_c() < hot);
        assert!((node.temperature_c() - 25.0).abs() < 0.1);
        assert!((node.peak_c() - hot).abs() < 1e-9);
    }

    #[test]
    fn cold_ambient_runs_cooler() {
        let mut room = ThermalNode::new(ThermalParams::nexus5_room());
        let mut cold = ThermalNode::new(ThermalParams::nexus5_cold());
        for _ in 0..50_000 {
            room.step(2.5, 0.01);
            cold.step(2.5, 0.01);
        }
        assert!((room.temperature_c() - cold.temperature_c() - 20.0).abs() < 0.1);
    }

    #[test]
    fn ignores_bad_inputs() {
        let mut node = ThermalNode::new(ThermalParams::nexus5_room());
        node.step(f64::NAN, 1.0);
        node.step(-5.0, 1.0);
        node.step(1.0, -1.0);
        node.step(1.0, f64::NAN);
        assert!(node.temperature_c() <= 25.0 + 1e-9);
        assert!(node.temperature_c().is_finite());
    }

    #[test]
    #[should_panic(expected = "implausible ambient")]
    fn rejects_absurd_ambient() {
        let _ = ThermalNode::new(ThermalParams {
            ambient_c: 500.0,
            ..ThermalParams::nexus5_room()
        });
    }
}
