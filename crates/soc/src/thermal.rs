//! Lumped-RC thermal model.
//!
//! Smartphones have no active cooling, so sustained SoC power raises die
//! temperature, which raises leakage, which raises power — a feedback loop
//! the paper shows can move the optimal frequency (Fig. 10: fopt shifts
//! from 1.9 to 1.7 GHz between cold and room ambient because leakage grows
//! steeply at the hot, high-voltage end).
//!
//! The die is a single thermal node with resistance `R` (K/W) to ambient
//! and time constant `τ = R·C`:
//!
//! ```text
//! T_ss = T_amb + P·R,      T(t+dt) = T_ss + (T(t) − T_ss)·exp(−dt/τ)
//! ```

use dora_sim_core::units::{Celsius, Seconds, Watts};

/// Parameters of the thermal node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance in kelvin per watt.
    pub resistance_k_per_w: f64,
    /// RC time constant.
    pub time_constant: Seconds,
    /// Ambient temperature.
    pub ambient: Celsius,
}

impl ThermalParams {
    /// Nexus-5-like defaults at room ambient: R chosen so the maximum
    /// sustained SoC power lands near the 65 °C the paper reports at
    /// 1.9 GHz, with a ~8 s settling time constant.
    pub fn nexus5_room() -> Self {
        ThermalParams {
            resistance_k_per_w: 13.0,
            time_constant: Seconds::new(8.0),
            ambient: Celsius::new(25.0),
        }
    }

    /// The cold-ambient condition used by the paper's Fig. 10(b)
    /// ("low ambient temperature").
    pub fn nexus5_cold() -> Self {
        ThermalParams {
            ambient: Celsius::new(5.0),
            ..ThermalParams::nexus5_room()
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.resistance_k_per_w.is_finite() && self.resistance_k_per_w > 0.0) {
            return Err(format!(
                "bad thermal resistance {}",
                self.resistance_k_per_w
            ));
        }
        if !(self.time_constant.is_finite() && self.time_constant.value() > 0.0) {
            return Err(format!("bad time constant {}", self.time_constant));
        }
        if !(self.ambient.is_finite() && (-40.0..=60.0).contains(&self.ambient.value())) {
            return Err(format!("implausible ambient {}", self.ambient));
        }
        Ok(())
    }
}

/// The die temperature state.
///
/// # Example
///
/// ```
/// use dora_sim_core::units::{Celsius, Seconds, Watts};
/// use dora_soc::thermal::{ThermalNode, ThermalParams};
///
/// let mut node = ThermalNode::new(ThermalParams::nexus5_room());
/// assert_eq!(node.temperature(), Celsius::new(25.0));
/// // 3 W sustained for a long time settles at ambient + P·R.
/// for _ in 0..10_000 {
///     node.step(Watts::new(3.0), Seconds::new(0.01));
/// }
/// let expected = 25.0 + 3.0 * node.params().resistance_k_per_w;
/// assert!((node.temperature().value() - expected).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNode {
    params: ThermalParams,
    temperature: Celsius,
    peak: Celsius,
}

impl ThermalNode {
    /// Creates a node initialized to ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    pub fn new(params: ThermalParams) -> Self {
        #[allow(clippy::expect_used)] // constructor contract: documented panic
        params.validate().expect("invalid thermal parameters");
        ThermalNode {
            params,
            temperature: params.ambient,
            peak: params.ambient,
        }
    }

    /// Advances the node by `dt` under `soc_power` of heat (SoC power
    /// only — the display's heat path is separate and excluded, as in the
    /// paper's CPU-focused thermal discussion).
    ///
    /// Negative or non-finite power is treated as zero.
    pub fn step(&mut self, soc_power: Watts, dt: Seconds) {
        let dt_s = dt.value();
        if dt_s <= 0.0 || !dt_s.is_finite() {
            return;
        }
        let p = if soc_power.is_finite() {
            soc_power.value().max(0.0)
        } else {
            0.0
        };
        let t_ss = self.params.ambient.value() + p * self.params.resistance_k_per_w;
        let decay = (-dt_s / self.params.time_constant.value()).exp();
        self.temperature = Celsius::new(t_ss + (self.temperature.value() - t_ss) * decay);
        self.peak = self.peak.max(self.temperature);
    }

    /// Current die temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The hottest temperature seen so far.
    pub fn peak(&self) -> Celsius {
        self.peak
    }

    /// The configured parameters.
    pub fn params(&self) -> ThermalParams {
        self.params
    }

    /// Changes the ambient temperature (e.g. moving the phone outdoors);
    /// the die temperature then relaxes toward the new steady state.
    ///
    /// # Panics
    ///
    /// Panics if the resulting parameters fail validation.
    pub fn set_ambient(&mut self, ambient: Celsius) {
        let next = ThermalParams {
            ambient,
            ..self.params
        };
        #[allow(clippy::expect_used)] // setter contract: documented panic
        next.validate().expect("invalid ambient");
        self.params = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: f64) -> Watts {
        Watts::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn starts_at_ambient() {
        let node = ThermalNode::new(ThermalParams::nexus5_room());
        assert_eq!(node.temperature(), Celsius::new(25.0));
        assert_eq!(node.temperature().to_kelvin(), 298.15);
    }

    #[test]
    fn settles_at_ambient_plus_pr() {
        let params = ThermalParams::nexus5_room();
        let mut node = ThermalNode::new(params);
        for _ in 0..100_000 {
            node.step(w(2.0), s(0.01));
        }
        let expected = 25.0 + 2.0 * params.resistance_k_per_w;
        assert!((node.temperature().value() - expected).abs() < 0.01);
    }

    #[test]
    fn time_constant_governs_approach() {
        let params = ThermalParams::nexus5_room();
        let mut node = ThermalNode::new(params);
        // One time constant of heating at 1 W: should cover ~63% of the gap.
        let steps = (params.time_constant.value() / 0.001) as usize;
        for _ in 0..steps {
            node.step(w(1.0), s(0.001));
        }
        let frac = (node.temperature().value() - 25.0) / params.resistance_k_per_w;
        assert!((frac - 0.632).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn cooling_when_power_drops() {
        let mut node = ThermalNode::new(ThermalParams::nexus5_room());
        for _ in 0..10_000 {
            node.step(w(3.0), s(0.01));
        }
        let hot = node.temperature().value();
        for _ in 0..10_000 {
            node.step(Watts::ZERO, s(0.01));
        }
        assert!(node.temperature().value() < hot);
        assert!((node.temperature().value() - 25.0).abs() < 0.1);
        assert!((node.peak().value() - hot).abs() < 1e-9);
    }

    #[test]
    fn cold_ambient_runs_cooler() {
        let mut room = ThermalNode::new(ThermalParams::nexus5_room());
        let mut cold = ThermalNode::new(ThermalParams::nexus5_cold());
        for _ in 0..50_000 {
            room.step(w(2.5), s(0.01));
            cold.step(w(2.5), s(0.01));
        }
        let gap = room.temperature().value() - cold.temperature().value();
        assert!((gap - 20.0).abs() < 0.1);
    }

    #[test]
    fn ignores_bad_inputs() {
        let mut node = ThermalNode::new(ThermalParams::nexus5_room());
        node.step(w(f64::NAN), s(1.0));
        node.step(w(-5.0), s(1.0));
        node.step(w(1.0), s(-1.0));
        node.step(w(1.0), s(f64::NAN));
        assert!(node.temperature().value() <= 25.0 + 1e-9);
        assert!(node.temperature().is_finite());
    }

    #[test]
    #[should_panic(expected = "implausible ambient")]
    fn rejects_absurd_ambient() {
        let _ = ThermalNode::new(ThermalParams {
            ambient: Celsius::new(500.0),
            ..ThermalParams::nexus5_room()
        });
    }
}
