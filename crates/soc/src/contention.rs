//! The per-quantum contention fixed point, extracted from the board.
//!
//! Each quantum, how fast every core retires instructions depends on its
//! effective CPI, which depends on the shared-L2 miss ratios, which
//! depend on every core's access rate (occupancy is rate-proportional),
//! which depends on... how fast every core retires instructions. The
//! DRAM bus closes a second loop: total miss traffic raises the queuing
//! delay behind each miss (Section II-B's interference channel).
//!
//! [`ContentionSolver`] resolves both loops by damped functional
//! iteration over a fixed budget of [`FIXED_POINT_ITERATIONS`] rounds:
//!
//! 1. seed instruction rates at the contention-free `duty·f/CPI_base`;
//! 2. derive cache demands, apportion the L2, derive miss ratios;
//! 3. sum DRAM demand, evaluate the bus queuing latency;
//! 4. recompute `CPI_eff = CPI_base + APKI·miss·latency·f·overlap` and
//!    the implied rates; repeat.
//!
//! The solver is pure (no board state, no observers) and reuses its
//! buffers across calls, so the steady-state hot path allocates nothing.
//! The arithmetic is kept operation-for-operation identical to the
//! pre-extraction inline loop in `board.rs`; the golden tests below pin
//! that equivalence.

use crate::cache::{ApportionScratch, CacheDemand, CacheShare, SharedCache};
use crate::dvfs::BusTier;
use crate::memory::MemorySystem;
use crate::task::PhaseProfile;

/// Number of rounds of functional iteration. Four is enough for the
/// realistic profile space — the convergence property test holds the
/// residual after this budget under 1%.
pub const FIXED_POINT_ITERATIONS: usize = 4;

/// The per-quantum operating point the fixed point is solved under.
///
/// Fields are crate-internal: the board assembles this from its
/// configuration and current OPP each quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionParams {
    /// Core clock in Hz.
    pub(crate) f_hz: f64,
    /// Memory-bus tier coupled to the core clock.
    pub(crate) tier: BusTier,
    /// Fraction of miss latency that is *not* hidden by MLP (the
    /// board's `mem_overlap`).
    pub(crate) mem_overlap: f64,
    /// Fraction of evictions that are dirty and cost a write-back.
    pub(crate) dirty_fraction: f64,
}

/// Reusable solver for the CPI ↔ cache-share ↔ DRAM-latency fixed point.
///
/// Call [`ContentionSolver::solve`] once per quantum; read the results
/// back through the accessors. The output slices are indexed like the
/// input `profiles` slice.
#[derive(Debug, Clone, Default)]
pub struct ContentionSolver {
    instr_rates: Vec<f64>,
    miss_ratios: Vec<f64>,
    demands: Vec<CacheDemand>,
    shares: Vec<CacheShare>,
    scratch: ApportionScratch,
    dram_demand: f64,
}

impl ContentionSolver {
    /// A fresh solver with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the fixed point for the given active-task profiles under
    /// the standard [`FIXED_POINT_ITERATIONS`] budget, with every core
    /// clocked at the single `params.f_hz`.
    pub fn solve(
        &mut self,
        cache: &SharedCache,
        memory: &MemorySystem,
        params: &ContentionParams,
        profiles: &[PhaseProfile],
    ) {
        self.solve_iterations(cache, memory, params, profiles, FIXED_POINT_ITERATIONS);
    }

    /// [`ContentionSolver::solve`] with a per-profile core clock (Hz) —
    /// the heterogeneous entry point: on a big.LITTLE board each task
    /// runs at its own cluster's frequency while still sharing the L2
    /// and the DRAM bus. `clocks` is indexed like `profiles`. With every
    /// clock equal to `params.f_hz` the arithmetic is bit-identical to
    /// [`ContentionSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `clocks.len() != profiles.len()`.
    pub fn solve_with_clocks(
        &mut self,
        cache: &SharedCache,
        memory: &MemorySystem,
        params: &ContentionParams,
        profiles: &[PhaseProfile],
        clocks: &[f64],
    ) {
        assert_eq!(clocks.len(), profiles.len(), "one clock per profile");
        self.solve_inner(
            cache,
            memory,
            params,
            profiles,
            |i| clocks[i],
            FIXED_POINT_ITERATIONS,
        );
    }

    /// [`ContentionSolver::solve`] with an explicit iteration budget —
    /// exposed so the convergence tests can compare truncated runs.
    pub fn solve_iterations(
        &mut self,
        cache: &SharedCache,
        memory: &MemorySystem,
        params: &ContentionParams,
        profiles: &[PhaseProfile],
        iterations: usize,
    ) {
        let f_hz = params.f_hz;
        self.solve_inner(cache, memory, params, profiles, |_| f_hz, iterations);
    }

    /// The shared fixed-point loop. `clock(i)` is the core clock (Hz)
    /// profile `i` retires under; the closure keeps the uniform path
    /// allocation-free and operation-for-operation identical to the
    /// historical single-clock loop.
    fn solve_inner(
        &mut self,
        cache: &SharedCache,
        memory: &MemorySystem,
        params: &ContentionParams,
        profiles: &[PhaseProfile],
        clock: impl Fn(usize) -> f64,
        iterations: usize,
    ) {
        let n = profiles.len();
        self.instr_rates.clear();
        for (i, p) in profiles.iter().enumerate() {
            self.instr_rates.push(p.duty_cycle * clock(i) / p.base_cpi);
        }
        self.miss_ratios.clear();
        self.miss_ratios.resize(n, 0.0);
        self.dram_demand = 0.0;
        for _ in 0..iterations {
            self.demands.clear();
            for (p, &r) in profiles.iter().zip(&self.instr_rates) {
                self.demands.push(CacheDemand {
                    access_rate: r * p.l2_apki / 1000.0,
                    working_set: p.working_set_bytes,
                    reuse_fraction: p.reuse_fraction,
                });
            }
            cache.apportion_into(&self.demands, &mut self.shares, &mut self.scratch);
            self.dram_demand = 0.0;
            for i in 0..n {
                self.miss_ratios[i] = self.shares[i].miss_ratio;
                let miss_rate = self.demands[i].access_rate * self.shares[i].miss_ratio;
                self.dram_demand +=
                    MemorySystem::demand_from_miss_rate(miss_rate, params.dirty_fraction);
            }
            let latency = memory.miss_latency(params.tier, self.dram_demand);
            for (i, p) in profiles.iter().enumerate() {
                let miss_cycles = (p.l2_apki / 1000.0)
                    * self.miss_ratios[i]
                    * latency.value()
                    * clock(i)
                    * params.mem_overlap;
                let cpi_eff = p.base_cpi + miss_cycles;
                self.instr_rates[i] = p.duty_cycle * clock(i) / cpi_eff;
            }
        }
    }

    /// Converged instructions-per-second for each profile.
    pub fn instr_rates(&self) -> &[f64] {
        &self.instr_rates
    }

    /// Converged shared-L2 miss ratio for each profile.
    pub fn miss_ratios(&self) -> &[f64] {
        &self.miss_ratios
    }

    /// Total DRAM bandwidth demand (bytes/s) implied by the converged
    /// miss traffic.
    pub fn dram_demand(&self) -> f64 {
        self.dram_demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BoardConfig;
    use proptest::prelude::*;

    /// The board's operating point at its stock middle frequency, pulled
    /// from the same config the simulator runs under.
    fn nexus5_params(mem_overlap_cfg: &BoardConfig, f_hz: f64, tier: BusTier) -> ContentionParams {
        ContentionParams {
            f_hz,
            tier,
            mem_overlap: mem_overlap_cfg.mem_overlap,
            dirty_fraction: mem_overlap_cfg.dirty_fraction,
        }
    }

    fn fixture() -> (SharedCache, MemorySystem, ContentionParams) {
        let config = crate::profile::SocProfile::msm8974().board_config();
        let cache = SharedCache::new(config.l2_capacity_bytes);
        let f = crate::dvfs::Frequency::from_mhz(1497.6);
        let tier = config.dvfs.bus_tier(f);
        let params = nexus5_params(&config, f.as_hz(), tier);
        (cache, config.memory, params)
    }

    /// The pre-refactor inline computation from `board.rs`, transcribed
    /// verbatim (allocating `Vec`s, `apportion`), as the golden
    /// reference the extracted solver must match bit-for-bit.
    fn reference_fixed_point(
        cache: &SharedCache,
        memory: &MemorySystem,
        params: &ContentionParams,
        profiles: &[PhaseProfile],
        iterations: usize,
    ) -> (Vec<f64>, Vec<f64>, f64) {
        let n = profiles.len();
        let mut instr_rates: Vec<f64> = profiles
            .iter()
            .map(|p| p.duty_cycle * params.f_hz / p.base_cpi)
            .collect();
        let mut miss_ratios = vec![0.0f64; n];
        let mut dram_demand = 0.0f64;
        for _ in 0..iterations {
            let demands: Vec<CacheDemand> = profiles
                .iter()
                .zip(&instr_rates)
                .map(|(p, &r)| CacheDemand {
                    access_rate: r * p.l2_apki / 1000.0,
                    working_set: p.working_set_bytes,
                    reuse_fraction: p.reuse_fraction,
                })
                .collect();
            let shares = cache.apportion(&demands);
            dram_demand = 0.0;
            for i in 0..n {
                miss_ratios[i] = shares[i].miss_ratio;
                let miss_rate = demands[i].access_rate * shares[i].miss_ratio;
                dram_demand +=
                    MemorySystem::demand_from_miss_rate(miss_rate, params.dirty_fraction);
            }
            let latency = memory.miss_latency(params.tier, dram_demand);
            for i in 0..n {
                let p = &profiles[i];
                let miss_cycles = (p.l2_apki / 1000.0)
                    * miss_ratios[i]
                    * latency.value()
                    * params.f_hz
                    * params.mem_overlap;
                let cpi_eff = p.base_cpi + miss_cycles;
                instr_rates[i] = p.duty_cycle * params.f_hz / cpi_eff;
            }
        }
        (instr_rates, miss_ratios, dram_demand)
    }

    fn profile(cpi: f64, apki: f64, ws_mib: f64, reuse: f64, duty: f64) -> PhaseProfile {
        PhaseProfile {
            base_cpi: cpi,
            l2_apki: apki,
            working_set_bytes: ws_mib * 1024.0 * 1024.0,
            reuse_fraction: reuse,
            duty_cycle: duty,
        }
    }

    /// A strategy over plausible task profiles, spanning compute-bound
    /// through streaming behavior.
    fn any_profile() -> impl Strategy<Value = PhaseProfile> {
        (
            0.6f64..4.0,
            0.1f64..80.0,
            0.01f64..16.0,
            0.0f64..=0.95,
            0.05f64..=1.0,
        )
            .prop_map(|(cpi, apki, ws, reuse, duty)| profile(cpi, apki, ws, reuse, duty))
    }

    #[test]
    fn matches_pre_refactor_computation_on_pinned_golden_vector() {
        let (cache, memory, params) = fixture();
        // The scenario the paper cares about: browser main + aux threads
        // plus a streaming memory hog, with one idle-ish task mixed in.
        let profiles = [
            profile(1.1, 6.0, 1.5, 0.85, 0.9),
            profile(1.3, 3.0, 0.5, 0.8, 0.4),
            profile(0.9, 45.0, 8.0, 0.1, 1.0),
            profile(2.0, 0.5, 0.05, 0.9, 0.1),
        ];
        let mut solver = ContentionSolver::new();
        solver.solve(&cache, &memory, &params, &profiles);
        let (rates, misses, dram) =
            reference_fixed_point(&cache, &memory, &params, &profiles, FIXED_POINT_ITERATIONS);
        // Bit-for-bit: the extraction must not change a single rounding.
        assert_eq!(solver.instr_rates(), rates.as_slice());
        assert_eq!(solver.miss_ratios(), misses.as_slice());
        assert_eq!(solver.dram_demand().to_bits(), dram.to_bits());
        // And the golden vector itself is anchored: the hog saturates its
        // share while the browser suffers visibly.
        assert!(misses[2] > 0.85, "hog miss ratio {}", misses[2]);
        assert!(misses[0] > 0.15, "victim under pressure {}", misses[0]);
        assert!(rates[0] < params.f_hz / 1.1, "victim slower than solo");
    }

    #[test]
    fn solver_reuse_across_calls_does_not_leak_state() {
        let (cache, memory, params) = fixture();
        let heavy = [
            profile(1.1, 6.0, 1.5, 0.85, 0.9),
            profile(0.9, 45.0, 8.0, 0.1, 1.0),
        ];
        let light = [profile(1.1, 6.0, 1.5, 0.85, 0.9)];
        let mut reused = ContentionSolver::new();
        reused.solve(&cache, &memory, &params, &heavy);
        reused.solve(&cache, &memory, &params, &light);
        let mut fresh = ContentionSolver::new();
        fresh.solve(&cache, &memory, &params, &light);
        assert_eq!(reused.instr_rates(), fresh.instr_rates());
        assert_eq!(reused.miss_ratios(), fresh.miss_ratios());
        assert_eq!(
            reused.dram_demand().to_bits(),
            fresh.dram_demand().to_bits()
        );
    }

    #[test]
    fn uniform_clocks_match_single_clock_solve_bitwise() {
        let (cache, memory, params) = fixture();
        let profiles = [
            profile(1.1, 6.0, 1.5, 0.85, 0.9),
            profile(0.9, 45.0, 8.0, 0.1, 1.0),
        ];
        let clocks = [params.f_hz; 2];
        let mut uniform = ContentionSolver::new();
        uniform.solve_with_clocks(&cache, &memory, &params, &profiles, &clocks);
        let mut single = ContentionSolver::new();
        single.solve(&cache, &memory, &params, &profiles);
        assert_eq!(uniform.instr_rates(), single.instr_rates());
        assert_eq!(uniform.miss_ratios(), single.miss_ratios());
        assert_eq!(
            uniform.dram_demand().to_bits(),
            single.dram_demand().to_bits()
        );
    }

    #[test]
    fn per_core_clocks_slow_only_the_downclocked_core() {
        let (cache, memory, params) = fixture();
        let profiles = [
            profile(1.1, 6.0, 1.5, 0.85, 0.9),
            profile(1.1, 6.0, 1.5, 0.85, 0.9),
        ];
        let mut solver = ContentionSolver::new();
        // Core 1 on a half-speed LITTLE cluster.
        solver.solve_with_clocks(
            &cache,
            &memory,
            &params,
            &profiles,
            &[params.f_hz, params.f_hz / 2.0],
        );
        let rates = solver.instr_rates();
        assert!(
            rates[1] < rates[0] * 0.6,
            "downclocked core should retire ~half as fast: {rates:?}"
        );
    }

    #[test]
    fn empty_profile_set_is_a_clean_no_op() {
        let (cache, memory, params) = fixture();
        let mut solver = ContentionSolver::new();
        solver.solve(&cache, &memory, &params, &[]);
        assert!(solver.instr_rates().is_empty());
        assert!(solver.miss_ratios().is_empty());
        assert_eq!(solver.dram_demand(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The extracted solver matches the pre-refactor inline loop
        /// bit-for-bit on arbitrary profile mixes, not just the golden
        /// vector.
        #[test]
        fn matches_reference_on_generated_profiles(
            profiles in proptest::collection::vec(any_profile(), 1..5),
        ) {
            let (cache, memory, params) = fixture();
            let mut solver = ContentionSolver::new();
            solver.solve(&cache, &memory, &params, &profiles);
            let (rates, misses, dram) = reference_fixed_point(
                &cache, &memory, &params, &profiles, FIXED_POINT_ITERATIONS,
            );
            prop_assert_eq!(solver.instr_rates(), rates.as_slice());
            prop_assert_eq!(solver.miss_ratios(), misses.as_slice());
            prop_assert_eq!(solver.dram_demand().to_bits(), dram.to_bits());
        }

        /// The fixed point settles within the 4-iteration budget: one
        /// extra round moves every instruction rate by under 1%.
        #[test]
        fn converges_within_iteration_budget(
            profiles in proptest::collection::vec(any_profile(), 1..5),
        ) {
            let (cache, memory, params) = fixture();
            let mut at_budget = ContentionSolver::new();
            at_budget.solve_iterations(
                &cache, &memory, &params, &profiles, FIXED_POINT_ITERATIONS,
            );
            let mut one_more = ContentionSolver::new();
            one_more.solve_iterations(
                &cache, &memory, &params, &profiles, FIXED_POINT_ITERATIONS + 1,
            );
            for (a, b) in at_budget.instr_rates().iter().zip(one_more.instr_rates()) {
                let residual = (a - b).abs() / a.max(1.0);
                prop_assert!(
                    residual < 0.01,
                    "rate moved {residual:.4} past the budget ({a} -> {b})",
                );
            }
        }

        /// More co-runner demand never lowers the victim's miss ratio:
        /// scaling up the hog's access intensity can only squeeze the
        /// victim's occupancy harder.
        #[test]
        fn victim_miss_ratio_is_monotone_in_corunner_demand(
            victim in any_profile(),
            hog in any_profile(),
            scale in 1.0f64..4.0,
        ) {
            let (cache, memory, params) = fixture();
            let mut hotter = hog;
            hotter.l2_apki = (hog.l2_apki * scale).min(200.0);
            let mut base = ContentionSolver::new();
            base.solve(&cache, &memory, &params, &[victim, hog]);
            let mut pressured = ContentionSolver::new();
            pressured.solve(&cache, &memory, &params, &[victim, hotter]);
            prop_assert!(
                pressured.miss_ratios()[0] >= base.miss_ratios()[0] - 1e-9,
                "victim miss ratio dropped under pressure: {} -> {}",
                base.miss_ratios()[0],
                pressured.miss_ratios()[0],
            );
        }
    }
}
