//! The zero-cost-observation contract, asserted with a real allocator.
//!
//! The old string trace ring built a `format!` message on every quantum
//! retire whether tracing was on or not. The probe bus's `emit_with`
//! builds events lazily, so with no probe attached a warmed board must
//! step without touching the allocator at all. This test installs a
//! counting wrapper around the system allocator and holds the stepping
//! hot path to exactly zero allocations.

use dora_sim_core::SimDuration;
use dora_soc::board::Board;
use dora_soc::task::{LoopTask, PhaseProfile};
use dora_soc::{Frequency, SocProfile};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every heap allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warmed_board_steps_without_allocating_when_no_probe_listens() {
    let mut board = Board::new(SocProfile::msm8974().board_config(), 3);
    board
        .set_frequency(Frequency::from_mhz(1497.6))
        .expect("in table");
    // Endless tasks on every enabled core: the steady-state browsing +
    // co-runner shape, with nobody ever finishing (finish events would
    // not allocate either, but endless tasks keep the workload steady).
    board
        .assign(0, Box::new(LoopTask::compute_bound("main", 0.9)))
        .expect("free");
    board
        .assign(1, Box::new(LoopTask::compute_bound("aux", 0.5)))
        .expect("free");
    board
        .assign(
            2,
            Box::new(LoopTask::new("hog", PhaseProfile::streaming(40.0))),
        )
        .expect("free");

    // Warm-up: lets the solver and scratch buffers grow to their final
    // sizes (first-use allocations are one-time and expected).
    board.step(SimDuration::from_millis(50));

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    board.step(SimDuration::from_secs(1));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "probe-off stepping must not allocate (got {} allocations over 1000 quanta)",
        after - before
    );

    // With a probe attached the per-quantum events (QuantumRetired,
    // PowerSample, ThermalSample) are plain-old-data and the ring is
    // preallocated, so steady stepping STILL must not allocate.
    let ring = dora_sim_core::probe::ProbeRing::shared(1 << 12);
    board.attach_probe(ring);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    board.step(SimDuration::from_secs(1));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "probed steady stepping emits only plain-old-data events (got {} allocations)",
        after - before
    );

    // Sanity: the counter does observe this code path. TaskAssigned owns
    // the task's name, so assigning while a probe listens must allocate.
    board.clear_core(1).expect("in range");
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    board
        .assign(1, Box::new(LoopTask::compute_bound("late", 0.3)))
        .expect("free");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        after > before,
        "assigning a task with a probe attached should allocate (event owns the name)"
    );
}
