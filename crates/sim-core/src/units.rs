//! Typed physical quantities for the DORA pipeline.
//!
//! DORA's Algorithm 1 is arithmetic over physical quantities — predicted
//! load time `T(F)`, total power `P(F)`, performance-per-watt
//! `PPW = 1/(T·P)`, shared-L2 MPKI, die temperature — and a swapped
//! argument or a W-vs-mW slip silently corrupts every downstream result.
//! These newtypes make such mixing a *compile error*: a [`Seconds`] cannot
//! be passed where a [`Watts`] is expected, and only the dimensionally
//! meaningful operations exist (`Watts × Seconds → Joules`, never
//! `Watts + Seconds`).
//!
//! Each quantity wraps an `f64`, is `Copy`, and exposes:
//!
//! * `new` / `value` — construction and the raw number (validated for
//!   [`Utilization`] and [`Mpki`], whose domains are bounded);
//! * `Display` / `FromStr` — a suffixed textual form (`"1.5s"`, `"2W"`)
//!   that round-trips exactly, used by the persistence layer;
//! * `total_cmp` / `min` / `max` — total-order comparison so callers never
//!   need `partial_cmp().unwrap()` on quantity values.
//!
//! The companion frequency newtype lives in `dora-soc` ([`Frequency`]
//! there predates this module and is kHz-quantized); everything else in
//! the unit system is here, at the bottom of the dependency stack, so all
//! crates can share it.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Errors from unit construction or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The value lies outside the quantity's valid domain.
    OutOfRange {
        /// The quantity that rejected the value (e.g. `"Utilization"`).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The text could not be parsed as this quantity.
    Unparseable {
        /// The quantity being parsed.
        quantity: &'static str,
        /// The offending input.
        input: String,
    },
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::OutOfRange { quantity, value } => {
                write!(f, "{value} is outside the valid range of {quantity}")
            }
            UnitError::Unparseable { quantity, input } => {
                write!(f, "cannot parse {input:?} as {quantity}")
            }
        }
    }
}

impl std::error::Error for UnitError {}

/// Parses `text` as `quantity`, accepting an optional unit `suffix`.
fn parse_suffixed(text: &str, suffix: &str, quantity: &'static str) -> Result<f64, UnitError> {
    let t = text.trim();
    let t = if !suffix.is_empty() {
        t.strip_suffix(suffix).unwrap_or(t).trim_end()
    } else {
        t
    };
    match t.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(UnitError::Unparseable {
            quantity,
            input: text.to_string(),
        }),
    }
}

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value.
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw numeric value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Whether the value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total-order comparison (IEEE 754 `totalOrder`), so callers
            /// never need `partial_cmp().unwrap()`.
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// The larger of the two values.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of the two values.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // `{:?}` on f64 prints the shortest round-trippable form.
                write!(f, "{:?}{}", self.0, $suffix)
            }
        }

        impl FromStr for $name {
            type Err = UnitError;

            fn from_str(s: &str) -> Result<Self, UnitError> {
                parse_suffixed(s, $suffix, stringify!($name)).map($name)
            }
        }
    };
}

quantity!(
    /// A span of wall-clock or simulated time in seconds — the paper's
    /// load time `T` and QoS deadline.
    Seconds,
    "s"
);
quantity!(
    /// Electrical power in watts — the paper's total device power `P`.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules, only obtainable as `Watts × Seconds`.
    Joules,
    "J"
);
quantity!(
    /// A temperature in degrees Celsius — die or ambient.
    Celsius,
    "°C"
);
quantity!(
    /// Battery capacity in watt-hours — the fleet layer's battery-life
    /// arithmetic (`WattHours / Watts → Seconds`) lives on this type so
    /// no raw-`f64` capacity can sneak into a report.
    WattHours,
    "Wh"
);
quantity!(
    /// Performance per watt, the paper's objective `PPW = 1/(T·P)`; its
    /// SI dimension is 1/J.
    Ppw,
    "/J"
);

impl Celsius {
    /// The same temperature on the kelvin scale (used by the Eq. 5
    /// leakage model).
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

impl Ppw {
    /// The paper's objective for one operating point: `1/(T·P)`.
    ///
    /// Degenerate inputs (non-positive or non-finite `T·P`) yield
    /// `Ppw::ZERO`, the worst possible score, so a corrupt prediction can
    /// never *win* a frequency search.
    pub fn from_time_power(time: Seconds, power: Watts) -> Ppw {
        // Build the energy through the typed `Watts × Seconds → Joules`
        // impl rather than multiplying raw scalars: `T·P` *is* the
        // energy of the load, and the typed product keeps it that way.
        Ppw::from_energy(power * time)
    }

    /// The objective generalized to a known load energy: `1/E`.
    ///
    /// `E` is whatever energy the load is charged — `T·P` plus, for a
    /// cross-cluster candidate, the one-shot migration energy. With
    /// `E = T·P` exactly this is [`Ppw::from_time_power`]. Degenerate
    /// inputs yield `Ppw::ZERO` so a corrupt prediction can never win.
    pub fn from_energy(energy: Joules) -> Ppw {
        let e = energy.value();
        if e.is_finite() && e > 0.0 {
            Ppw(1.0 / e)
        } else {
            Ppw::ZERO
        }
    }
}

/// A bounded quantity with a validated constructor.
macro_rules! bounded_quantity {
    ($(#[$doc:meta])* $name:ident, $suffix:literal, $lo:expr, $hi:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Validates and wraps a raw value.
            ///
            /// # Errors
            ///
            /// [`UnitError::OutOfRange`] when `value` is non-finite or
            /// outside the quantity's domain.
            pub fn new(value: f64) -> Result<Self, UnitError> {
                if value.is_finite() && ($lo..=$hi).contains(&value) {
                    Ok($name(value))
                } else {
                    Err(UnitError::OutOfRange {
                        quantity: stringify!($name),
                        value,
                    })
                }
            }

            /// Wraps a raw value, clamping it into the valid domain
            /// (non-finite values clamp to zero). The forgiving entry
            /// point for noisy measured telemetry.
            pub fn clamped(value: f64) -> Self {
                if value.is_finite() {
                    $name(value.clamp($lo, $hi))
                } else {
                    $name(0.0)
                }
            }

            /// The raw numeric value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Total-order comparison (IEEE 754 `totalOrder`).
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// The larger of the two values.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of the two values.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:?}{}", self.0, $suffix)
            }
        }

        impl FromStr for $name {
            type Err = UnitError;

            fn from_str(s: &str) -> Result<Self, UnitError> {
                let v = parse_suffixed(s, $suffix, stringify!($name))?;
                $name::new(v)
            }
        }
    };
}

bounded_quantity!(
    /// Shared-L2 misses per kilo-instruction — the paper's interference
    /// proxy X6. Non-negative and finite by construction.
    Mpki,
    "MPKI",
    0.0,
    f64::MAX
);
bounded_quantity!(
    /// A busy fraction in `[0, 1]` — per-core or co-runner utilization.
    Utilization,
    "",
    0.0,
    1.0
);

impl Utilization {
    /// Full utilization (1.0).
    pub const ONE: Utilization = Utilization(1.0);
}

// ---- Dimensional arithmetic ------------------------------------------------
//
// Only the operations the domain needs: same-unit sums and differences,
// dimensionless scaling, and the power/energy/time triangle. Nonsensical
// combinations (e.g. `Watts + Seconds`) simply do not exist.

macro_rules! linear_ops {
    ($name:ident) => {
        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }
        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }
        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }
        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }
        impl std::ops::Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
        impl std::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }
    };
}

linear_ops!(Seconds);
linear_ops!(Watts);
linear_ops!(Joules);

impl std::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl std::ops::Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl std::ops::Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl std::ops::Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl WattHours {
    /// The same energy in joules (1 Wh = 3600 J).
    pub fn to_joules(self) -> Joules {
        Joules(self.0 * 3600.0)
    }

    /// The capacity at a state-of-charge `fraction` (clamped to `[0, 1]`),
    /// e.g. the usable energy of a pack sampled at 60 % charge.
    #[must_use]
    pub fn at_charge(self, fraction: f64) -> WattHours {
        WattHours(self.0 * fraction.clamp(0.0, 1.0))
    }

    /// How many hours this capacity lasts at a mean drain. Non-positive
    /// or non-finite drains yield zero rather than a nonsense lifetime.
    pub fn hours_at(self, drain: Watts) -> f64 {
        if drain.0.is_finite() && drain.0 > 0.0 {
            self.0 / drain.0
        } else {
            0.0
        }
    }
}

impl std::ops::Div<Watts> for WattHours {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 * 3600.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_energy_time_triangle() {
        let e = Watts::new(2.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(6.0));
        assert_eq!(Seconds::new(3.0) * Watts::new(2.0), e);
        assert_eq!(e / Seconds::new(3.0), Watts::new(2.0));
        assert_eq!(e / Watts::new(2.0), Seconds::new(3.0));
    }

    #[test]
    fn ppw_matches_definition_and_guards_degenerates() {
        let p = Ppw::from_time_power(Seconds::new(2.0), Watts::new(0.25));
        assert_eq!(p.value(), 2.0);
        assert_eq!(
            Ppw::from_time_power(Seconds::new(0.0), Watts::new(1.0)),
            Ppw::ZERO
        );
        assert_eq!(
            Ppw::from_time_power(Seconds::new(f64::NAN), Watts::new(1.0)),
            Ppw::ZERO
        );
        assert_eq!(
            Ppw::from_time_power(Seconds::new(-1.0), Watts::new(1.0)),
            Ppw::ZERO
        );
    }

    #[test]
    fn display_and_fromstr_roundtrip() {
        let s = Seconds::new(1.5);
        assert_eq!(s.to_string(), "1.5s");
        assert_eq!("1.5s".parse::<Seconds>().unwrap(), s);
        assert_eq!("1.5".parse::<Seconds>().unwrap(), s);
        assert_eq!(" 2.25 W ".parse::<Watts>().unwrap(), Watts::new(2.25));
        assert_eq!("45.5°C".parse::<Celsius>().unwrap(), Celsius::new(45.5));
        assert_eq!("3MPKI".parse::<Mpki>().unwrap(), Mpki::clamped(3.0));
        assert_eq!(
            "0.5".parse::<Utilization>().unwrap(),
            Utilization::clamped(0.5)
        );
        assert!("watts".parse::<Watts>().is_err());
        assert!("NaN".parse::<Watts>().is_err());
    }

    #[test]
    fn bounded_constructors_reject_out_of_range() {
        assert!(Utilization::new(-0.1).is_err());
        assert!(Utilization::new(1.1).is_err());
        assert!(Utilization::new(f64::NAN).is_err());
        assert!(Utilization::new(0.0).is_ok());
        assert!(Utilization::new(1.0).is_ok());
        assert!(Mpki::new(-1.0).is_err());
        assert!(Mpki::new(f64::INFINITY).is_err());
        assert!(Mpki::new(0.0).is_ok());
        assert!("1.5".parse::<Utilization>().is_err());
    }

    #[test]
    fn clamped_is_forgiving() {
        assert_eq!(Utilization::clamped(1.7).value(), 1.0);
        assert_eq!(Utilization::clamped(-0.2).value(), 0.0);
        assert_eq!(Utilization::clamped(f64::NAN).value(), 0.0);
        assert_eq!(Mpki::clamped(-3.0).value(), 0.0);
        assert_eq!(Mpki::clamped(f64::INFINITY).value(), 0.0);
    }

    #[test]
    fn total_cmp_orders_without_panics() {
        let mut v = [Ppw::new(0.3), Ppw::new(f64::NAN), Ppw::new(0.1)];
        v.sort_by(Ppw::total_cmp);
        assert_eq!(v[0].value(), 0.1);
        assert_eq!(v[1].value(), 0.3);
        assert!(v[2].value().is_nan());
    }

    #[test]
    fn kelvin_conversion() {
        assert_eq!(Celsius::new(25.0).to_kelvin(), 298.15);
    }

    #[test]
    fn watt_hours_battery_arithmetic() {
        let battery = WattHours::new(8.74); // Nexus 5 nominal pack
        assert_eq!(battery.to_joules(), Joules::new(8.74 * 3600.0));
        assert!((battery.hours_at(Watts::new(2.0)) - 4.37).abs() < 1e-12);
        assert_eq!(battery.hours_at(Watts::ZERO), 0.0);
        assert_eq!(battery.hours_at(Watts::new(f64::NAN)), 0.0);
        assert_eq!(WattHours::new(1.0) / Watts::new(1.0), Seconds::new(3600.0));
        assert_eq!("8.74Wh".parse::<WattHours>().unwrap(), battery);
    }

    #[test]
    fn sums_and_scaling() {
        let total: Joules = [Joules::new(1.0), Joules::new(2.5)].into_iter().sum();
        assert_eq!(total, Joules::new(3.5));
        assert_eq!(Seconds::new(2.0) * 3.0, Seconds::new(6.0));
        assert_eq!(Watts::new(6.0) / 3.0, Watts::new(2.0));
        assert_eq!(Seconds::new(6.0) / Seconds::new(3.0), 2.0);
        let mut acc = Watts::ZERO;
        acc += Watts::new(1.5);
        assert_eq!(acc, Watts::new(1.5));
    }
}
