//! Mergeable sketches for fleet-scale streaming aggregation.
//!
//! A fleet campaign streams 10⁴–10⁶ device sessions through a sharded
//! executor. Retaining one `RunResult` per session would make memory
//! O(sessions); instead every shard reduces its sessions into *sketches*
//! — fixed-size summaries with an associative [`FixedHistogram::merge`]
//! — and the driver folds the shard sketches together in a fixed order.
//! Memory stays O(shards) and the merged output is byte-identical for
//! any worker count, because merging is a pure left fold over the shard
//! index (see `dora-campaign`'s fleet module).
//!
//! Two pieces live here, next to [`crate::stats`]:
//!
//! * [`FixedHistogram`] — a fixed-bin histogram over a closed range with
//!   underflow/overflow bins, exact count/sum bookkeeping, an empirical
//!   CDF and quantiles interpolated within bins. Merging two histograms
//!   with the same shape is exact (bin counts add), which is what makes
//!   the deadline-hit CDF and PPW distribution of a million sessions
//!   computable in a few kilobytes.
//! * [`Digest64`] — a canonical FNV-1a fold over the numbers a report
//!   contains, used to pin fleet outputs in determinism tests and CI
//!   golden files.
//!
//! [`crate::stats::Running`] already merges (parallel Welford); sketches
//! compose with it rather than duplicating it.

use std::fmt;

/// Errors from sketch operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// Two sketches with different shapes (bin count or range) cannot be
    /// merged exactly.
    ShapeMismatch {
        /// Shape of the left-hand sketch, `(bins, lo, hi)`.
        left: (usize, f64, f64),
        /// Shape of the right-hand sketch, `(bins, lo, hi)`.
        right: (usize, f64, f64),
    },
    /// A histogram needs at least one bin and a non-empty, finite range.
    BadShape {
        /// The rejected bin count.
        bins: usize,
        /// The rejected lower edge.
        lo: f64,
        /// The rejected upper edge.
        hi: f64,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::ShapeMismatch { left, right } => write!(
                f,
                "cannot merge histograms of different shapes: \
                 {} bins over [{}, {}) vs {} bins over [{}, {})",
                left.0, left.1, left.2, right.0, right.1, right.2
            ),
            SketchError::BadShape { bins, lo, hi } => {
                write!(f, "bad histogram shape: {bins} bins over [{lo}, {hi})")
            }
        }
    }
}

impl std::error::Error for SketchError {}

/// A fixed-bin histogram over `[lo, hi)` with exact merge.
///
/// Samples below `lo` land in the underflow bin, samples at or above
/// `hi` in the overflow bin, so every finite sample is counted and the
/// CDF is exact at bin edges. The exact sum and count ride along, so the
/// mean is exact even though the distribution is quantized.
///
/// # Example
///
/// ```
/// use dora_sim_core::sketch::FixedHistogram;
///
/// let mut h = FixedHistogram::new(10, 0.0, 10.0).unwrap();
/// for x in [0.5, 2.5, 2.6, 9.9] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.cdf_at(3.0), 0.75); // three of four samples below 3.0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    // state: skip(shape key, not accumulated state; merge refuses
    // mismatched shapes via self.shape() so lo/hi are never transferred)
    lo: f64,
    // state: skip(shape key, not accumulated state; see lo)
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl FixedHistogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// [`SketchError::BadShape`] when `bins == 0`, the range is empty,
    /// or an edge is not finite.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Result<FixedHistogram, SketchError> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(SketchError::BadShape { bins, lo, hi });
        }
        Ok(FixedHistogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        })
    }

    /// The histogram shape as `(bins, lo, hi)`.
    pub fn shape(&self) -> (usize, f64, f64) {
        (self.bins.len(), self.lo, self.hi)
    }

    /// Adds a sample. Non-finite samples are ignored, as in
    /// [`crate::stats::Running`].
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of recorded (finite) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The exact arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The per-bin counts (excluding underflow/overflow), lowest bin
    /// first.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples that fell below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of samples `<= x`, interpolated linearly inside the bin
    /// containing `x` (exact at bin edges). Zero when empty.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if x < self.lo {
            // The underflow mass is unlocated; count it only once x
            // reaches the range start.
            return 0.0;
        }
        if x >= self.hi {
            // Overflow mass is treated as located at `hi`.
            return 1.0;
        }
        let mut below = self.underflow as f64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
        for &b in &self.bins[..idx] {
            below += b as f64;
        }
        let frac = ((x - self.lo) - idx as f64 * width) / width;
        below += self.bins[idx] as f64 * frac.clamp(0.0, 1.0);
        below / self.count as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]`, interpolated within the bin
    /// where the cumulative count crosses `q`. Underflow mass reports
    /// `lo`, overflow mass reports `hi`. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` (a caller bug, as in
    /// [`crate::stats::Samples::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            let next = cum + b as f64;
            if target <= next && b > 0 {
                let frac = (target - cum) / b as f64;
                return self.lo + (i as f64 + frac) * width;
            }
            cum = next;
        }
        self.hi
    }

    /// Adds every count of `other` into `self`. Exact and associative:
    /// merging shard histograms in any grouping yields identical bins,
    /// and a left fold in fixed shard order also makes the *float* `sum`
    /// bit-identical run to run.
    ///
    /// # Errors
    ///
    /// [`SketchError::ShapeMismatch`] when the shapes differ.
    pub fn merge(&mut self, other: &FixedHistogram) -> Result<(), SketchError> {
        if self.shape() != other.shape() {
            return Err(SketchError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }

    /// Folds the histogram's canonical content into a digest.
    pub fn digest_into(&self, digest: &mut Digest64) {
        digest.write_f64(self.lo);
        digest.write_f64(self.hi);
        digest.write_u64(self.bins.len() as u64);
        for &b in &self.bins {
            digest.write_u64(b);
        }
        digest.write_u64(self.underflow);
        digest.write_u64(self.overflow);
        digest.write_u64(self.count);
        digest.write_f64(self.sum);
    }
}

/// A 64-bit FNV-1a fold with canonical encodings for the primitives a
/// report contains.
///
/// Not cryptographic — a change detector. Floats are folded by IEEE 754
/// bit pattern (little-endian), so a digest pins results *bitwise*: two
/// runs agree iff every folded number agrees to the last bit. Used by
/// the fleet determinism tests and the CI golden-digest smoke job.
///
/// # Example
///
/// ```
/// use dora_sim_core::sketch::Digest64;
///
/// let mut a = Digest64::new();
/// a.write_u64(7);
/// a.write_f64(1.5);
/// let mut b = Digest64::new();
/// b.write_u64(7);
/// b.write_f64(1.5);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest64 {
    fn default() -> Self {
        Digest64::new()
    }
}

impl Digest64 {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Digest64 {
        Digest64 { state: FNV_OFFSET }
    }

    /// Folds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern. `-0.0` and `0.0` digest
    /// differently, as do distinct NaN payloads — bitwise means bitwise.
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Folds a string (length-prefixed, so `"ab"+"c"` ≠ `"a"+"bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current 64-bit digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[f64]) -> FixedHistogram {
        let mut h = FixedHistogram::new(8, 0.0, 8.0).expect("shape ok");
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert!(FixedHistogram::new(0, 0.0, 1.0).is_err());
        assert!(FixedHistogram::new(4, 1.0, 1.0).is_err());
        assert!(FixedHistogram::new(4, 2.0, 1.0).is_err());
        assert!(FixedHistogram::new(4, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn records_route_to_bins_and_tails() {
        let h = hist(&[-1.0, 0.0, 0.5, 7.99, 8.0, 100.0, f64::NAN]);
        assert_eq!(h.count(), 6, "NaN ignored");
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[7], 1);
    }

    #[test]
    fn mean_is_exact() {
        let h = hist(&[1.0, 2.0, 3.0]);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(hist(&[]).mean(), 0.0);
    }

    #[test]
    fn cdf_is_exact_at_edges_and_interpolates() {
        let h = hist(&[0.5, 1.5, 2.5, 3.5]);
        assert_eq!(h.cdf_at(-1.0), 0.0);
        assert_eq!(h.cdf_at(2.0), 0.5);
        assert_eq!(h.cdf_at(4.0), 1.0);
        assert_eq!(h.cdf_at(100.0), 1.0);
        // Halfway into the first bin: half its single sample.
        assert!((h.cdf_at(0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = hist(&[1.5, 2.5, 2.6, 6.5]);
        assert_eq!(h.quantile(0.0), 0.0); // empty prefix reports the lo edge
        let med = h.quantile(0.5);
        assert!((2.0..3.0).contains(&med), "median {med}");
        assert!(h.quantile(1.0) <= 8.0);
        let empty = FixedHistogram::new(4, 0.0, 1.0).expect("shape ok");
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_is_exact_and_associative() {
        let a = hist(&[0.5, 1.5]);
        let b = hist(&[2.5, 9.0]);
        let c = hist(&[-3.0, 7.5]);
        // (a+b)+c
        let mut left = a.clone();
        left.merge(&b).expect("same shape");
        left.merge(&c).expect("same shape");
        // a+(b+c)
        let mut bc = b.clone();
        bc.merge(&c).expect("same shape");
        let mut right = a.clone();
        right.merge(&bc).expect("same shape");
        assert_eq!(left, right);
        assert_eq!(left.count(), 6);
        assert_eq!(left, hist(&[0.5, 1.5, 2.5, 9.0, -3.0, 7.5]));
    }

    #[test]
    fn merging_empty_is_identity() {
        let a = hist(&[0.5, 1.5, 7.0]);
        let empty = FixedHistogram::new(8, 0.0, 8.0).expect("shape ok");
        let mut merged = a.clone();
        merged.merge(&empty).expect("same shape");
        assert_eq!(merged, a);
        let mut other_way = empty;
        other_way.merge(&a).expect("same shape");
        assert_eq!(other_way, a);
    }

    #[test]
    fn mismatched_shapes_refuse_to_merge() {
        let mut a = FixedHistogram::new(8, 0.0, 8.0).expect("shape ok");
        let b = FixedHistogram::new(4, 0.0, 8.0).expect("shape ok");
        let err = a.merge(&b).expect_err("shape differs");
        assert!(matches!(err, SketchError::ShapeMismatch { .. }));
        assert!(err.to_string().contains("8 bins"));
    }

    #[test]
    fn digest_distinguishes_content_and_order() {
        let mut a = Digest64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix separates fields");

        let mut h1 = Digest64::new();
        hist(&[1.0, 2.0]).digest_into(&mut h1);
        let mut h2 = Digest64::new();
        hist(&[1.0, 2.5]).digest_into(&mut h2);
        assert_ne!(h1.finish(), h2.finish());

        let mut same = Digest64::new();
        hist(&[1.0, 2.0]).digest_into(&mut same);
        assert_eq!(h1.finish(), same.finish());
    }
}
