//! Simulated time.
//!
//! Time is represented as an absolute instant ([`SimTime`]) or a span
//! ([`SimDuration`]), both counted in integer nanoseconds. Nanosecond
//! resolution comfortably covers the dynamic range the simulator needs:
//! a 2.27 GHz core cycle is ~0.44 ns, and campaigns simulate minutes.
//! `u64` nanoseconds overflow after ~584 years of simulated time, and all
//! arithmetic saturates rather than wraps.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated timeline, in nanoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use dora_sim_core::{SimDuration, SimTime};
///
/// let t = SimTime::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(t.as_nanos(), 3_500_000);
/// assert_eq!(t.as_secs_f64(), 0.0035);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use dora_sim_core::SimDuration;
///
/// let quantum = SimDuration::from_millis(1);
/// assert_eq!(quantum * 100, SimDuration::from_millis(100));
/// assert_eq!(SimDuration::from_secs_f64(0.001), quantum);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

macro_rules! common_ctors {
    ($ty:ident) => {
        impl $ty {
            /// The zero value.
            pub const ZERO: Self = Self(0);

            /// Constructs from whole nanoseconds.
            pub const fn from_nanos(ns: u64) -> Self {
                Self(ns)
            }

            /// Constructs from whole microseconds.
            pub const fn from_micros(us: u64) -> Self {
                Self(us * 1_000)
            }

            /// Constructs from whole milliseconds.
            pub const fn from_millis(ms: u64) -> Self {
                Self(ms * 1_000_000)
            }

            /// Constructs from whole seconds.
            pub const fn from_secs(s: u64) -> Self {
                Self(s * 1_000_000_000)
            }

            /// Constructs from fractional seconds, rounding to the nearest
            /// nanosecond. Negative or non-finite inputs clamp to zero.
            pub fn from_secs_f64(s: f64) -> Self {
                if !s.is_finite() || s <= 0.0 {
                    return Self::ZERO;
                }
                Self((s * 1e9).round() as u64)
            }

            /// The value in whole nanoseconds.
            pub const fn as_nanos(self) -> u64 {
                self.0
            }

            /// The value in fractional milliseconds.
            pub fn as_millis_f64(self) -> f64 {
                self.0 as f64 / 1e6
            }

            /// The value in fractional seconds.
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1e9
            }

            /// Whether this is exactly zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }
        }
    };
}

common_ctors!(SimTime);
common_ctors!(SimDuration);

impl SimTime {
    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest nanosecond and saturating at the representable maximum.
    ///
    /// NaN or negative factors clamp to zero; `+inf` saturates.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor.is_nan() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = self.0 as f64 * factor;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// The ratio of two durations as `f64`. Returns zero when the divisor
    /// is zero (the simulator treats "fraction of nothing" as nothing).
    // units: a duration divided by a duration is a pure number.
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.is_zero() {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on division by zero, like integer division.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(5);
        assert_eq!(b.duration_since(a), SimDuration::from_millis(4));
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(250);
        t += SimDuration::from_micros(750);
        assert_eq!(t, SimTime::from_millis(1));
        assert_eq!(t - SimDuration::from_millis(1), SimTime::ZERO);
        // Saturation, not wraparound.
        assert_eq!(t - SimDuration::from_secs(10), SimTime::ZERO);
    }

    #[test]
    fn mul_f64_behaviour() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::INFINITY), SimDuration::from_nanos(u64::MAX));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_millis(6)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
    }
}
