//! Bounded event tracing.
//!
//! Governor debugging needs "what did it decide, and when?" without paying
//! for an unbounded log across a multi-minute campaign. [`TraceRing`] keeps
//! the most recent `capacity` events; older ones are dropped silently.

use crate::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A single traced event: a timestamp plus a preformatted message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event occurred on the simulated timeline.
    pub at: SimTime,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.at, self.message)
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// # Example
///
/// ```
/// use dora_sim_core::{SimTime, trace::TraceRing};
///
/// let mut ring = TraceRing::new(2);
/// ring.record(SimTime::from_millis(1), "freq -> 1.2 GHz");
/// ring.record(SimTime::from_millis(2), "freq -> 1.5 GHz");
/// ring.record(SimTime::from_millis(3), "freq -> 1.7 GHz");
/// let events: Vec<_> = ring.iter().map(|e| e.message.clone()).collect();
/// assert_eq!(events, ["freq -> 1.5 GHz", "freq -> 1.7 GHz"]);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring retaining at most `capacity` events. A capacity of
    /// zero creates a ring that records nothing (a cheap "tracing off").
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn record(&mut self, at: SimTime, message: impl Into<String>) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            message: message.into(),
        });
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events that were recorded but have since been evicted
    /// (or never stored, for a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all retained events (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_events() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record(SimTime::from_millis(i), format!("e{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let msgs: Vec<_> = ring.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["e2", "e3", "e4"]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut ring = TraceRing::new(0);
        ring.record(SimTime::ZERO, "ignored");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn clear_preserves_drop_count() {
        let mut ring = TraceRing::new(1);
        ring.record(SimTime::ZERO, "a");
        ring.record(SimTime::ZERO, "b");
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn display_formats_timestamp() {
        let e = TraceEvent {
            at: SimTime::from_millis(1500),
            message: "hello".into(),
        };
        assert_eq!(e.to_string(), "[t=1.500000s] hello");
    }
}
