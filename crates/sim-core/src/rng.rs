//! Deterministic pseudo-random number generation.
//!
//! The simulator hand-rolls `xoshiro256**` (Blackman & Vigna) rather than
//! depending on the `rand` crate so that the exact bit stream — and
//! therefore every simulated measurement in EXPERIMENTS.md — is pinned by
//! this repository alone. Seeding goes through SplitMix64 as the reference
//! implementation recommends, so any `u64` (including 0) is a valid seed.

/// A seedable `xoshiro256**` pseudo-random number generator.
///
/// Not cryptographically secure; statistically excellent and extremely fast,
/// which is what a simulator needs.
///
/// # Example
///
/// ```
/// use dora_sim_core::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// let x = a.range_f64(2.0, 5.0);
/// assert!((2.0..5.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` via
    /// SplitMix64. Identical seeds yield identical streams on every
    /// platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro requires a not-all-zero state; splitmix64 cannot produce
        // four consecutive zeros, but guard anyway for future edits.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent child generator. Used to give each simulated
    /// component its own stream so that adding draws to one component does
    /// not perturb another.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// A uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// A standard-normal draw via the Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// A normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative standard deviation {std_dev}");
        mean + std_dev * self.normal()
    }

    /// A lognormal multiplicative noise factor with median 1 and the given
    /// `sigma` (standard deviation of the underlying normal). Handy for
    /// modelling run-to-run measurement jitter that can never be negative.
    pub fn jitter(&mut self, sigma: f64) -> f64 {
        (self.normal() * sigma).exp()
    }

    /// An exponential draw with the given rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "non-positive rate {lambda}");
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "bucket count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn range_u64_inclusive_bounds_hit() {
        let mut rng = Rng::seed_from_u64(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.range_u64(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(19);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn jitter_is_positive_with_unit_median() {
        let mut rng = Rng::seed_from_u64(23);
        let n = 50_000;
        let mut above = 0;
        for _ in 0..n {
            let j = rng.jitter(0.1);
            assert!(j > 0.0);
            if j > 1.0 {
                above += 1;
            }
        }
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "median fraction {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Rng::seed_from_u64(31);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42u8]), Some(&42));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng::seed_from_u64(37);
        let mut child = parent.fork();
        // Child stream must differ from the parent continuation.
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(41);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }
}
