//! Streaming statistics.
//!
//! Performance counters, power rails and the experiment harness all reduce
//! long simulations to a handful of summary numbers. This module provides
//! the reducers they share:
//!
//! * [`Running`] — Welford mean/variance/min/max without storing samples.
//! * [`TimeWeighted`] — average of a piecewise-constant signal (e.g. power
//!   in watts between governor decisions), weighted by how long each value
//!   was held.
//! * [`Ema`] — exponential moving average, used by utilization tracking in
//!   the `interactive` governor model.
//! * [`Samples`] — a retained sample set with exact quantiles and an
//!   empirical CDF, used for the paper's error-CDF and load-time-CDF
//!   figures (Figs. 5 and 7b).

/// Welford-style running moments over a stream of `f64` samples.
///
/// # Example
///
/// ```
/// use dora_sim_core::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 6.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 3);
/// assert_eq!(r.mean(), 4.0);
/// assert_eq!(r.min(), 2.0);
/// assert_eq!(r.max(), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample. Non-finite samples are ignored (a simulator NaN is a
    /// bug upstream, but must not poison a whole campaign's statistics).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; zero when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Record `(value, hold_duration_seconds)` segments; the mean weights each
/// value by how long it was held, which is the correct way to average power
/// or frequency over a run with unequal governor intervals.
///
/// # Example
///
/// ```
/// use dora_sim_core::stats::TimeWeighted;
///
/// let mut p = TimeWeighted::new();
/// p.record(1.0, 3.0); // 1 W for 3 s
/// p.record(5.0, 1.0); // 5 W for 1 s
/// assert_eq!(p.mean(), 2.0);
/// assert_eq!(p.integral(), 8.0); // joules
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeWeighted {
    integral: f64,
    total_weight: f64,
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment where `value` was held for `weight` (seconds).
    /// Segments with non-positive or non-finite weight are ignored.
    pub fn record(&mut self, value: f64, weight: f64) {
        if weight <= 0.0 || !weight.is_finite() || !value.is_finite() {
            return;
        }
        self.integral += value * weight;
        self.total_weight += weight;
    }

    /// The weighted mean; zero when nothing recorded.
    pub fn mean(&self) -> f64 {
        if self.total_weight == 0.0 {
            0.0
        } else {
            self.integral / self.total_weight
        }
    }

    /// The integral `Σ value·weight` (e.g. joules if value is watts and
    /// weight is seconds).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The total recorded weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

/// Exponential moving average with a configurable smoothing factor.
///
/// # Example
///
/// ```
/// use dora_sim_core::stats::Ema;
///
/// let mut e = Ema::new(0.5);
/// e.push(10.0);
/// e.push(0.0);
/// assert_eq!(e.value(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with smoothing factor `alpha` in `(0, 1]`; the first
    /// sample initializes the average directly.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
        Ema { alpha, value: None }
    }

    /// Feeds a sample.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current average; zero before any sample.
    // units: the EMA is dimensionless machinery — it averages whatever
    // quantity its samples carry, so the scalar is the honest type here.
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

/// A retained sample set with exact order statistics.
///
/// Used where the paper reports distributions: the prediction-error CDFs of
/// Fig. 5 and the load-time CDF of Fig. 7(b).
///
/// # Example
///
/// ```
/// use dora_sim_core::stats::Samples;
///
/// let s: Samples = [4.0, 1.0, 3.0, 2.0].into_iter().collect();
/// assert_eq!(s.quantile(0.0), 1.0);
/// assert_eq!(s.quantile(1.0), 4.0);
/// assert_eq!(s.cdf_at(2.5), 0.5); // half the samples are <= 2.5
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample (non-finite values ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.sorted.push(x);
            self.dirty = true;
        }
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted.sort_by(f64::total_cmp);
            self.dirty = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile for `q` in `[0, 1]` using linear interpolation
    /// between order statistics. Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let mut me = self.clone();
        me.ensure_sorted();
        me.quantile_sorted(q)
    }

    fn quantile_sorted(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Fraction of samples `<= x` (the empirical CDF). Zero when empty.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let mut me = self.clone();
        me.ensure_sorted();
        let count = me.sorted.partition_point(|&v| v <= x);
        count as f64 / me.sorted.len() as f64
    }

    /// The arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// `(x, F(x))` points of the empirical CDF, one per distinct sample —
    /// exactly the series plotted in the paper's CDF figures.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut me = self.clone();
        me.ensure_sorted();
        let n = me.sorted.len();
        let mut points = Vec::new();
        let mut i = 0;
        while i < n {
            let x = me.sorted[i];
            let mut j = i;
            while j + 1 < n && me.sorted[j + 1] == x {
                j += 1;
            }
            points.push((x, (j + 1) as f64 / n as f64));
            i = j + 1;
        }
        points
    }

    /// A read-only view of the samples in sorted order.
    pub fn sorted(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.sorted
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic_moments() {
        let mut r = Running::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 5);
        assert!((r.mean() - 3.0).abs() < 1e-12);
        assert!((r.variance() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 5.0);
    }

    #[test]
    fn running_ignores_non_finite() {
        let mut r = Running::new();
        r.push(f64::NAN);
        r.push(f64::INFINITY);
        r.push(2.0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), 2.0);
    }

    #[test]
    fn running_empty_is_zeroed() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn running_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn time_weighted_average_and_integral() {
        let mut tw = TimeWeighted::new();
        tw.record(2.0, 1.0);
        tw.record(4.0, 3.0);
        assert!((tw.mean() - 3.5).abs() < 1e-12);
        assert!((tw.integral() - 14.0).abs() < 1e-12);
        assert!((tw.total_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_rejects_bad_segments() {
        let mut tw = TimeWeighted::new();
        tw.record(1.0, 0.0);
        tw.record(1.0, -2.0);
        tw.record(f64::NAN, 1.0);
        assert_eq!(tw.mean(), 0.0);
    }

    #[test]
    fn ema_converges_to_constant_input() {
        let mut e = Ema::new(0.3);
        for _ in 0..100 {
            e.push(7.0);
        }
        assert!((e.value() - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ema_rejects_zero_alpha() {
        let _ = Ema::new(0.0);
    }

    #[test]
    fn samples_quantiles_interpolate() {
        let s: Samples = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 40.0);
        assert!((s.quantile(0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn samples_cdf_and_points() {
        let s: Samples = [1.0, 1.0, 2.0, 4.0].into_iter().collect();
        assert_eq!(s.cdf_at(0.5), 0.0);
        assert_eq!(s.cdf_at(1.0), 0.5);
        assert_eq!(s.cdf_at(3.0), 0.75);
        assert_eq!(s.cdf_at(10.0), 1.0);
        assert_eq!(s.cdf_points(), vec![(1.0, 0.5), (2.0, 0.75), (4.0, 1.0)]);
    }

    #[test]
    fn samples_empty_behaviour() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.cdf_at(1.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cdf_points().is_empty());
    }

    #[test]
    fn samples_extend_and_mean() {
        let mut s = Samples::new();
        s.extend([3.0, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.sorted(), &[1.0, 2.0, 3.0]);
    }
}
