//! Typed, deterministic observation bus for the simulation kernel.
//!
//! The boards in `dora-soc` used to expose one observation channel: a
//! bounded ring of pre-formatted `String`s. That design had two costs.
//! Every interesting point in the hot loop paid a `format!` allocation
//! even when nobody was listening, and downstream consumers (examples,
//! the CLI, experiments) had to scrape text to recover numbers the
//! simulator had just thrown away.
//!
//! This module replaces the string ring as the one observation channel
//! with a typed bus:
//!
//! * [`ProbeEvent`] — the closed vocabulary of things a simulated board
//!   can report, carrying typed payloads (instructions, watts, kelvins
//!   above ambient... no strings to parse).
//! * [`Probe`] — the observer. Implementations receive every event with
//!   its simulated timestamp, in emission order.
//! * [`ProbeBus`] — the dispatch point the simulator owns. Its
//!   [`ProbeBus::emit_with`] takes a *closure* that builds the event, and
//!   never calls it unless at least one probe is attached — so the
//!   probe-off hot path performs no allocation and no formatting at all.
//! * [`ProbeRing`] — a bounded, ready-made sink that records
//!   `(timestamp, event)` pairs for later inspection, the typed
//!   successor of [`crate::trace::TraceRing`].
//!
//! Determinism: the bus holds sinks in attachment order and dispatches
//! synchronously on the simulation thread, so two runs of the same
//! seeded scenario observe byte-identical event streams. Probes are
//! observers, not simulation state — attaching, detaching, or mutating
//! one never perturbs the simulation itself, and board snapshots
//! deliberately exclude them.
//!
//! Frequencies cross this API as raw kHz (`u64`) rather than as the
//! `dora-soc` `Frequency` newtype, and cluster identities cross as raw
//! indices (`usize`) rather than as the `dora-soc` `ClusterId` newtype:
//! `dora-sim-core` is the bottom layer of the workspace and cannot name
//! types from the SoC model above it.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::units::{Celsius, Ppw, Seconds, Watts};
use crate::SimTime;

/// One candidate operating point as a governor's model predicted it at
/// decision time: the estimated load time, device power, and
/// performance-per-watt the governor weighed before picking a frequency.
///
/// A sequence of these forms the `curve` of
/// [`ProbeEvent::GovernorDecision`] — for DORA's Algorithm 1 this is the
/// full predicted T/P/PPW sweep over the frequency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePrediction {
    /// The cluster the candidate operating point lives on (index into
    /// the board's cluster list; `0` on homogeneous SoCs).
    pub cluster: usize,
    /// The candidate core frequency, in kHz.
    pub frequency_khz: u64,
    /// Predicted page load time at this frequency.
    pub load_time: Seconds,
    /// Predicted device power at this frequency.
    pub power: Watts,
    /// Predicted performance-per-watt at this frequency.
    pub ppw: Ppw,
    /// Whether the prediction meets the QoS deadline.
    pub feasible: bool,
}

/// An observation emitted by the simulation kernel.
///
/// The enum is the complete vocabulary: probes match on it exhaustively
/// and the compiler flags every consumer when a variant is added.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeEvent {
    /// A task was assigned to a core.
    TaskAssigned {
        /// The core the task was placed on.
        core: usize,
        /// The task's debug name.
        name: String,
    },
    /// A core retired work during one simulation quantum.
    QuantumRetired {
        /// The core that retired the instructions.
        core: usize,
        /// Instructions retired this quantum.
        instructions: f64,
        /// The shared-cache miss ratio the contention fixed point
        /// converged to for this core this quantum.
        miss_ratio: f64,
    },
    /// A cluster clock changed.
    DvfsSwitch {
        /// The cluster whose clock switched (`0` on homogeneous SoCs).
        cluster: usize,
        /// The previous frequency, in kHz.
        from_khz: u64,
        /// The new frequency, in kHz.
        to_khz: u64,
    },
    /// A core was rebound from one cluster to another (big.LITTLE task
    /// migration).
    TaskMigrated {
        /// The core that migrated.
        core: usize,
        /// The cluster the core left.
        from_cluster: usize,
        /// The cluster the core now runs on.
        to_cluster: usize,
    },
    /// The task on a core ran out of instructions.
    TaskFinished {
        /// The core whose task finished.
        core: usize,
        /// The sub-quantum-accurate finish time.
        at: SimTime,
    },
    /// Device power over the quantum that just completed.
    PowerSample {
        /// Total device power (platform + cores + uncore + DRAM +
        /// leakage).
        total: Watts,
        /// The leakage component alone, which tracks die temperature.
        leakage: Watts,
    },
    /// Die temperature after the quantum that just completed.
    ThermalSample {
        /// Current die temperature.
        temperature: Celsius,
    },
    /// A governor made an operating-point decision.
    GovernorDecision {
        /// The governor's name (e.g. `"DORA"`, `"interactive"`).
        governor: String,
        /// The cluster the governor chose (`0` on homogeneous SoCs).
        cluster: usize,
        /// The frequency the governor chose, in kHz.
        chosen_khz: u64,
        /// The predicted per-candidate curve behind the pick, if the
        /// governor has a predictive model; empty otherwise.
        curve: Vec<CandidatePrediction>,
    },
}

/// An observer of simulation events.
///
/// `on_event` is called synchronously at the emission point, in event
/// order, with the simulated timestamp of the emitting quantum. A probe
/// must not assume it sees events from the start of a run — it sees
/// whatever was emitted while it was attached.
pub trait Probe: fmt::Debug {
    /// Receives one event. `at` is the simulated time of emission (for
    /// quantum-grained events, the start of the quantum; sub-quantum
    /// detail such as a task's exact finish time rides in the event).
    fn on_event(&mut self, at: SimTime, event: &ProbeEvent);
}

/// Handle returned by [`ProbeBus::attach`], used to detach again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeId(u64);

/// The dispatch point. The simulator owns one bus and routes every
/// observation through it; consumers attach [`Probe`]s.
///
/// Dispatch is deterministic: sinks are invoked in attachment order.
/// With no sinks attached, [`ProbeBus::emit_with`] returns before even
/// constructing the event — the probe-off cost is one branch.
#[derive(Debug, Default)]
pub struct ProbeBus {
    sinks: Vec<(ProbeId, Rc<RefCell<dyn Probe>>)>,
    next_id: u64,
}

impl ProbeBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a probe; it receives every subsequent event until
    /// detached. Returns the handle for [`ProbeBus::detach`].
    pub fn attach(&mut self, probe: Rc<RefCell<dyn Probe>>) -> ProbeId {
        let id = ProbeId(self.next_id);
        self.next_id += 1;
        self.sinks.push((id, probe));
        id
    }

    /// Detaches a previously attached probe. Returns whether the handle
    /// was still attached.
    pub fn detach(&mut self, id: ProbeId) -> bool {
        let before = self.sinks.len();
        self.sinks.retain(|(sid, _)| *sid != id);
        self.sinks.len() != before
    }

    /// Whether at least one probe is attached. Emitters can use this to
    /// skip gathering inputs that only matter to observers.
    pub fn is_active(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Number of attached probes.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no probe is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Emits the event produced by `build` to every attached probe, in
    /// attachment order. With no probes attached, `build` is never
    /// called — this is the zero-cost guarantee the hot path relies on:
    /// pass a closure and defer every allocation into it.
    pub fn emit_with(&mut self, at: SimTime, build: impl FnOnce() -> ProbeEvent) {
        if self.sinks.is_empty() {
            return;
        }
        let event = build();
        for (_, sink) in &self.sinks {
            sink.borrow_mut().on_event(at, &event);
        }
    }

    /// Emits an already-constructed event. Prefer [`ProbeBus::emit_with`]
    /// on hot paths; this is for call sites that hold the event anyway.
    pub fn emit(&mut self, at: SimTime, event: ProbeEvent) {
        if self.sinks.is_empty() {
            return;
        }
        for (_, sink) in &self.sinks {
            sink.borrow_mut().on_event(at, &event);
        }
    }

    /// Detaches every probe.
    pub fn clear(&mut self) {
        self.sinks.clear();
    }
}

/// A timestamped event as recorded by [`ProbeRing`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Simulated time of emission.
    pub at: SimTime,
    /// The event payload.
    pub event: ProbeEvent,
}

/// A bounded ring sink: keeps the most recent `capacity` events and
/// counts the rest as dropped. The typed successor of
/// [`crate::trace::TraceRing`] — same memory-bounding contract, but the
/// payloads stay structured.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRing {
    capacity: usize,
    events: VecDeque<RecordedEvent>,
    dropped: u64,
}

impl ProbeRing {
    /// A ring holding at most `capacity` events. A capacity of zero
    /// records nothing (every event counts as dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// A shared handle ready to hand to [`ProbeBus::attach`].
    pub fn shared(capacity: usize) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Self::new(capacity)))
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RecordedEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted or rejected since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets all retained events (the drop counter keeps counting up).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The retained events as an owned vector, oldest first.
    pub fn to_vec(&self) -> Vec<RecordedEvent> {
        self.events.iter().cloned().collect()
    }
}

impl Probe for ProbeRing {
    fn on_event(&mut self, at: SimTime, event: &ProbeEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(RecordedEvent {
            at,
            event: event.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Counter {
        seen: Vec<(SimTime, ProbeEvent)>,
    }

    impl Probe for Counter {
        fn on_event(&mut self, at: SimTime, event: &ProbeEvent) {
            self.seen.push((at, event.clone()));
        }
    }

    fn switch(to: u64) -> ProbeEvent {
        ProbeEvent::DvfsSwitch {
            cluster: 0,
            from_khz: 300_000,
            to_khz: to,
        }
    }

    #[test]
    fn emit_with_skips_construction_when_no_probe_attached() {
        let mut bus = ProbeBus::new();
        let mut built = false;
        bus.emit_with(SimTime::ZERO, || {
            built = true;
            switch(422_400)
        });
        assert!(!built, "event must not be constructed without a listener");
        assert!(!bus.is_active());
    }

    #[test]
    fn attached_probes_see_events_in_order_and_detach_stops_delivery() {
        let mut bus = ProbeBus::new();
        let a = Rc::new(RefCell::new(Counter::default()));
        let b = Rc::new(RefCell::new(Counter::default()));
        let id_a = bus.attach(a.clone());
        let _id_b = bus.attach(b.clone());
        assert!(bus.is_active());
        assert_eq!(bus.len(), 2);

        bus.emit_with(SimTime::from_millis(1), || switch(422_400));
        bus.emit(SimTime::from_millis(2), switch(652_800));

        assert!(bus.detach(id_a), "first detach succeeds");
        assert!(!bus.detach(id_a), "second detach is a no-op");
        bus.emit(SimTime::from_millis(3), switch(883_200));

        assert_eq!(a.borrow().seen.len(), 2);
        assert_eq!(b.borrow().seen.len(), 3);
        assert_eq!(a.borrow().seen[0].0, SimTime::from_millis(1));
        assert_eq!(b.borrow().seen[2].1, switch(883_200));
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let mut ring = ProbeRing::new(2);
        for (i, t) in [1_u64, 2, 3].iter().enumerate() {
            ring.on_event(SimTime::from_millis(*t), &switch(100_000 + i as u64));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let kept: Vec<_> = ring.iter().map(|r| r.at).collect();
        assert_eq!(kept, vec![SimTime::from_millis(2), SimTime::from_millis(3)]);
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut ring = ProbeRing::new(0);
        ring.on_event(SimTime::ZERO, &switch(422_400));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn shared_ring_works_through_the_bus() {
        let mut bus = ProbeBus::new();
        let ring = ProbeRing::shared(16);
        bus.attach(ring.clone());
        bus.emit_with(SimTime::from_millis(5), || ProbeEvent::ThermalSample {
            temperature: Celsius::new(41.5),
        });
        let events = ring.borrow().to_vec();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, SimTime::from_millis(5));
        assert!(matches!(events[0].event, ProbeEvent::ThermalSample { .. }));
    }
}
