//! # dora-sim-core
//!
//! Deterministic simulation kernel underpinning the DORA reproduction.
//!
//! The DORA paper evaluates its frequency governor on a physical Google
//! Nexus 5. This workspace replaces the phone with a software model, and
//! everything in that model bottoms out on three primitives provided here:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time
//!   with saturating arithmetic, so the timing model can never silently
//!   wrap.
//! * [`Rng`] — a seedable `xoshiro256**` generator. Every stochastic choice
//!   in the simulator draws from one of these, which makes whole campaigns
//!   reproducible from a single `u64` seed.
//! * [`stats`] — streaming statistics (Welford moments, quantile sketches,
//!   time-weighted averages) used by performance counters and by the
//!   experiment harness.
//!
//! Observation rides on the typed [`probe`] bus: simulators emit
//! [`probe::ProbeEvent`]s lazily (zero cost with no probe attached) and
//! consumers attach [`probe::Probe`] sinks. A small bounded
//! [`trace::TraceRing`] remains as the string-formatted compatibility
//! layer over the bus.
//!
//! # Example
//!
//! ```
//! use dora_sim_core::{Rng, SimDuration, SimTime, stats::Running};
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let mut acc = Running::new();
//! let mut now = SimTime::ZERO;
//! for _ in 0..1000 {
//!     now += SimDuration::from_micros(100);
//!     acc.push(rng.f64());
//! }
//! assert_eq!(now, SimTime::from_millis(100));
//! assert!((acc.mean() - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod rng;
mod time;

pub mod probe;
pub mod sketch;
pub mod stats;
pub mod trace;
pub mod units;

pub use rng::Rng;
pub use time::{SimDuration, SimTime};
