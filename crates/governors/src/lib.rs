//! # dora-governors
//!
//! The CPU-frequency-governor framework of the DORA reproduction, plus
//! every baseline the paper compares against (Section IV-A and V-C):
//!
//! * [`PerformanceGovernor`] — pins the maximum frequency (Android
//!   `performance`).
//! * [`PowersaveGovernor`] — pins the minimum frequency (Android
//!   `powersave`; the paper dismisses it for 7–26 s load times, which the
//!   reproduction's Table III experiment confirms in spirit).
//! * [`InteractiveGovernor`] — a faithful model of Android's default
//!   `interactive` governor: utilization-driven with a hispeed jump and
//!   hysteresis. This is the paper's baseline.
//! * [`ConservativeGovernor`] — a step-up/step-down utilization governor,
//!   included as an extra reference point.
//! * [`PinnedGovernor`] — holds one precomputed frequency. The paper's
//!   hypothetical `DL` (deadline-only, pinned at `fD`), `EE` (energy-only,
//!   pinned at `fE`) and `Offline_opt` governors are pinned governors whose
//!   frequency the campaign determines by oracle enumeration.
//!
//! DORA itself lives in the `dora` crate; it implements the same
//! [`Governor`] trait so the evaluation treats all policies uniformly.
//!
//! # Example
//!
//! ```
//! use dora_governors::{Governor, GovernorObservation, InteractiveGovernor};
//! use dora_soc::DvfsTable;
//! use dora_sim_core::units::{Celsius, Mpki, Utilization};
//! use dora_sim_core::{SimDuration, SimTime};
//!
//! let table = DvfsTable::default();
//! let mut gov = InteractiveGovernor::new(table.clone());
//! let obs = GovernorObservation {
//!     now: SimTime::from_millis(20),
//!     interval: SimDuration::from_millis(20),
//!     frequency: table.min_frequency(),
//!     cluster: 0,
//!     per_core_utilization: [0.95, 0.2, 0.0, 0.0].map(Utilization::clamped).to_vec(),
//!     shared_l2_mpki: Mpki::clamped(3.0),
//!     corun_utilization: Utilization::ZERO,
//!     temperature: Celsius::new(30.0),
//! };
//! let f = gov.decide(&obs);
//! assert!(f > table.min_frequency()); // busy core -> clock up
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use dora_sim_core::units::{Celsius, Mpki, Utilization};
use dora_sim_core::{SimDuration, SimTime};
use dora_soc::{ClusterId, DvfsTable, Frequency, OperatingPoint};
use std::fmt;

/// What a governor sees at each decision point — the same quantities DORA
/// samples from `perf` counters on the phone (utilization, shared-L2 MPKI,
/// temperature) plus the current clock.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorObservation {
    /// Current simulated time.
    pub now: SimTime,
    /// Time since the previous decision.
    pub interval: SimDuration,
    /// The currently programmed core frequency (of the governed cluster).
    pub frequency: Frequency,
    /// The cluster the governed core currently binds to — an index into
    /// the board's cluster list, always `0` on homogeneous parts.
    pub cluster: usize,
    /// Busy fraction of each core over the interval.
    pub per_core_utilization: Vec<Utilization>,
    /// Shared L2 MPKI over the interval (Table I X6).
    pub shared_l2_mpki: Mpki,
    /// Utilization of the co-scheduled task's core (Table I X9).
    pub corun_utilization: Utilization,
    /// Die temperature.
    pub temperature: Celsius,
}

impl GovernorObservation {
    /// The highest per-core utilization (what `interactive` keys on).
    pub fn max_utilization(&self) -> Utilization {
        self.per_core_utilization
            .iter()
            .fold(Utilization::ZERO, |m, &u| m.max(u))
    }
}

/// A CPU frequency governor: a policy mapping observations to frequency
/// settings at a fixed decision cadence.
pub trait Governor: fmt::Debug {
    /// The governor's name as it appears in reports (e.g. `interactive`).
    fn name(&self) -> &str;

    /// How often the governor wants to be consulted.
    fn decision_interval(&self) -> SimDuration;

    /// Chooses the frequency for the next interval. Implementations must
    /// return a frequency that exists in their DVFS table.
    fn decide(&mut self, observation: &GovernorObservation) -> Frequency;

    /// Chooses a full (cluster, frequency) operating point for the next
    /// interval. Heterogeneous-aware governors (DORA on big.LITTLE parts)
    /// override this to search the product space with migration cost in
    /// the decision model; single-knob governors keep the default, which
    /// stays on the observed cluster and delegates the frequency choice
    /// to [`Governor::decide`].
    fn decide_point(&mut self, observation: &GovernorObservation) -> OperatingPoint {
        OperatingPoint {
            cluster: ClusterId::new(observation.cluster),
            frequency: self.decide(observation),
        }
    }

    /// Clears internal state between workloads (hysteresis timers etc.).
    fn reset(&mut self) {}

    /// Notifies the governor that the foreground page changed (browsing
    /// sessions load many pages back to back). Utilization-driven
    /// governors don't care — the default is a no-op — but model-based
    /// governors retarget their page-complexity inputs.
    fn page_changed(&mut self, _page: &dora_browser::PageFeatures) {}

    /// The predicted candidate curve behind the most recent
    /// [`Governor::decide`] call, for observation
    /// ([`dora_sim_core::probe::ProbeEvent::GovernorDecision`] events).
    /// Model-based governors (DORA) report their per-frequency load-time /
    /// power / PPW predictions here; heuristic governors have no such
    /// curve and keep the default `None`.
    fn decision_curve(&self) -> Option<Vec<dora_sim_core::probe::CandidatePrediction>> {
        None
    }
}

/// Always runs at the highest available frequency.
///
/// The Android `performance` governor: "always operates the cores in the
/// highest available frequency of 2.2 GHz" (Section IV-A).
#[derive(Debug, Clone)]
pub struct PerformanceGovernor {
    table: DvfsTable,
    interval: SimDuration,
}

impl PerformanceGovernor {
    /// Creates the governor over a DVFS table.
    pub fn new(table: DvfsTable) -> Self {
        PerformanceGovernor {
            table,
            interval: SimDuration::from_millis(100),
        }
    }
}

impl Governor for PerformanceGovernor {
    fn name(&self) -> &str {
        "performance"
    }

    fn decision_interval(&self) -> SimDuration {
        self.interval
    }

    fn decide(&mut self, _observation: &GovernorObservation) -> Frequency {
        self.table.max_frequency()
    }
}

/// Always runs at the lowest available frequency.
#[derive(Debug, Clone)]
pub struct PowersaveGovernor {
    table: DvfsTable,
    interval: SimDuration,
}

impl PowersaveGovernor {
    /// Creates the governor over a DVFS table.
    pub fn new(table: DvfsTable) -> Self {
        PowersaveGovernor {
            table,
            interval: SimDuration::from_millis(100),
        }
    }
}

impl Governor for PowersaveGovernor {
    fn name(&self) -> &str {
        "powersave"
    }

    fn decision_interval(&self) -> SimDuration {
        self.interval
    }

    fn decide(&mut self, _observation: &GovernorObservation) -> Frequency {
        self.table.min_frequency()
    }
}

/// Holds a single, externally chosen frequency.
///
/// The paper's hypothetical governors are pinned policies: `DL` pins the
/// lowest deadline-meeting frequency `fD`, `EE` pins the PPW-optimal
/// frequency `fE`, and `Offline_opt` pins the single best feasible setting
/// found by exhaustive enumeration. The campaign computes the pin; this
/// type just holds it.
#[derive(Debug, Clone)]
pub struct PinnedGovernor {
    name: String,
    frequency: Frequency,
    interval: SimDuration,
}

impl PinnedGovernor {
    /// Creates a pinned governor. The caller is responsible for passing a
    /// frequency that exists in the board's DVFS table.
    pub fn new(name: impl Into<String>, frequency: Frequency) -> Self {
        PinnedGovernor {
            name: name.into(),
            frequency,
            interval: SimDuration::from_millis(100),
        }
    }

    /// The pinned frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }
}

impl Governor for PinnedGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decision_interval(&self) -> SimDuration {
        self.interval
    }

    fn decide(&mut self, _observation: &GovernorObservation) -> Frequency {
        self.frequency
    }
}

/// Tunables of the [`InteractiveGovernor`], mirroring the sysfs knobs of
/// the Android implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractiveConfig {
    /// Utilization at which the governor jumps straight to
    /// `hispeed_freq` (`go_hispeed_load`, default 85 %).
    pub go_hispeed_load: Utilization,
    /// The jump target (default: the table frequency nearest 1.19 GHz,
    /// matching typical MSM8974 tuning).
    pub hispeed_freq: Frequency,
    /// The utilization the governor tries to hold (`target_load`).
    pub target_load: Utilization,
    /// Sampling cadence (`timer_rate`, default 20 ms).
    pub timer_rate: SimDuration,
    /// Minimum dwell before clocking down (`min_sample_time`).
    pub min_sample_time: SimDuration,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        InteractiveConfig {
            go_hispeed_load: Utilization::clamped(0.85),
            hispeed_freq: Frequency::from_mhz(1190.4),
            target_load: Utilization::clamped(0.80),
            timer_rate: SimDuration::from_millis(20),
            min_sample_time: SimDuration::from_millis(80),
        }
    }
}

/// A model of Android's default `interactive` governor — the paper's
/// baseline. It "chooses a frequency setting based on the processor
/// utilization" (Section IV-A): on high load it jumps to a hispeed
/// frequency, then tracks a target utilization, and refuses to clock down
/// until a minimum dwell has passed.
#[derive(Debug, Clone)]
pub struct InteractiveGovernor {
    table: DvfsTable,
    config: InteractiveConfig,
    floor_until: SimTime,
    floor: Frequency,
}

impl InteractiveGovernor {
    /// Creates the governor with default tuning.
    pub fn new(table: DvfsTable) -> Self {
        InteractiveGovernor::with_config(table, InteractiveConfig::default())
    }

    /// Creates the governor with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if either load is zero (a [`Utilization`] is already within
    /// `[0, 1]` by construction).
    pub fn with_config(table: DvfsTable, config: InteractiveConfig) -> Self {
        assert!(
            config.go_hispeed_load > Utilization::ZERO,
            "go_hispeed_load must be positive"
        );
        assert!(
            config.target_load > Utilization::ZERO,
            "target_load must be positive"
        );
        let floor = table.min_frequency();
        InteractiveGovernor {
            table,
            config,
            floor_until: SimTime::ZERO,
            floor,
        }
    }

    fn hispeed(&self) -> Frequency {
        self.table.nearest(self.config.hispeed_freq)
    }
}

impl Governor for InteractiveGovernor {
    fn name(&self) -> &str {
        "interactive"
    }

    fn decision_interval(&self) -> SimDuration {
        self.config.timer_rate
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        let util = observation.max_utilization();
        let current = observation.frequency;

        // Demanded frequency so that util·f_cur / f_new == target_load.
        let demanded_mhz = current.as_mhz() * util.value() / self.config.target_load.value();
        let mut target = self.table.ceil(Frequency::from_mhz(demanded_mhz));

        // Hispeed jump on a busy core.
        if util >= self.config.go_hispeed_load {
            target = target.max(self.hispeed());
        }

        if target > current {
            // Going up establishes a floor we must hold for min_sample_time.
            self.floor = target;
            self.floor_until = observation.now + self.config.min_sample_time;
            target
        } else {
            // Going down is only allowed once the dwell expired.
            if observation.now < self.floor_until {
                target.max(self.floor).max(current)
            } else {
                target
            }
        }
    }

    fn reset(&mut self) {
        self.floor_until = SimTime::ZERO;
        self.floor = self.table.min_frequency();
    }
}

/// A model of the classic Linux `ondemand` governor: jump straight to the
/// maximum frequency when utilization crosses the up-threshold, then decay
/// proportionally to the measured load once demand falls.
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    table: DvfsTable,
    up_threshold: Utilization,
    interval: SimDuration,
}

impl OndemandGovernor {
    /// Creates the governor with the kernel's default 80 % up-threshold.
    pub fn new(table: DvfsTable) -> Self {
        OndemandGovernor {
            table,
            up_threshold: Utilization::clamped(0.80),
            interval: SimDuration::from_millis(20),
        }
    }

    /// Creates the governor with an explicit up-threshold.
    ///
    /// # Panics
    ///
    /// Panics if `up_threshold` is zero (a [`Utilization`] is already
    /// within `[0, 1]` by construction).
    pub fn with_threshold(table: DvfsTable, up_threshold: Utilization) -> Self {
        assert!(
            up_threshold > Utilization::ZERO,
            "up_threshold must be positive"
        );
        OndemandGovernor {
            table,
            up_threshold,
            interval: SimDuration::from_millis(20),
        }
    }
}

impl Governor for OndemandGovernor {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn decision_interval(&self) -> SimDuration {
        self.interval
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        let util = observation.max_utilization();
        if util >= self.up_threshold {
            self.table.max_frequency()
        } else {
            // The kernel's proportional decay: next = fmax · util / threshold,
            // snapped to the next table frequency at or above the demand.
            let demanded_mhz =
                self.table.max_frequency().as_mhz() * util.value() / self.up_threshold.value();
            self.table.ceil(Frequency::from_mhz(demanded_mhz))
        }
    }
}

/// A step-wise utilization governor (in the spirit of Linux
/// `conservative`): one table step up when busy, one step down when idle.
#[derive(Debug, Clone)]
pub struct ConservativeGovernor {
    table: DvfsTable,
    up_threshold: Utilization,
    down_threshold: Utilization,
    interval: SimDuration,
}

impl ConservativeGovernor {
    /// Creates the governor with the classic 80 %/20 % thresholds.
    pub fn new(table: DvfsTable) -> Self {
        ConservativeGovernor {
            table,
            up_threshold: Utilization::clamped(0.80),
            down_threshold: Utilization::clamped(0.20),
            interval: SimDuration::from_millis(20),
        }
    }
}

impl Governor for ConservativeGovernor {
    fn name(&self) -> &str {
        "conservative"
    }

    fn decision_interval(&self) -> SimDuration {
        self.interval
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        let util = observation.max_utilization();
        let f = observation.frequency;
        if util > self.up_threshold {
            self.table.step_up(f).unwrap_or_else(|| self.table.ceil(f))
        } else if util < self.down_threshold {
            self.table
                .step_down(f)
                .unwrap_or_else(|| self.table.min_frequency())
        } else {
            self.table.nearest(f)
        }
    }
}

/// A thermal-throttle wrapper: delegates to any inner governor, but caps
/// the frequency while the die is hot.
///
/// Real phones throttle near their junction limit; the paper's Nexus 5
/// reaches 65 °C at 1.9 GHz and would eventually throttle at sustained
/// fmax. The wrapper engages a descending cap when the die crosses
/// `trip` and releases it once the die cools below `release`
/// (hysteresis so the cap doesn't flap).
///
/// # Example
///
/// ```
/// use dora_governors::{Governor, PerformanceGovernor, ThermalThrottle};
/// use dora_sim_core::units::Celsius;
/// use dora_soc::DvfsTable;
///
/// let table = DvfsTable::default();
/// let inner = PerformanceGovernor::new(table.clone());
/// let throttled =
///     ThermalThrottle::new(Box::new(inner), table, Celsius::new(85.0), Celsius::new(75.0));
/// assert_eq!(throttled.name(), "performance+throttle");
/// ```
#[derive(Debug)]
pub struct ThermalThrottle {
    inner: Box<dyn Governor>,
    table: DvfsTable,
    trip: Celsius,
    release: Celsius,
    name: String,
    cap: Option<Frequency>,
}

impl ThermalThrottle {
    /// Wraps `inner` with a thermal cap.
    ///
    /// # Panics
    ///
    /// Panics unless `release < trip` (the hysteresis band must be
    /// non-empty) or if either threshold is outside a plausible die range.
    pub fn new(
        inner: Box<dyn Governor>,
        table: DvfsTable,
        trip: Celsius,
        release: Celsius,
    ) -> Self {
        assert!(
            release < trip,
            "hysteresis requires release ({release}) below trip ({trip})"
        );
        assert!(
            (40.0..=150.0).contains(&trip.value()),
            "implausible trip point {trip}"
        );
        let name = format!("{}+throttle", inner.name());
        ThermalThrottle {
            inner,
            table,
            trip,
            release,
            name,
            cap: None,
        }
    }

    /// The currently engaged cap, if any.
    pub fn cap(&self) -> Option<Frequency> {
        self.cap
    }
}

impl Governor for ThermalThrottle {
    fn name(&self) -> &str {
        &self.name
    }

    fn decision_interval(&self) -> SimDuration {
        self.inner.decision_interval()
    }

    fn decide(&mut self, observation: &GovernorObservation) -> Frequency {
        let wanted = self.inner.decide(observation);
        // Update the cap state machine.
        if observation.temperature >= self.trip {
            // Engage, or ratchet one step further down while still hot.
            let next = match self.cap {
                None => self
                    .table
                    .step_down(observation.frequency)
                    .unwrap_or_else(|| self.table.min_frequency()),
                Some(cap) => self
                    .table
                    .step_down(cap)
                    .unwrap_or_else(|| self.table.min_frequency()),
            };
            self.cap = Some(next);
        } else if observation.temperature <= self.release {
            self.cap = None;
        }
        match self.cap {
            Some(cap) if wanted > cap => cap,
            _ => wanted,
        }
    }

    fn reset(&mut self) {
        self.cap = None;
        self.inner.reset();
    }

    fn page_changed(&mut self, page: &dora_browser::PageFeatures) {
        self.inner.page_changed(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(now_ms: u64, freq: Frequency, utils: Vec<f64>) -> GovernorObservation {
        GovernorObservation {
            now: SimTime::from_millis(now_ms),
            interval: SimDuration::from_millis(20),
            frequency: freq,
            cluster: 0,
            per_core_utilization: utils.into_iter().map(Utilization::clamped).collect(),
            shared_l2_mpki: Mpki::clamped(2.0),
            corun_utilization: Utilization::clamped(0.5),
            temperature: Celsius::new(35.0),
        }
    }

    #[test]
    fn performance_always_max() {
        let t = DvfsTable::default();
        let mut g = PerformanceGovernor::new(t.clone());
        let o = obs(0, t.min_frequency(), vec![0.0]);
        assert_eq!(g.decide(&o), t.max_frequency());
        assert_eq!(g.name(), "performance");
    }

    #[test]
    fn powersave_always_min() {
        let t = DvfsTable::default();
        let mut g = PowersaveGovernor::new(t.clone());
        let o = obs(0, t.max_frequency(), vec![1.0]);
        assert_eq!(g.decide(&o), t.min_frequency());
    }

    #[test]
    fn pinned_holds_its_frequency() {
        let t = DvfsTable::default();
        let f = Frequency::from_mhz(1497.6);
        let mut g = PinnedGovernor::new("DL", f);
        assert_eq!(g.decide(&obs(0, t.min_frequency(), vec![0.1])), f);
        assert_eq!(g.decide(&obs(500, t.max_frequency(), vec![1.0])), f);
        assert_eq!(g.frequency(), f);
        assert_eq!(g.name(), "DL");
    }

    #[test]
    fn interactive_jumps_to_hispeed_on_load() {
        let t = DvfsTable::default();
        let mut g = InteractiveGovernor::new(t.clone());
        let f = g.decide(&obs(20, t.min_frequency(), vec![0.95, 0.1, 0.0, 0.0]));
        assert!(f >= Frequency::from_mhz(1190.4), "hispeed jump, got {f}");
    }

    #[test]
    fn interactive_tracks_target_load_upward() {
        let t = DvfsTable::default();
        let mut g = InteractiveGovernor::new(t.clone());
        // Saturated at 1.5 GHz: demanded = 1497.6/0.8 = 1872 -> ceil 1958.4,
        // and the hispeed rule cannot pull it back down.
        let f = g.decide(&obs(20, Frequency::from_mhz(1497.6), vec![1.0]));
        assert_eq!(f, Frequency::from_mhz(1958.4));
    }

    #[test]
    fn interactive_holds_floor_during_min_sample_time() {
        let t = DvfsTable::default();
        let mut g = InteractiveGovernor::new(t.clone());
        // Jump up at t=20ms.
        let up = g.decide(&obs(20, t.min_frequency(), vec![0.95]));
        assert!(up > t.min_frequency());
        // Idle immediately after: must hold the floor (dwell not expired).
        let hold = g.decide(&obs(40, up, vec![0.05]));
        assert!(hold >= up, "floor violated: {hold} < {up}");
        // After the dwell expires the governor may fall.
        let fall = g.decide(&obs(200, up, vec![0.05]));
        assert!(fall < up, "should fall after dwell: {fall}");
    }

    #[test]
    fn interactive_reset_clears_floor() {
        let t = DvfsTable::default();
        let mut g = InteractiveGovernor::new(t.clone());
        let up = g.decide(&obs(20, t.min_frequency(), vec![1.0]));
        g.reset();
        let f = g.decide(&obs(40, t.min_frequency(), vec![0.01]));
        assert!(f < up);
        assert_eq!(f, t.min_frequency());
    }

    #[test]
    fn interactive_idle_returns_minimum() {
        let t = DvfsTable::default();
        let mut g = InteractiveGovernor::new(t.clone());
        let f = g.decide(&obs(1000, t.min_frequency(), vec![0.0, 0.0, 0.0, 0.0]));
        assert_eq!(f, t.min_frequency());
    }

    #[test]
    fn ondemand_jumps_to_max_and_decays_proportionally() {
        let t = DvfsTable::default();
        let mut g = OndemandGovernor::new(t.clone());
        assert_eq!(g.name(), "ondemand");
        // Busy: straight to fmax.
        assert_eq!(
            g.decide(&obs(0, Frequency::from_mhz(300.0), vec![0.9])),
            t.max_frequency()
        );
        // Half load: ~ fmax * 0.5 / 0.8 = 1.416 GHz -> ceil to 1.4976.
        assert_eq!(
            g.decide(&obs(20, t.max_frequency(), vec![0.5])),
            Frequency::from_mhz(1497.6)
        );
        // Idle: the bottom of the table.
        assert_eq!(
            g.decide(&obs(40, t.max_frequency(), vec![0.0])),
            t.min_frequency()
        );
    }

    #[test]
    #[should_panic(expected = "up_threshold")]
    fn ondemand_rejects_bad_threshold() {
        let _ = OndemandGovernor::with_threshold(DvfsTable::default(), Utilization::ZERO);
    }

    #[test]
    fn conservative_steps_one_at_a_time() {
        let t = DvfsTable::default();
        let mut g = ConservativeGovernor::new(t.clone());
        let start = Frequency::from_mhz(960.0);
        let up = g.decide(&obs(0, start, vec![0.95]));
        assert_eq!(up, t.step_up(start).expect("start is a table entry"));
        let down = g.decide(&obs(20, start, vec![0.05]));
        assert_eq!(down, t.step_down(start).expect("start is a table entry"));
        let hold = g.decide(&obs(40, start, vec![0.5]));
        assert_eq!(hold, start);
    }

    #[test]
    fn max_utilization_clamps() {
        let o = GovernorObservation {
            now: SimTime::ZERO,
            interval: SimDuration::from_millis(20),
            frequency: Frequency::from_mhz(300.0),
            cluster: 0,
            per_core_utilization: [1.7, -0.5, 0.4].map(Utilization::clamped).to_vec(),
            shared_l2_mpki: Mpki::ZERO,
            corun_utilization: Utilization::ZERO,
            temperature: Celsius::new(25.0),
        };
        assert_eq!(o.max_utilization(), Utilization::ONE);
    }

    fn hot_obs(freq: Frequency, temp_c: f64) -> GovernorObservation {
        GovernorObservation {
            temperature: Celsius::new(temp_c),
            ..obs(0, freq, vec![1.0])
        }
    }

    #[test]
    fn throttle_engages_ratchets_and_releases() {
        let t = DvfsTable::default();
        let mut g = ThermalThrottle::new(
            Box::new(PerformanceGovernor::new(t.clone())),
            t.clone(),
            Celsius::new(85.0),
            Celsius::new(75.0),
        );
        // Cool: passes the inner decision through.
        assert_eq!(
            g.decide(&hot_obs(t.max_frequency(), 60.0)),
            t.max_frequency()
        );
        assert!(g.cap().is_none());
        // Hot: caps one step below the running frequency.
        let f1 = g.decide(&hot_obs(t.max_frequency(), 90.0));
        assert_eq!(f1, Frequency::from_mhz(2112.0));
        // Still hot: ratchets further down.
        let f2 = g.decide(&hot_obs(f1, 90.0));
        assert!(f2 < f1);
        // In the hysteresis band: cap holds.
        let f3 = g.decide(&hot_obs(f2, 80.0));
        assert_eq!(f3, f2);
        // Cooled below release: cap drops, inner wins again.
        let f4 = g.decide(&hot_obs(f3, 70.0));
        assert_eq!(f4, t.max_frequency());
    }

    #[test]
    fn throttle_never_raises_the_inner_choice() {
        let t = DvfsTable::default();
        let mut g = ThermalThrottle::new(
            Box::new(PowersaveGovernor::new(t.clone())),
            t.clone(),
            Celsius::new(85.0),
            Celsius::new(75.0),
        );
        // Even while hot, powersave's fmin is below any cap.
        assert_eq!(
            g.decide(&hot_obs(t.min_frequency(), 95.0)),
            t.min_frequency()
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn throttle_rejects_inverted_band() {
        let t = DvfsTable::default();
        let _ = ThermalThrottle::new(
            Box::new(PerformanceGovernor::new(t.clone())),
            t,
            Celsius::new(70.0),
            Celsius::new(80.0),
        );
    }

    #[test]
    fn default_decide_point_stays_on_the_observed_cluster() {
        let t = DvfsTable::default();
        let mut g = PerformanceGovernor::new(t.clone());
        let mut o = obs(0, t.min_frequency(), vec![1.0]);
        o.cluster = 1;
        let p = g.decide_point(&o);
        assert_eq!(p.cluster, ClusterId::new(1));
        assert_eq!(p.frequency, t.max_frequency());
    }

    #[test]
    fn decision_intervals_are_positive() {
        let t = DvfsTable::default();
        let governors: Vec<Box<dyn Governor>> = vec![
            Box::new(PerformanceGovernor::new(t.clone())),
            Box::new(PowersaveGovernor::new(t.clone())),
            Box::new(InteractiveGovernor::new(t.clone())),
            Box::new(ConservativeGovernor::new(t.clone())),
            Box::new(PinnedGovernor::new("EE", t.min_frequency())),
        ];
        for g in &governors {
            assert!(!g.decision_interval().is_zero(), "{}", g.name());
        }
    }
}
