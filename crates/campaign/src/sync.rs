//! The executor's synchronization facade.
//!
//! Every primitive the campaign executor synchronizes through is
//! imported from here and nowhere else (the `sync-hygiene` xtask pass
//! enforces it). Normally the facade is a zero-cost re-export of `std`;
//! under `--cfg interleave` it resolves to the in-tree model checker's
//! drop-ins instead, so `crates/campaign/tests/interleave.rs` can
//! explore every bounded interleaving of [`crate::executor`] without
//! the executor changing a line.
//!
//! ```text
//! RUSTFLAGS="--cfg interleave" cargo test -p dora-campaign --test interleave
//! ```

#[cfg(not(interleave))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(interleave))]
pub(crate) use std::sync::{Mutex, PoisonError};
#[cfg(not(interleave))]
pub(crate) use std::thread;

#[cfg(interleave)]
pub(crate) use interleave::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(interleave)]
pub(crate) use interleave::sync::{Mutex, PoisonError};
#[cfg(interleave)]
pub(crate) use interleave::thread;
