//! # dora-campaign
//!
//! Workload construction, measurement campaigns and governor evaluation —
//! the reproduction of the paper's experimental methodology (Section IV).
//!
//! * [`workload`] — the 54 multiprogrammed workloads: 18 Alexa pages, each
//!   co-scheduled with a kernel from the low, medium and high memory
//!   intensity categories; split into 42 Webpage-Inclusive (training) and
//!   12 Webpage-Neutral (held-out) combinations.
//! * [`runner`] — the scenario runner: browser on cores 0–1, co-runner on
//!   core 2, core 3 off, a governor in the loop at its decision cadence,
//!   a thermal warm-up phase, and per-load metrics (load time, energy,
//!   mean power, PPW, deadline verdict, DVFS switches).
//! * [`training`] — the offline measurement sweeps: the >300-observation
//!   load-time/power campaign over the training workloads and frequency
//!   table, and the idle voltage×ambient leakage calibration.
//! * [`evaluate`] — policy instantiation (interactive, performance, DL,
//!   EE, Offline_opt, DORA, DORA_no_lkg) and the full 54-workload
//!   comparison with summaries normalized to `interactive`.
//! * [`policy`] — the closed [`policy::Policy`] set of paper policies and
//!   the open [`policy::PolicyName`] identities result rows carry.
//! * [`executor`] — deterministic fan-out of independent scenario runs
//!   across a scoped thread pool; output is bit-identical to the
//!   sequential loop at any width.
//! * [`driver`] — the [`driver::CampaignDriver`] context object (executor
//!   + warm-up policy + probe) every campaign operation runs through.
//! * [`fleet`] — fleet-scale simulation: 10⁴–10⁶ sampled device sessions
//!   streamed through sharded, mergeable sketches; memory stays
//!   O(shards) and reports are byte-identical at any executor width.
//! * [`export`] — CSV export of raw results for plotting tools.
//! * [`session`] — multi-page browsing sessions with think time, for
//!   battery-life-style comparisons beyond the paper's single loads.
//!
//! # Example
//!
//! ```no_run
//! use dora_campaign::workload::WorkloadSet;
//! use dora_campaign::runner::{run_scenario, ScenarioConfig};
//! use dora_governors::{Governor, InteractiveGovernor};
//! use dora_soc::DvfsTable;
//!
//! let set = WorkloadSet::paper54();
//! let w = &set.workloads()[0];
//! let mut governor = InteractiveGovernor::new(DvfsTable::default());
//! let result = run_scenario(w, &mut governor, &ScenarioConfig::default());
//! println!("{} loaded in {}", w.id(), result.load_time);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod evaluate;
pub mod executor;
pub mod export;
pub mod fleet;
pub mod policy;
pub mod runner;
pub mod session;
pub(crate) mod sync;
pub mod training;
pub mod workload;

pub use driver::CampaignDriver;
pub use executor::{Executor, Parallelism};
pub use fleet::{FleetConfig, FleetError, FleetReport};
pub use policy::{Policy, PolicyName};
pub use runner::{run_scenario, RunResult, ScenarioConfig};
pub use workload::{Workload, WorkloadSet};
