//! Offline measurement campaigns.
//!
//! Section IV-C: "Over 300 measurements of power and web page load times
//! are taken by executing multiple workload combinations at different
//! frequency settings." This module runs those sweeps in the simulator:
//!
//! * [`training_campaign`] — pinned-frequency loads of the
//!   Webpage-Inclusive workloads across the DVFS table, emitting
//!   [`TrainingObservation`]s for the trainer. The full sweep (42
//!   workloads × 14 frequencies = 588 runs) comfortably exceeds the
//!   paper's "over 300 measurements".
//! * [`leakage_calibration`] — idle thermal-soak measurements across
//!   operating points and ambient temperatures, emitting
//!   [`LeakageObservation`]s for the Eq. 5 fit. On the bench this is a
//!   rail measurement of the idle SoC (total minus the constant platform
//!   draw) after the die settles at each condition.

use crate::executor::Executor;
use crate::runner::{run_scenario, ScenarioConfig};
use crate::workload::{Workload, WorkloadSet};
use dora::models::PredictorInputs;
use dora::trainer::TrainingObservation;
use dora_governors::PinnedGovernor;
use dora_modeling::leakage::LeakageObservation;
use dora_sim_core::units::{Celsius, Watts};
use dora_sim_core::SimDuration;
use dora_soc::board::{Board, BoardConfig};
use dora_soc::Frequency;

/// Configuration of the training sweep.
#[derive(Debug, Clone, Default)]
pub struct TrainingCampaignConfig {
    /// Base scenario configuration (board, warm-up, deadline for the
    /// bookkeeping fields).
    pub scenario: ScenarioConfig,
    /// The frequencies to sweep; `None` sweeps the whole table.
    pub frequencies: Option<Vec<Frequency>>,
}

/// Runs one pinned-frequency measurement and converts it into a
/// [`TrainingObservation`].
pub fn measure_observation(
    workload: &Workload,
    frequency: Frequency,
    config: &ScenarioConfig,
) -> TrainingObservation {
    let mut pinned = PinnedGovernor::new("train", frequency);
    let result = run_scenario(workload, &mut pinned, config);
    let inputs = PredictorInputs::for_frequency(
        workload.page.features,
        frequency,
        &config.board.dvfs,
        result.mean_mpki,
        result.corun_utilization,
    );
    TrainingObservation {
        inputs,
        load_time: result.load_time,
        total_power: result.mean_power,
        mean_temp: result.final_temp,
    }
}

/// The full offline training sweep over the Webpage-Inclusive workloads.
///
/// Returns one observation per (training workload, frequency).
#[deprecated(note = "use CampaignDriver::training_campaign")]
pub fn training_campaign(
    set: &WorkloadSet,
    config: &TrainingCampaignConfig,
) -> Vec<TrainingObservation> {
    training_campaign_impl(set, config, &Executor::sequential())
}

/// [`training_campaign`] with the (workload, frequency) grid fanned out
/// across `executor`.
#[deprecated(note = "use CampaignDriver::training_campaign with an executor")]
pub fn training_campaign_with(
    set: &WorkloadSet,
    config: &TrainingCampaignConfig,
    executor: &Executor,
) -> Vec<TrainingObservation> {
    training_campaign_impl(set, config, executor)
}

/// The training grid behind
/// [`crate::driver::CampaignDriver::training_campaign`].
///
/// Each measurement is an independent seeded simulation, so the returned
/// observations are bit-identical to the sequential sweep, in the same
/// workload-major, frequency-minor order.
pub(crate) fn training_campaign_impl(
    set: &WorkloadSet,
    config: &TrainingCampaignConfig,
    executor: &Executor,
) -> Vec<TrainingObservation> {
    let freqs: Vec<Frequency> = match &config.frequencies {
        Some(fs) => fs.clone(),
        None => config.scenario.board.dvfs.frequencies().collect(),
    };
    let grid: Vec<(&Workload, Frequency)> = set
        .inclusive()
        .flat_map(|w| freqs.iter().map(move |&f| (w, f)))
        .collect();
    executor.map(&grid, |&(workload, f)| {
        measure_observation(workload, f, &config.scenario)
    })
}

/// Idle leakage calibration: for each operating point and ambient
/// temperature, soak the idle board until the die settles, then record
/// `(voltage, die temperature, idle power − platform floor)`.
///
/// The subtraction mirrors the bench procedure: the platform floor
/// (display and rails) is measured once with the SoC rails gated and
/// removed from every sample, leaving the SoC leakage, since idle cores
/// clock-gate their dynamic power away.
#[deprecated(note = "use CampaignDriver::leakage_calibration")]
pub fn leakage_calibration(base: &BoardConfig, ambients: &[Celsius]) -> Vec<LeakageObservation> {
    leakage_calibration_impl(base, ambients, &Executor::sequential())
}

/// [`leakage_calibration`] with the (ambient, operating point) grid
/// fanned out across `executor`.
#[deprecated(note = "use CampaignDriver::leakage_calibration with an executor")]
pub fn leakage_calibration_with(
    base: &BoardConfig,
    ambients: &[Celsius],
    executor: &Executor,
) -> Vec<LeakageObservation> {
    leakage_calibration_impl(base, ambients, executor)
}

/// The soak grid behind
/// [`crate::driver::CampaignDriver::leakage_calibration`]; each soak is
/// an independent board, so observations are bit-identical to the
/// sequential sweep.
#[allow(clippy::expect_used)] // table-sourced frequency: documented invariant
pub(crate) fn leakage_calibration_impl(
    base: &BoardConfig,
    ambients: &[Celsius],
    executor: &Executor,
) -> Vec<LeakageObservation> {
    let soak = SimDuration::from_secs(60);
    let grid: Vec<(Celsius, dora_soc::Opp)> = ambients
        .iter()
        .flat_map(|&ambient| base.dvfs.opps().iter().map(move |&opp| (ambient, opp)))
        .collect();
    executor.map(&grid, |&(ambient, opp)| {
        let config = BoardConfig {
            thermal: dora_soc::thermal::ThermalParams {
                ambient,
                ..base.thermal
            },
            ..base.clone()
        };
        let mut board = Board::new(config, 7);
        board.set_frequency(opp.frequency).expect("table frequency");
        board.step(soak);
        let idle_power = board.last_power().total();
        let platform = board.config().power.platform_floor;
        LeakageObservation {
            voltage: opp.voltage,
            temp: board.temperature(),
            power: (idle_power - platform).max(Watts::ZERO),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CampaignDriver;
    use dora_coworkloads::Intensity;
    use dora_modeling::leakage::fit_leakage;

    fn quick_scenario() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(3))
            .build()
    }

    #[test]
    fn observation_carries_measured_dynamics() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Reddit", Intensity::High)
            .expect("present");
        let obs = measure_observation(w, Frequency::from_mhz(1497.6), &quick_scenario());
        let load_s = obs.load_time.value();
        assert!(load_s > 0.5 && load_s < 10.0);
        let power_w = obs.total_power.value();
        assert!(power_w > 1.5 && power_w < 6.5);
        assert!(
            obs.inputs.l2_mpki.value() > 1.0,
            "high co-runner must show MPKI"
        );
        assert!(obs.inputs.corun_utilization.value() > 0.5);
        assert!((obs.inputs.core_frequency.as_ghz() - 1.4976).abs() < 1e-9);
        assert_eq!(obs.inputs.bus_frequency.as_mhz(), 800.0);
        assert!(
            obs.mean_temp > Celsius::new(25.0),
            "warm-up must heat the die"
        );
    }

    #[test]
    fn small_campaign_produces_expected_grid() {
        let set = WorkloadSet::paper54();
        // Two pages only, three frequencies: 2 pages x 3 classes x 3 f.
        let subset = crate::workload::WorkloadSet::from_workloads(
            set.workloads()
                .iter()
                .filter(|w| w.page.name == "Amazon" || w.page.name == "MSN")
                .cloned()
                .collect(),
        );
        let config = TrainingCampaignConfig {
            scenario: quick_scenario(),
            frequencies: Some(vec![
                Frequency::from_mhz(729.6),
                Frequency::from_mhz(1497.6),
                Frequency::from_mhz(2265.6),
            ]),
        };
        let obs = CampaignDriver::new().training_campaign(&subset, &config);
        assert_eq!(obs.len(), 2 * 3 * 3);
        // One row per (class, frequency) for Amazon (1400 DOM nodes).
        let amazon: Vec<&TrainingObservation> = obs
            .iter()
            .filter(|o| o.inputs.page.dom_nodes() == 1400)
            .collect();
        assert_eq!(amazon.len(), 9);
        // Shared-L2 MPKI rises with the co-runner class at a fixed
        // frequency (the X6 signal DORA keys on).
        let at_15: Vec<&&TrainingObservation> = amazon
            .iter()
            .filter(|o| (o.inputs.core_frequency.as_ghz() - 1.4976).abs() < 1e-9)
            .collect();
        assert_eq!(at_15.len(), 3);
        let mut mpkis: Vec<f64> = at_15.iter().map(|o| o.inputs.l2_mpki.value()).collect();
        let unsorted = mpkis.clone();
        mpkis.sort_by(f64::total_cmp);
        assert!(
            mpkis[2] > mpkis[0] * 1.3,
            "MPKI spread too small: {unsorted:?}"
        );
    }

    #[test]
    fn parallel_training_campaign_matches_sequential() {
        use crate::executor::{Executor, Parallelism};
        let set = WorkloadSet::paper54();
        let subset = crate::workload::WorkloadSet::from_workloads(
            set.workloads()
                .iter()
                .filter(|w| w.page.name == "Amazon")
                .cloned()
                .collect(),
        );
        let config = TrainingCampaignConfig {
            scenario: quick_scenario(),
            frequencies: Some(vec![
                Frequency::from_mhz(729.6),
                Frequency::from_mhz(2265.6),
            ]),
        };
        let sequential = CampaignDriver::new().training_campaign(&subset, &config);
        let parallel = CampaignDriver::new()
            .executor(Executor::new(Parallelism::Fixed(3)))
            .training_campaign(&subset, &config);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.load_time, p.load_time);
            assert_eq!(s.total_power, p.total_power);
            assert_eq!(s.inputs.l2_mpki, p.inputs.l2_mpki);
        }
    }

    #[test]
    fn leakage_calibration_is_fittable() {
        let obs = CampaignDriver::new().leakage_calibration(
            &dora_soc::SocProfile::msm8974().board_config(),
            &[Celsius::new(5.0), Celsius::new(25.0), Celsius::new(45.0)],
        );
        assert_eq!(obs.len(), 3 * 14);
        // Voltage and temperature must both vary for identifiability.
        let vmin = obs.iter().map(|o| o.voltage).fold(f64::INFINITY, f64::min);
        let vmax = obs.iter().map(|o| o.voltage).fold(0.0, f64::max);
        let tmin = obs
            .iter()
            .map(|o| o.temp.value())
            .fold(f64::INFINITY, f64::min);
        let tmax = obs.iter().map(|o| o.temp.value()).fold(0.0, f64::max);
        assert!(vmax - vmin > 0.25, "voltage span {vmin}..{vmax}");
        assert!(tmax - tmin > 20.0, "temperature span {tmin}..{tmax}");
        // And the Eq. 5 fit recovers the board's ground truth closely.
        let fit = fit_leakage(&obs, 3).expect("fits");
        let truth = dora_soc::power::LeakageParams::nexus5();
        for (v, c) in [(0.85, 40.0), (1.1, 65.0)] {
            let c = Celsius::new(c);
            let t = truth.power(v, c).value();
            let rel = (fit.params.eval(v, c).value() - t).abs() / t;
            assert!(rel < 0.05, "leakage fit off by {rel:.3} at ({v},{c})");
        }
    }

    #[test]
    fn idle_soak_reaches_near_ambient_steady_state() {
        let obs = CampaignDriver::new().leakage_calibration(
            &dora_soc::SocProfile::msm8974().board_config(),
            &[Celsius::new(25.0)],
        );
        // At the lowest OPP the leakage is tiny, so die ~ ambient.
        let coolest = obs
            .iter()
            .map(|o| o.temp.value())
            .fold(f64::INFINITY, f64::min);
        assert!((25.0..28.0).contains(&coolest), "coolest {coolest}");
    }
}
