//! Browsing sessions: many page loads back to back.
//!
//! The paper evaluates single page loads; real browsing is a *session* —
//! load, read, load the next page — and battery life is the session-level
//! integral the paper's PPW metric stands in for. This module runs a page
//! sequence with think time between loads (browser cores idle while the
//! user reads, the co-runner keeps going), under any governor, and reports
//! session energy, per-load QoS, and a battery-life estimate.
//!
//! Governors are notified of each page change through
//! [`Governor::page_changed`], which lets DORA retarget its complexity
//! inputs exactly as the paper's implementation reads the page features
//! "before a page is rendered".

use crate::runner::{BROWSER_AUX_CORE, BROWSER_MAIN_CORE, CORUN_CORE};
use dora_browser::catalog::CatalogPage;
use dora_browser::engine::RenderEngine;
use dora_coworkloads::Kernel;
use dora_governors::{Governor, GovernorObservation};
use dora_sim_core::units::{Celsius, Joules, Seconds, Utilization, WattHours, Watts};
use dora_sim_core::SimDuration;
use dora_soc::board::{Board, BoardConfig};

/// Configuration of one browsing session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Seed for workload jitter.
    pub seed: u64,
    /// Platform configuration.
    pub board: BoardConfig,
    /// Per-load QoS deadline.
    pub deadline: Seconds,
    /// Idle "reading" time between loads.
    pub think_time: SimDuration,
    /// Abort a single load after this long.
    pub per_load_timeout: SimDuration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            seed: 42,
            board: dora_soc::SocProfile::msm8974().board_config(),
            deadline: Seconds::new(3.0),
            think_time: SimDuration::from_secs(8),
            per_load_timeout: SimDuration::from_secs(60),
        }
    }
}

/// One page load's outcome within a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionLoad {
    /// Page name.
    pub page: String,
    /// Load time.
    pub load_time: Seconds,
    /// Whether the per-load deadline was met.
    pub met_deadline: bool,
}

/// The whole session's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Governor name.
    pub governor: String,
    /// Total session wall time (loads + think time).
    pub duration: Seconds,
    /// Total device energy.
    pub energy: Joules,
    /// Per-load outcomes in sequence order.
    pub loads: Vec<SessionLoad>,
    /// DVFS switches across the session.
    pub switches: u64,
    /// Peak die temperature.
    pub peak_temp: Celsius,
}

impl SessionResult {
    /// Mean device power over the session.
    pub fn mean_power(&self) -> Watts {
        if self.duration > Seconds::ZERO {
            self.energy / self.duration
        } else {
            Watts::ZERO
        }
    }

    /// Fraction of loads that met the deadline.
    pub fn met_fraction(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loads.iter().filter(|l| l.met_deadline).count() as f64 / self.loads.len() as f64
    }

    /// Hours of this usage pattern a `battery` pack sustains; zero for a
    /// degenerate (zero-power, zero-duration) session.
    pub fn battery_hours(&self, battery: WattHours) -> f64 {
        battery.hours_at(self.mean_power())
    }
}

/// Runs a browsing session: `pages` in order, with think time between.
///
/// # Panics
///
/// Panics if `pages` is empty or the governor returns a frequency outside
/// the board's DVFS table.
#[allow(clippy::expect_used)] // fresh-board invariants: documented panic
pub fn run_session(
    pages: &[&CatalogPage],
    kernel: Option<&Kernel>,
    governor: &mut dyn Governor,
    config: &SessionConfig,
) -> SessionResult {
    assert!(!pages.is_empty(), "a session needs at least one page");
    let mut board = Board::new(config.board.clone(), config.seed);
    if let Some(kernel) = kernel {
        board
            .assign(CORUN_CORE, Box::new(kernel.spawn(config.seed)))
            .expect("fresh board");
    }
    let engine = RenderEngine::default();
    let session_start = board.time();
    let quantum = board.config().quantum;
    let interval = governor.decision_interval();
    let mut next_decision = board.time() + interval;
    let mut snapshot = board.counter_set().snapshot();
    let mut loads = Vec::with_capacity(pages.len());

    // One closure-free governor tick, shared by load and think phases.
    macro_rules! tick {
        () => {
            if board.time() >= next_decision {
                let now = board.counter_set().snapshot();
                let delta = now.delta(&snapshot);
                snapshot = now;
                let per_core_utilization: Vec<Utilization> = delta
                    .cores()
                    .iter()
                    .map(dora_soc::counters::CoreCounters::utilization)
                    .collect();
                let cluster = board.cluster_of(BROWSER_MAIN_CORE);
                let obs = GovernorObservation {
                    now: board.time(),
                    interval,
                    frequency: board.cluster_frequency(cluster),
                    cluster: cluster.index(),
                    per_core_utilization,
                    shared_l2_mpki: delta.shared_l2_mpki(),
                    corun_utilization: delta.core(CORUN_CORE).utilization(),
                    temperature: board.temperature(),
                };
                let point = governor.decide_point(&obs);
                if point.cluster.index() != obs.cluster {
                    board
                        .migrate(BROWSER_MAIN_CORE, point.cluster)
                        .expect("governors must return board clusters");
                    board
                        .migrate(BROWSER_AUX_CORE, point.cluster)
                        .expect("governors must return board clusters");
                }
                board
                    .set_cluster_frequency(point.cluster, point.frequency)
                    .expect("governors must return table frequencies");
                next_decision = board.time() + interval;
            }
        };
    }

    for (index, page) in pages.iter().enumerate() {
        governor.page_changed(&page.features);
        let job = engine.spawn(page, config.seed ^ (index as u64).wrapping_mul(0x9E37));
        board
            .assign(BROWSER_MAIN_CORE, Box::new(job.main))
            .expect("main core idle between loads");
        board
            .assign(BROWSER_AUX_CORE, Box::new(job.aux))
            .expect("aux core idle between loads");
        let t0 = board.time();
        let deadline_wall = t0 + config.per_load_timeout;
        while !board.task_finished(BROWSER_MAIN_CORE) && board.time() < deadline_wall {
            board.step(quantum);
            tick!();
        }
        let load_time = Seconds::new(
            board
                .finish_time(BROWSER_MAIN_CORE)
                .map_or(config.per_load_timeout.as_secs_f64(), |t| {
                    t.duration_since(t0).as_secs_f64()
                }),
        );
        loads.push(SessionLoad {
            page: page.name.to_string(),
            load_time,
            met_deadline: load_time <= config.deadline,
        });
        board.clear_core(BROWSER_MAIN_CORE).expect("core id valid");
        board.clear_core(BROWSER_AUX_CORE).expect("core id valid");

        // Think time: the user reads; browser cores idle.
        let think_until = board.time() + config.think_time;
        while board.time() < think_until {
            board.step(quantum);
            tick!();
        }
    }

    SessionResult {
        governor: governor.name().to_string(),
        duration: Seconds::new(board.time().duration_since(session_start).as_secs_f64()),
        energy: board.energy(),
        loads,
        switches: board.switch_count(),
        peak_temp: board.peak_temperature(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_browser::Catalog;
    use dora_governors::{InteractiveGovernor, PerformanceGovernor};
    use dora_soc::DvfsTable;

    fn pages<'a>(catalog: &'a Catalog, names: &[&str]) -> Vec<&'a CatalogPage> {
        names
            .iter()
            .map(|n| catalog.page(n).expect("page in catalog"))
            .collect()
    }

    fn quick() -> SessionConfig {
        SessionConfig {
            think_time: SimDuration::from_secs(3),
            ..SessionConfig::default()
        }
    }

    #[test]
    fn session_loads_every_page_in_order() {
        let catalog = Catalog::alexa18();
        let ps = pages(&catalog, &["Amazon", "Reddit", "MSN"]);
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let r = run_session(&ps, None, &mut g, &quick());
        assert_eq!(r.loads.len(), 3);
        assert_eq!(r.loads[0].page, "Amazon");
        assert_eq!(r.loads[2].page, "MSN");
        assert!(r.loads.iter().all(|l| l.met_deadline), "{:#?}", r.loads);
        // Session time = loads + think periods.
        let load_total: Seconds = r.loads.iter().map(|l| l.load_time).sum();
        assert!(r.duration > load_total + Seconds::new(8.9), "{r:?}");
        assert!((r.met_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn think_time_saves_energy_under_utilization_governors() {
        // interactive idles down between loads; performance never does.
        let catalog = Catalog::alexa18();
        let ps = pages(&catalog, &["Amazon", "Reddit"]);
        let mut perf = PerformanceGovernor::new(DvfsTable::default());
        let high = run_session(&ps, None, &mut perf, &quick());
        let mut inter = InteractiveGovernor::new(DvfsTable::default());
        let low = run_session(&ps, None, &mut inter, &quick());
        assert!(
            low.energy < high.energy * 0.95,
            "interactive {} vs performance {}",
            low.energy,
            high.energy
        );
    }

    #[test]
    fn battery_estimate_is_sane() {
        let catalog = Catalog::alexa18();
        let ps = pages(&catalog, &["Amazon"]);
        let mut g = InteractiveGovernor::new(DvfsTable::default());
        let r = run_session(&ps, None, &mut g, &quick());
        // Nexus 5 battery ~8.8 Wh; browsing should sustain 2-6 hours.
        let hours = r.battery_hours(WattHours::new(8.8));
        assert!((1.0..8.0).contains(&hours), "battery estimate {hours}h");
    }

    #[test]
    fn corunner_runs_through_the_whole_session() {
        let catalog = Catalog::alexa18();
        let ps = pages(&catalog, &["Amazon", "Reddit"]);
        let kernel = Kernel::by_name("backprop").expect("in suite");
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let with = run_session(&ps, Some(&kernel), &mut g, &quick());
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let without = run_session(&ps, None, &mut g, &quick());
        assert!(with.energy > without.energy);
        assert!(with.loads[0].load_time > without.loads[0].load_time);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_session_rejected() {
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let _ = run_session(&[], None, &mut g, &quick());
    }
}
