//! Policy identities: the closed set of paper policies and the open set
//! of governor names results can carry.
//!
//! [`Policy`] enumerates the governors the paper's figures compare.
//! [`PolicyName`] is the typed replacement for the old stringly
//! `RunResult::governor` field: it is a [`Policy`] whenever the governor
//! is one of the paper's, and carries the raw name otherwise (pinned
//! sweep governors, training pins, custom governors). String comparisons
//! keep working — `result.governor == "DORA"` compares against the
//! canonical name.

use std::fmt;

/// The policies the paper's figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Android default (the baseline everything is normalized to).
    Interactive,
    /// Always `fmax`.
    Performance,
    /// Always `fmin` (dismissed by the paper; kept for completeness).
    Powersave,
    /// Step-wise utilization governor (extra baseline).
    Conservative,
    /// Statically pinned at the *measured* `fD` (Fig. 8's `fD` series);
    /// `fmax` when no frequency meets the deadline.
    OracleFd,
    /// Statically pinned at the *measured* `fE` (Fig. 8's `fE` series).
    OracleFe,
    /// Statically pinned at the measured `fopt` — the paper's
    /// `Offline_opt` reference.
    OfflineOpt,
    /// The full DORA governor.
    Dora,
    /// DORA without the leakage term (Fig. 10a ablation).
    DoraNoLkg,
    /// The model-driven deadline-only hypothetical governor (`DL`).
    DeadlineOnly,
    /// The model-driven energy-only hypothetical governor (`EE`).
    EnergyOnly,
}

impl Policy {
    /// Every paper policy, in figure order.
    pub const ALL: [Policy; 11] = [
        Policy::Interactive,
        Policy::Performance,
        Policy::Powersave,
        Policy::Conservative,
        Policy::OracleFd,
        Policy::OracleFe,
        Policy::OfflineOpt,
        Policy::Dora,
        Policy::DoraNoLkg,
        Policy::DeadlineOnly,
        Policy::EnergyOnly,
    ];

    /// The name the policy's results carry in
    /// [`RunResult::governor`](crate::runner::RunResult::governor).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Interactive => "interactive",
            Policy::Performance => "performance",
            Policy::Powersave => "powersave",
            Policy::Conservative => "conservative",
            Policy::OracleFd => "fD",
            Policy::OracleFe => "fE",
            Policy::OfflineOpt => "offline_opt",
            Policy::Dora => "DORA",
            Policy::DoraNoLkg => "DORA_no_lkg",
            Policy::DeadlineOnly => "DL",
            Policy::EnergyOnly => "EE",
        }
    }

    /// The inverse of [`Policy::name`]; `None` for names that are not a
    /// paper policy.
    pub fn from_name(name: &str) -> Option<Policy> {
        Policy::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether this policy needs the per-workload oracle sweep.
    pub fn needs_oracle(self) -> bool {
        matches!(
            self,
            Policy::OracleFd | Policy::OracleFe | Policy::OfflineOpt
        )
    }

    /// Whether this policy needs trained DORA models.
    pub fn needs_models(self) -> bool {
        matches!(
            self,
            Policy::Dora | Policy::DoraNoLkg | Policy::DeadlineOnly | Policy::EnergyOnly
        )
    }

    /// The governor set of Fig. 7 (plus the baseline).
    pub const FIG7: [Policy; 5] = [
        Policy::Interactive,
        Policy::Performance,
        Policy::DeadlineOnly,
        Policy::EnergyOnly,
        Policy::Dora,
    ];

    /// The governor set of Fig. 8 (plus the baseline).
    pub const FIG8: [Policy; 7] = [
        Policy::Interactive,
        Policy::Performance,
        Policy::OracleFd,
        Policy::OracleFe,
        Policy::Dora,
        Policy::DeadlineOnly,
        Policy::EnergyOnly,
    ];
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The identity a result row's governor: a paper [`Policy`] when the
/// name matches one, the raw governor name otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PolicyName {
    /// One of the paper's policies.
    Known(Policy),
    /// Any other governor name (pinned sweeps, training pins, custom
    /// governors).
    Custom(String),
}

impl PolicyName {
    /// The canonical string form (what the old `String` field held).
    pub fn as_str(&self) -> &str {
        match self {
            PolicyName::Known(p) => p.name(),
            PolicyName::Custom(s) => s,
        }
    }

    /// The paper policy behind this name, when there is one.
    pub fn policy(&self) -> Option<Policy> {
        match self {
            PolicyName::Known(p) => Some(*p),
            PolicyName::Custom(_) => None,
        }
    }
}

impl fmt::Display for PolicyName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<Policy> for PolicyName {
    fn from(policy: Policy) -> Self {
        PolicyName::Known(policy)
    }
}

impl From<&str> for PolicyName {
    fn from(name: &str) -> Self {
        match Policy::from_name(name) {
            Some(p) => PolicyName::Known(p),
            None => PolicyName::Custom(name.to_string()),
        }
    }
}

impl From<String> for PolicyName {
    fn from(name: String) -> Self {
        PolicyName::from(name.as_str())
    }
}

impl std::str::FromStr for PolicyName {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(PolicyName::from(s))
    }
}

impl PartialEq<str> for PolicyName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for PolicyName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<PolicyName> for str {
    fn eq(&self, other: &PolicyName) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<PolicyName> for &str {
    fn eq(&self, other: &PolicyName) -> bool {
        *self == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_from_name() {
        for p in Policy::ALL {
            assert_eq!(Policy::from_name(p.name()), Some(p));
        }
        assert_eq!(Policy::from_name("pinned"), None);
    }

    #[test]
    fn policy_names_classify_known_and_custom() {
        assert_eq!(PolicyName::from("DORA"), PolicyName::Known(Policy::Dora));
        assert_eq!(PolicyName::from("DORA").policy(), Some(Policy::Dora));
        let custom = PolicyName::from("pinned");
        assert_eq!(custom, PolicyName::Custom("pinned".to_string()));
        assert_eq!(custom.policy(), None);
    }

    #[test]
    fn string_comparisons_keep_working() {
        let name = PolicyName::from("offline_opt");
        assert!(name == "offline_opt");
        assert!("offline_opt" == name);
        assert!(name != "DORA");
        assert_eq!(name.to_string(), "offline_opt");
    }
}
