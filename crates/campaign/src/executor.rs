//! Deterministic fan-out of independent scenario runs.
//!
//! Campaign work — the 54×|policies| evaluation grid, the per-workload
//! oracle sweeps, the 588-run training campaign — is embarrassingly
//! parallel: every scenario builds its own [`Board`](dora_soc::board::Board)
//! from `(config, seed)` and shares no mutable state with any other run.
//! [`Executor::map`] exploits that with a scoped thread pool while
//! keeping the output *bit-identical* to the sequential loop:
//!
//! * each input item is tagged with its index before being handed to a
//!   worker, and outputs are reassembled in index order, so callers see
//!   exactly the `Vec` a `for` loop would have produced;
//! * the closure runs once per item no matter how work is interleaved,
//!   and the simulation itself is seeded, so thread scheduling cannot
//!   leak into results.
//!
//! With `jobs == 1` the executor does not spawn at all — it *is* the
//! sequential loop, byte for byte and allocation for allocation.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a campaign may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker: the classic in-order loop (what `--jobs 1` selects).
    Sequential,
    /// One worker per available core (what `--jobs` defaults to).
    #[default]
    Auto,
    /// Exactly this many workers (`--jobs N`); 0 is treated as 1.
    Fixed(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count on this machine.
    pub fn jobs(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// A fixed-width scenario fan-out engine.
///
/// Cheap to copy and pass by reference through campaign entry points;
/// construct once (typically from a `--jobs` flag) and reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::auto()
    }
}

impl Executor {
    /// An executor with the given parallelism.
    pub fn new(parallelism: Parallelism) -> Self {
        Executor {
            jobs: parallelism.jobs(),
        }
    }

    /// The single-threaded executor: reproduces the sequential loop
    /// exactly.
    pub fn sequential() -> Self {
        Executor::new(Parallelism::Sequential)
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        Executor::new(Parallelism::Auto)
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, regardless of which worker ran which item.
    ///
    /// Work is distributed through a shared atomic cursor, so uneven item
    /// costs (a 60 s timeout next to a 1 s load) still balance. A panic
    /// in `f` propagates to the caller once all workers have stopped.
    #[allow(clippy::expect_used)] // worker panics resume_unwind before the lock is read
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        // Slots are pre-sized so each finished item lands at its own
        // index; the mutex only guards the Vec, never the work.
        let slots: Mutex<Vec<Option<R>>> = {
            let mut v = Vec::with_capacity(items.len());
            v.resize_with(items.len(), || None);
            Mutex::new(v)
        };

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        let result = f(&items[idx]);
                        slots.lock().expect("no poisoned result slots")[idx] = Some(result);
                    })
                })
                .collect();
            for handle in handles {
                if let Err(panic) = handle.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });

        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|slot| slot.expect("every index was visited"))
            .collect()
    }

    /// [`Executor::map`] for fallible work: the first error (in **input
    /// order**, not completion order) wins, so error reporting is as
    /// deterministic as the results.
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.map(items, f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolves_to_positive_jobs() {
        assert_eq!(Parallelism::Sequential.jobs(), 1);
        assert_eq!(Parallelism::Fixed(3).jobs(), 3);
        assert_eq!(Parallelism::Fixed(0).jobs(), 1);
        assert!(Parallelism::Auto.jobs() >= 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let parallel = Executor::new(Parallelism::Fixed(8)).map(&items, |&x| x * x);
        let sequential: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_matches_sequential_under_uneven_costs() {
        let items: Vec<u64> = (0..64).collect();
        let work = |&x: &u64| {
            // Uneven busywork so completion order scrambles.
            let spins = (x % 7) * 1000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        let parallel = Executor::new(Parallelism::Fixed(6)).map(&items, work);
        let sequential = Executor::sequential().map(&items, work);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_and_single_inputs_short_circuit() {
        let exec = Executor::new(Parallelism::Fixed(4));
        assert_eq!(exec.map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(exec.map(&[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn try_map_reports_first_error_in_input_order() {
        let items: Vec<u64> = (0..32).collect();
        let result = Executor::new(Parallelism::Fixed(4)).try_map(&items, |&x| {
            if x % 10 == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(result, Err(3));
        let ok = Executor::new(Parallelism::Fixed(4)).try_map(&items, |&x| Ok::<u64, ()>(x * 2));
        assert_eq!(ok, Ok(items.iter().map(|&x| x * 2).collect::<Vec<_>>()));
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            Executor::new(Parallelism::Fixed(4)).map(&items, |&x| {
                assert!(x != 11, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
