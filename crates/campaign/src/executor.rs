//! Deterministic fan-out of independent scenario runs.
//!
//! Campaign work — the 54×|policies| evaluation grid, the per-workload
//! oracle sweeps, the 588-run training campaign — is embarrassingly
//! parallel: every scenario builds its own [`Board`](dora_soc::board::Board)
//! from `(config, seed)` and shares no mutable state with any other run.
//! [`Executor::map`] exploits that with a scoped thread pool while
//! keeping the output *bit-identical* to the sequential loop:
//!
//! * each input item is tagged with its index before being handed to a
//!   worker, and outputs are reassembled in index order, so callers see
//!   exactly the `Vec` a `for` loop would have produced;
//! * the closure runs once per item no matter how work is interleaved,
//!   and the simulation itself is seeded, so thread scheduling cannot
//!   leak into results.
//!
//! With `jobs == 1` the executor does not spawn at all — it *is* the
//! sequential loop, byte for byte and allocation for allocation.
//!
//! All synchronization goes through [`crate::sync`], so building with
//! `--cfg interleave` swaps in the model checker and
//! `tests/interleave.rs` proves these guarantees hold under every
//! bounded interleaving, not just the schedules the OS happens to pick.
//! DESIGN.md §9 walks through the cursor protocol and the argument for
//! why the first reported `try_map` error is schedule-independent.

use crate::sync::{thread, AtomicBool, AtomicUsize, Mutex, Ordering, PoisonError};
use std::num::NonZeroUsize;

/// How many worker threads a campaign may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker: the classic in-order loop (what `--jobs 1` selects).
    Sequential,
    /// One worker per available core (what `--jobs` defaults to; also
    /// what `--jobs 0` requests).
    #[default]
    Auto,
    /// Exactly this many workers (`--jobs N`).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count on this machine.
    pub fn jobs(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// A fixed-width scenario fan-out engine.
///
/// Cheap to copy and pass by reference through campaign entry points;
/// construct once (typically from a `--jobs` flag) and reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::auto()
    }
}

impl Executor {
    /// An executor with the given parallelism.
    pub fn new(parallelism: Parallelism) -> Self {
        Executor {
            jobs: parallelism.jobs(),
        }
    }

    /// The single-threaded executor: reproduces the sequential loop
    /// exactly.
    pub fn sequential() -> Self {
        Executor::new(Parallelism::Sequential)
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        Executor::new(Parallelism::Auto)
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, regardless of which worker ran which item.
    ///
    /// Work is distributed through a shared atomic cursor, so uneven item
    /// costs (a 60 s timeout next to a 1 s load) still balance. Workers
    /// accumulate `(index, result)` pairs locally and the pairs are
    /// merged after the join, so the steady state takes no lock at all.
    /// A panic in `f` propagates to the caller once all workers have
    /// stopped.
    #[allow(clippy::expect_used)] // the cursor hands out each index exactly once
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let batches: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            // ordering: the cursor is a pure claim ticket —
                            // the fetch_add's atomicity alone guarantees each
                            // index is handed out once; no other memory is
                            // published through it.
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= items.len() {
                                break;
                            }
                            local.push((idx, f(&items[idx])));
                        }
                        local
                    })
                })
                .collect();
            let mut batches = Vec::with_capacity(workers);
            for handle in handles {
                match handle.join() {
                    Ok(local) => batches.push(local),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            batches
        });

        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (idx, result) in batches.into_iter().flatten() {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was claimed exactly once"))
            .collect()
    }

    /// [`Executor::map`] for fallible work: the first error (in **input
    /// order**, not completion order) wins, so error reporting is as
    /// deterministic as the results.
    ///
    /// An error also cancels the remaining work: once any item fails, a
    /// shared stop flag keeps workers from claiming further items (items
    /// already claimed still run to completion). Cancellation cannot
    /// change which error is reported — the cursor hands out indices in
    /// order, so the smallest erroring index is always claimed, and
    /// therefore always recorded, before any later error can stop the
    /// fan-out.
    #[allow(clippy::expect_used)] // in the Ok case every index was claimed
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
        let batches: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            // ordering: a best-effort shutdown hint; the lock
                            // around `first_err` already orders the error
                            // itself, and a stale read here only costs one
                            // extra item of work.
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // ordering: claim ticket, as in `map`.
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= items.len() {
                                break;
                            }
                            match f(&items[idx]) {
                                Ok(result) => local.push((idx, result)),
                                Err(err) => {
                                    let mut slot =
                                        first_err.lock().unwrap_or_else(PoisonError::into_inner);
                                    if slot.as_ref().is_none_or(|(seen, _)| idx < *seen) {
                                        *slot = Some((idx, err));
                                    }
                                    drop(slot);
                                    // ordering: pure flag; see the load above.
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            let mut batches = Vec::with_capacity(workers);
            for handle in handles {
                match handle.join() {
                    Ok(local) => batches.push(local),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            batches
        });

        if let Some((_, err)) = first_err
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            return Err(err);
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (idx, result) in batches.into_iter().flatten() {
            slots[idx] = Some(result);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("no error recorded, so every index was claimed"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parallelism_resolves_to_positive_jobs() {
        assert_eq!(Parallelism::Sequential.jobs(), 1);
        assert_eq!(Parallelism::Fixed(3).jobs(), 3);
        assert_eq!(Parallelism::Fixed(0).jobs(), 1);
        assert!(Parallelism::Auto.jobs() >= 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let parallel = Executor::new(Parallelism::Fixed(8)).map(&items, |&x| x * x);
        let sequential: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_matches_sequential_under_uneven_costs() {
        let items: Vec<u64> = (0..64).collect();
        let work = |&x: &u64| {
            // Uneven busywork so completion order scrambles.
            let spins = (x % 7) * 1000;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        let parallel = Executor::new(Parallelism::Fixed(6)).map(&items, work);
        let sequential = Executor::sequential().map(&items, work);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_and_single_inputs_short_circuit() {
        let exec = Executor::new(Parallelism::Fixed(4));
        assert_eq!(exec.map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(exec.map(&[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn try_map_reports_first_error_in_input_order() {
        let items: Vec<u64> = (0..32).collect();
        let result = Executor::new(Parallelism::Fixed(4)).try_map(&items, |&x| {
            if x % 10 == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(result, Err(3));
        let ok = Executor::new(Parallelism::Fixed(4)).try_map(&items, |&x| Ok::<u64, ()>(x * 2));
        assert_eq!(ok, Ok(items.iter().map(|&x| x * 2).collect::<Vec<_>>()));
    }

    #[test]
    fn try_map_cancels_remaining_work_after_an_error() {
        use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

        let items: Vec<u64> = (0..4096).collect();
        let processed = StdAtomicUsize::new(0);
        let result = Executor::new(Parallelism::Fixed(4)).try_map(&items, |&x| {
            processed.fetch_add(1, StdOrdering::SeqCst);
            if x == 0 {
                Err("item 0 failed")
            } else {
                // Enough busywork that cancellation can outrun the sweep.
                let mut acc = x;
                for i in 0..5_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                Ok(acc)
            }
        });
        // The error is deterministic even though cancellation raced the
        // other workers; far fewer than all items should have run.
        assert_eq!(result, Err("item 0 failed"));
        let ran = processed.load(StdOrdering::SeqCst);
        assert!(
            ran < items.len(),
            "cancellation should skip most of the {} items, but {ran} ran",
            items.len()
        );
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            Executor::new(Parallelism::Fixed(4)).map(&items, |&x| {
                assert!(x != 11, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `map` is bit-identical to the sequential loop for arbitrary
        /// item and worker counts, including the degenerate ones.
        #[test]
        fn map_matches_sequential_for_arbitrary_shapes(
            items in prop::collection::vec(0u64..1_000_000, 0..40),
            workers in 1usize..9,
        ) {
            let parallel = Executor::new(Parallelism::Fixed(workers)).map(&items, |&x| x * 3 + 1);
            let sequential: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            prop_assert_eq!(parallel, sequential);
        }

        /// `try_map` reports the smallest erroring index for arbitrary
        /// error sets, or the full sequential result when none errors.
        #[test]
        fn try_map_error_choice_is_schedule_independent(
            items in prop::collection::vec(0u64..50, 0..40),
            workers in 1usize..9,
        ) {
            let verdict = |&x: &u64| if x % 5 == 0 { Err(x) } else { Ok(x * 2) };
            let got = Executor::new(Parallelism::Fixed(workers)).try_map(&items, verdict);
            let expected: Result<Vec<u64>, u64> = items.iter().map(verdict).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
