//! The paper's 54 multiprogrammed workloads.
//!
//! "We create workloads by combining a web page with an application from
//! each memory intensity category shown in Table III. This results in a
//! total of 54 workload combinations, i.e., 18 web pages, each
//! co-scheduled with an application from the low, medium, and high
//! intensity categories." (Section IV-B)
//!
//! The 42 combinations built from the 14 training pages are the
//! *Webpage-Inclusive* set; the 12 built from held-out pages are
//! *Webpage-Neutral*.

use dora_browser::catalog::{Catalog, CatalogPage};
use dora_coworkloads::{Intensity, Kernel};

/// One multiprogrammed workload: a page plus a co-run kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The web page loaded in the foreground.
    pub page: CatalogPage,
    /// The interfering kernel pinned to core 2.
    pub kernel: Kernel,
}

impl Workload {
    /// A stable identifier like `Reddit+bfs`.
    pub fn id(&self) -> String {
        format!("{}+{}", self.page.name, self.kernel.name())
    }

    /// Whether the workload belongs to the Webpage-Inclusive training set.
    pub fn is_training(&self) -> bool {
        self.page.training
    }

    /// The co-runner's Table III intensity class.
    pub fn intensity(&self) -> Intensity {
        self.kernel.intensity()
    }
}

/// An ordered collection of workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSet {
    workloads: Vec<Workload>,
}

impl WorkloadSet {
    /// The paper's 54 combinations: every catalog page × one kernel from
    /// each intensity class. Within a class, kernels rotate across pages
    /// (deterministically, by page index) so all nine kernels participate.
    pub fn paper54() -> Self {
        let catalog = Catalog::alexa18();
        let mut workloads = Vec::with_capacity(54);
        for (page_index, page) in catalog.pages().iter().enumerate() {
            for intensity in Intensity::ALL {
                let pool = Kernel::in_class(intensity);
                let kernel = pool[page_index % pool.len()].clone();
                workloads.push(Workload {
                    page: page.clone(),
                    kernel,
                });
            }
        }
        WorkloadSet { workloads }
    }

    /// Builds a set from explicit workloads.
    pub fn from_workloads(workloads: Vec<Workload>) -> Self {
        WorkloadSet { workloads }
    }

    /// All workloads.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// The Webpage-Inclusive (training-page) subset.
    pub fn inclusive(&self) -> impl Iterator<Item = &Workload> {
        self.workloads.iter().filter(|w| w.is_training())
    }

    /// The Webpage-Neutral (held-out-page) subset.
    pub fn neutral(&self) -> impl Iterator<Item = &Workload> {
        self.workloads.iter().filter(|w| !w.is_training())
    }

    /// Finds a workload by page and kernel name.
    pub fn find(&self, page: &str, kernel: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| {
            w.page.name.eq_ignore_ascii_case(page) && w.kernel.name().eq_ignore_ascii_case(kernel)
        })
    }

    /// The workload for `page` with the class-representative kernel of
    /// `intensity` that `paper54` assigned to that page.
    pub fn find_by_class(&self, page: &str, intensity: Intensity) -> Option<&Workload> {
        self.workloads
            .iter()
            .find(|w| w.page.name.eq_ignore_ascii_case(page) && w.intensity() == intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_54_workloads_in_paper_split() {
        let set = WorkloadSet::paper54();
        assert_eq!(set.len(), 54);
        assert_eq!(set.inclusive().count(), 42);
        assert_eq!(set.neutral().count(), 12);
    }

    #[test]
    fn every_page_gets_all_three_classes() {
        let set = WorkloadSet::paper54();
        let catalog = Catalog::alexa18();
        for page in catalog.pages() {
            for intensity in Intensity::ALL {
                assert!(
                    set.find_by_class(page.name, intensity).is_some(),
                    "{} missing {intensity}",
                    page.name
                );
            }
        }
    }

    #[test]
    fn all_nine_kernels_participate() {
        let set = WorkloadSet::paper54();
        let used: std::collections::HashSet<&str> =
            set.workloads().iter().map(|w| w.kernel.name()).collect();
        assert_eq!(used.len(), 9, "kernels used: {used:?}");
    }

    #[test]
    fn ids_are_unique() {
        let set = WorkloadSet::paper54();
        let ids: std::collections::HashSet<String> =
            set.workloads().iter().map(Workload::id).collect();
        assert_eq!(ids.len(), 54);
    }

    #[test]
    fn find_is_case_insensitive() {
        let set = WorkloadSet::paper54();
        let w = set.find_by_class("reddit", Intensity::High).expect("found");
        assert_eq!(w.page.name, "Reddit");
        assert_eq!(w.intensity(), Intensity::High);
    }

    #[test]
    fn construction_is_deterministic() {
        assert_eq!(WorkloadSet::paper54(), WorkloadSet::paper54());
    }
}
