//! Governor evaluation across the 54 workloads.
//!
//! Reproduces the comparison methodology of Section V: every workload is
//! loaded under every policy, PPW is normalized to the `interactive`
//! baseline per workload, and results are summarized over the
//! Webpage-Inclusive, Webpage-Neutral and combined sets (Fig. 7), per
//! workload (Fig. 8), and per page × intensity (Fig. 9).

use crate::executor::Executor;
use crate::runner::{
    oracle_from_sweep, run_scenario, sweep_frequencies_with, OracleFrequencies, RunResult,
    ScenarioConfig, SweepPoint,
};
use crate::workload::{Workload, WorkloadSet};
use dora::{DoraConfig, DoraGovernor, DoraModels, DoraPolicy, HeterogeneousDoraGovernor};
use dora_governors::{
    ConservativeGovernor, Governor, InteractiveGovernor, PerformanceGovernor, PinnedGovernor,
    PowersaveGovernor,
};
use dora_sim_core::stats::Samples;
use dora_soc::Frequency;
use std::collections::BTreeMap;
use std::fmt;

pub use crate::policy::{Policy, PolicyName};

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluateError {
    /// A requested policy needs trained models but none were provided.
    ModelsRequired(&'static str),
    /// A policy pinned to oracle frequencies was instantiated without the
    /// workload's oracle sweep.
    MissingOracle(&'static str),
}

impl fmt::Display for EvaluateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluateError::ModelsRequired(name) => {
                write!(f, "policy {name} requires trained DORA models")
            }
            EvaluateError::MissingOracle(name) => {
                write!(
                    f,
                    "policy {name} requires the workload's oracle frequency sweep"
                )
            }
        }
    }
}

impl std::error::Error for EvaluateError {}

/// Which workload subset a summary covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subset {
    /// All 54 workloads.
    All,
    /// The 42 Webpage-Inclusive (training-page) workloads.
    Inclusive,
    /// The 12 Webpage-Neutral (held-out) workloads.
    Neutral,
}

impl Subset {
    fn admits(self, r: &RunResult) -> bool {
        match self {
            Subset::All => true,
            Subset::Inclusive => r.training,
            Subset::Neutral => !r.training,
        }
    }
}

/// The complete evaluation output: every run result plus the oracle
/// frequencies that backed the pinned policies.
#[derive(Debug, Clone)]
pub struct Evaluation {
    results: Vec<RunResult>,
    oracles: BTreeMap<String, OracleFrequencies>,
}

/// Builds the governor instance for a policy over one workload.
pub(crate) fn make_governor(
    policy: Policy,
    workload: &Workload,
    models: Option<&DoraModels>,
    oracle_freqs: Option<&OracleFrequencies>,
    config: &ScenarioConfig,
) -> Result<Box<dyn Governor>, EvaluateError> {
    let table = config.board.dvfs.clone();
    let dora_config = |policy: DoraPolicy, leakage: bool| DoraConfig {
        qos_target: config.deadline,
        include_leakage: leakage,
        policy,
        ..DoraConfig::default()
    };
    let need_models = || {
        models
            .cloned()
            .ok_or(EvaluateError::ModelsRequired(policy.name()))
    };
    let need_oracle = || oracle_freqs.ok_or(EvaluateError::MissingOracle(policy.name()));
    // On multi-cluster boards the DORA family searches the full
    // (cluster, F) product space; single-cluster boards keep the exact
    // 1-D governor so its decisions stay byte-identical to history.
    let dora = |models: DoraModels, cfg: DoraConfig| -> Box<dyn Governor> {
        if config.board.clusters.len() > 1 {
            Box::new(HeterogeneousDoraGovernor::from_profile(
                &models,
                &config.board,
                workload.page.features,
                cfg,
            ))
        } else {
            Box::new(DoraGovernor::new(models, workload.page.features, cfg))
        }
    };
    Ok(match policy {
        Policy::Interactive => Box::new(InteractiveGovernor::new(table)),
        Policy::Performance => Box::new(PerformanceGovernor::new(table)),
        Policy::Powersave => Box::new(PowersaveGovernor::new(table)),
        Policy::Conservative => Box::new(ConservativeGovernor::new(table)),
        Policy::OracleFd => {
            let f = need_oracle()?.fd.unwrap_or_else(|| table.max_frequency());
            Box::new(PinnedGovernor::new("fD", f))
        }
        Policy::OracleFe => Box::new(PinnedGovernor::new("fE", need_oracle()?.fe)),
        Policy::OfflineOpt => Box::new(PinnedGovernor::new("offline_opt", need_oracle()?.fopt)),
        Policy::Dora => dora(need_models()?, dora_config(DoraPolicy::Dora, true)),
        Policy::DoraNoLkg => dora(need_models()?, dora_config(DoraPolicy::Dora, false)),
        Policy::DeadlineOnly => dora(need_models()?, dora_config(DoraPolicy::DeadlineOnly, true)),
        Policy::EnergyOnly => dora(need_models()?, dora_config(DoraPolicy::EnergyOnly, true)),
    })
}

/// Runs every workload under every policy, sequentially.
///
/// # Errors
///
/// [`EvaluateError::ModelsRequired`] when a DORA-family policy is
/// requested without trained models.
#[deprecated(note = "use CampaignDriver::evaluate")]
pub fn evaluate(
    set: &WorkloadSet,
    policies: &[Policy],
    models: Option<&DoraModels>,
    config: &ScenarioConfig,
) -> Result<Evaluation, EvaluateError> {
    evaluate_impl(set, policies, models, config, &Executor::sequential())
}

/// Runs every workload under every policy, fanning independent scenarios
/// out across `executor`.
///
/// # Errors
///
/// [`EvaluateError::ModelsRequired`] when a DORA-family policy is
/// requested without trained models.
#[deprecated(note = "use CampaignDriver::evaluate with an executor")]
pub fn evaluate_with(
    set: &WorkloadSet,
    policies: &[Policy],
    models: Option<&DoraModels>,
    config: &ScenarioConfig,
    executor: &Executor,
) -> Result<Evaluation, EvaluateError> {
    evaluate_impl(set, policies, models, config, executor)
}

/// The evaluation grid behind [`crate::driver::CampaignDriver::evaluate`].
///
/// Two flat fan-outs: first the oracle sweeps (one task per unique
/// workload × table frequency, computed only when an oracle policy is
/// requested), then the evaluation grid (one task per workload × policy).
/// Every task is an independent seeded simulation, so the returned
/// [`Evaluation`] is **bit-identical** to the sequential one — results in
/// workload-major, policy-minor order, exactly as the classic loop
/// produced them.
pub(crate) fn evaluate_impl(
    set: &WorkloadSet,
    policies: &[Policy],
    models: Option<&DoraModels>,
    config: &ScenarioConfig,
    executor: &Executor,
) -> Result<Evaluation, EvaluateError> {
    for p in policies {
        if p.needs_models() && models.is_none() {
            return Err(EvaluateError::ModelsRequired(p.name()));
        }
    }

    // Phase 1: oracle sweeps, one task per (unique workload, frequency).
    let need_oracle = policies.iter().any(|p| p.needs_oracle());
    let mut oracles: BTreeMap<String, OracleFrequencies> = BTreeMap::new();
    if need_oracle {
        // First occurrence wins, matching the sequential loop's
        // `entry(..).or_insert_with(..)` on duplicate workload ids.
        let mut unique: Vec<&Workload> = Vec::new();
        for workload in set.workloads() {
            if !unique.iter().any(|w| w.id() == workload.id()) {
                unique.push(workload);
            }
        }
        let freqs: Vec<Frequency> = config.board.dvfs.frequencies().collect();
        let tasks: Vec<(usize, Frequency)> = unique
            .iter()
            .enumerate()
            .flat_map(|(i, _)| freqs.iter().map(move |&f| (i, f)))
            .collect();
        let points: Vec<SweepPoint> = executor
            .map(&tasks, |&(i, f)| {
                sweep_frequencies_with(unique[i], config, &[f], &Executor::sequential())
            })
            .into_iter()
            .flatten()
            .collect();
        for (workload, sweep) in unique.iter().zip(points.chunks(freqs.len())) {
            oracles.insert(workload.id(), oracle_from_sweep(sweep.to_vec(), config));
        }
    }

    // Phase 2: the evaluation grid, one task per (workload, policy), in
    // the sequential loop's workload-major order.
    let grid: Vec<(&Workload, Policy)> = set
        .workloads()
        .iter()
        .flat_map(|w| policies.iter().map(move |&p| (w, p)))
        .collect();
    let results = executor.try_map(&grid, |&(workload, policy)| {
        let oracle_freqs = oracles.get(&workload.id());
        let mut governor = make_governor(policy, workload, models, oracle_freqs, config)?;
        Ok(run_scenario(workload, governor.as_mut(), config))
    })?;
    Ok(Evaluation { results, oracles })
}

impl Evaluation {
    /// All raw results.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The oracle frequencies per workload id (empty when no oracle
    /// policy was evaluated).
    pub fn oracles(&self) -> &BTreeMap<String, OracleFrequencies> {
        &self.oracles
    }

    /// Results of one governor, in workload order.
    pub fn results_for(&self, governor: &str) -> Vec<&RunResult> {
        self.results
            .iter()
            .filter(|r| r.governor == governor)
            .collect()
    }

    /// Per-workload PPW of `governor` normalized to `baseline`
    /// (workload id, ratio), in workload order. Workloads the baseline
    /// did not run are skipped.
    pub fn normalized_ppw(&self, governor: &str, baseline: &str) -> Vec<(String, f64)> {
        let base: BTreeMap<&str, f64> = self
            .results
            .iter()
            .filter(|r| r.governor == baseline)
            .map(|r| (r.workload_id.as_str(), r.ppw.value()))
            .collect();
        self.results
            .iter()
            .filter(|r| r.governor == governor)
            .filter_map(|r| {
                base.get(r.workload_id.as_str())
                    .map(|b| (r.workload_id.clone(), r.ppw.value() / b))
            })
            .collect()
    }

    /// Mean normalized PPW of a governor over a subset — the bars of
    /// Fig. 7(a).
    pub fn mean_normalized_ppw(&self, governor: &str, baseline: &str, subset: Subset) -> f64 {
        let base: BTreeMap<&str, f64> = self
            .results
            .iter()
            .filter(|r| r.governor == baseline)
            .map(|r| (r.workload_id.as_str(), r.ppw.value()))
            .collect();
        let ratios: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.governor == governor && subset.admits(r))
            .filter_map(|r| base.get(r.workload_id.as_str()).map(|b| r.ppw.value() / b))
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Fraction of a governor's workloads that met the deadline.
    pub fn deadline_met_fraction(&self, governor: &str) -> f64 {
        let rows = self.results_for(governor);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().filter(|r| r.met_deadline).count() as f64 / rows.len() as f64
    }

    /// The load-time sample set of a governor — the CDF of Fig. 7(b).
    pub fn load_time_samples(&self, governor: &str) -> Samples {
        self.results_for(governor)
            .iter()
            .map(|r| r.load_time.value())
            .collect()
    }

    /// Governors present in the results, in first-seen order.
    pub fn governors(&self) -> Vec<PolicyName> {
        let mut seen = Vec::new();
        for r in &self.results {
            if !seen.contains(&r.governor) {
                seen.push(r.governor.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CampaignDriver;
    use dora_coworkloads::Intensity;
    use dora_sim_core::SimDuration;

    fn evaluate(
        set: &WorkloadSet,
        policies: &[Policy],
        models: Option<&DoraModels>,
        config: &ScenarioConfig,
    ) -> Result<Evaluation, EvaluateError> {
        CampaignDriver::new().evaluate(set, policies, models, config)
    }

    fn small_set() -> WorkloadSet {
        let all = WorkloadSet::paper54();
        WorkloadSet::from_workloads(vec![
            all.find_by_class("Amazon", Intensity::Low)
                .expect("ok")
                .clone(),
            all.find_by_class("Alibaba", Intensity::High)
                .expect("ok")
                .clone(),
        ])
    }

    fn quick() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(3))
            .build()
    }

    #[test]
    fn baseline_only_evaluation() {
        let eval = evaluate(
            &small_set(),
            &[Policy::Interactive, Policy::Performance],
            None,
            &quick(),
        )
        .expect("no models needed");
        assert_eq!(eval.results().len(), 4);
        assert_eq!(eval.governors(), vec!["interactive", "performance"]);
        // Normalizing the baseline to itself is identically 1.
        for (_, ratio) in eval.normalized_ppw("interactive", "interactive") {
            assert!((ratio - 1.0).abs() < 1e-12);
        }
        assert!(eval.oracles().is_empty());
    }

    #[test]
    fn oracle_policies_compute_and_beat_performance() {
        let eval = evaluate(
            &small_set(),
            &[Policy::Interactive, Policy::Performance, Policy::OfflineOpt],
            None,
            &quick(),
        )
        .expect("no models needed");
        assert_eq!(eval.oracles().len(), 2);
        // Offline-opt is the feasible PPW maximizer: it must beat (or tie)
        // the performance governor on PPW for each workload.
        let perf: BTreeMap<String, f64> = eval
            .results_for("performance")
            .iter()
            .map(|r| (r.workload_id.clone(), r.ppw.value()))
            .collect();
        for r in eval.results_for("offline_opt") {
            let p = perf[&r.workload_id];
            assert!(
                r.ppw.value() >= p * 0.98,
                "{}: offline_opt {:.4} vs performance {:.4}",
                r.workload_id,
                r.ppw.value(),
                p
            );
        }
    }

    #[test]
    fn models_required_error() {
        let err = evaluate(&small_set(), &[Policy::Dora], None, &quick()).unwrap_err();
        assert_eq!(err, EvaluateError::ModelsRequired("DORA"));
    }

    #[test]
    fn missing_oracle_is_an_error_not_a_panic() {
        let set = small_set();
        let err = make_governor(
            Policy::OfflineOpt,
            &set.workloads()[0],
            None,
            None,
            &quick(),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err, EvaluateError::MissingOracle("offline_opt"));
        assert!(err.to_string().contains("oracle frequency sweep"));
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        use crate::executor::{Executor, Parallelism};
        let set = small_set();
        let policies = [Policy::Interactive, Policy::OfflineOpt];
        let sequential = evaluate(&set, &policies, None, &quick()).expect("runs");
        let parallel = CampaignDriver::new()
            .executor(Executor::new(Parallelism::Fixed(4)))
            .evaluate(&set, &policies, None, &quick())
            .expect("runs");
        assert_eq!(sequential.results(), parallel.results());
        assert_eq!(sequential.oracles(), parallel.oracles());
    }

    #[test]
    fn subset_filters_split_by_training_flag() {
        // Amazon is a training page; Alibaba is held out.
        let eval = evaluate(&small_set(), &[Policy::Interactive], None, &quick())
            .expect("no models needed");
        let inc = eval.mean_normalized_ppw("interactive", "interactive", Subset::Inclusive);
        let neu = eval.mean_normalized_ppw("interactive", "interactive", Subset::Neutral);
        assert!((inc - 1.0).abs() < 1e-12);
        assert!((neu - 1.0).abs() < 1e-12);
        let inc_rows: Vec<_> = eval
            .results()
            .iter()
            .filter(|r| Subset::Inclusive.admits(r))
            .collect();
        assert_eq!(inc_rows.len(), 1);
        assert_eq!(inc_rows[0].page, "Amazon");
    }

    #[test]
    fn load_time_samples_build_cdf() {
        let eval = evaluate(&small_set(), &[Policy::Performance], None, &quick())
            .expect("no models needed");
        let samples = eval.load_time_samples("performance");
        assert_eq!(samples.len(), 2);
        assert!(samples.cdf_at(60.0) == 1.0);
    }
}
