//! The scenario runner: one page load under one governor.
//!
//! Reproduces the paper's measurement procedure (Section IV-B): "the
//! Firefox browser is executed on two cores while a co-run application is
//! executed on the third core of the application processor. The fourth
//! core was switched off." The governor runs in the loop at its decision
//! cadence, sampling counter deltas exactly as DORA samples `perf`.
//!
//! Each scenario begins with a thermal warm-up phase (sustained browsing
//! plus the co-runner) so die temperature — and therefore leakage — is in
//! its steady browsing regime when the measured load starts, as on a
//! phone that has been in use. [`WarmupPolicy`] chooses who drives the
//! warm-up: the measured governor itself (the legacy behaviour, whose
//! prefix depends on the governor under test), or a pinned frequency.
//!
//! A pinned warm-up makes the prefix *frequency-invariant*: every point
//! of a frequency sweep shares the exact same warm-up trajectory. Sweeps
//! exploit that with fork-at-warmup — simulate the shared prefix once,
//! [`dora_soc::Board::snapshot`] it, and fan one per-frequency
//! continuation per executor worker — instead of re-simulating the
//! warm-up 14 times. When the prefix is not frequency-invariant
//! ([`WarmupPolicy::Measured`]) sweeps fall back to full re-runs.
//!
//! Probes attach to the measured window only:
//! [`run_scenario_observed`] warms the board first and attaches the
//! probe before the measured load, so e.g. counted `DvfsSwitch` events
//! match [`RunResult::switches`].

use crate::executor::Executor;
use crate::policy::PolicyName;
use crate::workload::Workload;
use dora_browser::engine::RenderEngine;
use dora_coworkloads::Intensity;
use dora_governors::{Governor, GovernorObservation, PinnedGovernor};
use dora_sim_core::probe::{Probe, ProbeEvent};
use dora_sim_core::units::{Celsius, Joules, Mpki, Ppw, Seconds, Utilization, Watts};
use dora_sim_core::{SimDuration, SimTime};
use dora_soc::board::{Board, BoardConfig};
use dora_soc::task::{LoopTask, PhaseProfile};
use dora_soc::Frequency;
use std::cell::RefCell;
use std::rc::Rc;

/// Core assignments used throughout the evaluation.
pub const BROWSER_MAIN_CORE: usize = 0;
/// The browser helper core.
pub const BROWSER_AUX_CORE: usize = 1;
/// The co-runner's core.
pub const CORUN_CORE: usize = 2;

/// Who drives the DVFS clock during the thermal warm-up phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmupPolicy {
    /// The governor under measurement also governs the warm-up, so its
    /// hysteresis state is warm when the measured load starts. This is
    /// the legacy behaviour and the default — but the warm-up trajectory
    /// then depends on the governor (and, in a sweep, on the pinned
    /// frequency), so sweeps cannot share a prefix and must re-simulate
    /// the warm-up for every point.
    Measured,
    /// A [`PinnedGovernor`] at the given frequency drives the warm-up,
    /// independent of the governor under measurement. The warm-up prefix
    /// is then frequency-invariant, and frequency sweeps simulate it once
    /// and fork per-frequency continuations from a
    /// [`dora_soc::BoardSnapshot`].
    Pinned(Frequency),
}

/// Configuration of one scenario run.
///
/// Construct through [`ScenarioConfig::builder`] (the struct is
/// `#[non_exhaustive]`, so new knobs can be added without breaking
/// downstream crates):
///
/// ```
/// use dora_campaign::runner::ScenarioConfig;
/// use dora_sim_core::units::Seconds;
///
/// let config = ScenarioConfig::builder().deadline(Seconds::new(3.0)).seed(7).build();
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScenarioConfig {
    /// Seed for workload jitter; one seed = one exact replay.
    pub seed: u64,
    /// Platform configuration (ambient temperature lives here).
    pub board: BoardConfig,
    /// The QoS deadline used for the `met_deadline` verdict.
    pub deadline: Seconds,
    /// Thermal warm-up duration before the measured load.
    pub warmup: SimDuration,
    /// Who governs the warm-up phase.
    pub warmup_policy: WarmupPolicy,
    /// Abort the load after this much simulated time.
    pub timeout: SimDuration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            board: dora_soc::SocProfile::msm8974().board_config(),
            deadline: Seconds::new(3.0),
            warmup: SimDuration::from_secs(20),
            warmup_policy: WarmupPolicy::Measured,
            timeout: SimDuration::from_secs(60),
        }
    }
}

impl ScenarioConfig {
    /// Starts a builder at the default configuration.
    pub fn builder() -> ScenarioConfigBuilder {
        ScenarioConfigBuilder {
            config: ScenarioConfig::default(),
        }
    }

    /// Starts a builder at this configuration (for deriving a variant,
    /// the typed replacement for `ScenarioConfig { x, ..base.clone() }`).
    pub fn to_builder(&self) -> ScenarioConfigBuilder {
        ScenarioConfigBuilder {
            config: self.clone(),
        }
    }
}

/// Fluent constructor for [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct ScenarioConfigBuilder {
    config: ScenarioConfig,
}

impl ScenarioConfigBuilder {
    /// Sets the workload jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the platform configuration.
    #[must_use]
    pub fn board(mut self, board: BoardConfig) -> Self {
        self.config.board = board;
        self
    }

    /// Sets the QoS deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Seconds) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Sets the thermal warm-up duration.
    #[must_use]
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.config.warmup = warmup;
        self
    }

    /// Sets who governs the warm-up phase.
    #[must_use]
    pub fn warmup_policy(mut self, policy: WarmupPolicy) -> Self {
        self.config.warmup_policy = policy;
        self
    }

    /// Sets the load timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: SimDuration) -> Self {
        self.config.timeout = timeout;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> ScenarioConfig {
        self.config
    }
}

/// The measured outcome of one page load.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// `page+kernel` identifier.
    pub workload_id: String,
    /// Page name.
    pub page: String,
    /// Co-run kernel name.
    pub kernel: String,
    /// Co-runner intensity class; `None` when the browser ran alone.
    pub intensity: Option<Intensity>,
    /// Whether the page belongs to the Webpage-Inclusive training set.
    pub training: bool,
    /// Governor identity (a paper [`crate::policy::Policy`] when the name
    /// matches one).
    pub governor: PolicyName,
    /// Page load time (the timeout value if `timed_out`).
    pub load_time: Seconds,
    /// Mean device power over the load.
    pub mean_power: Watts,
    /// Device energy over the load.
    pub energy: Joules,
    /// Energy efficiency `1/(T·P)` — the paper's PPW metric.
    pub ppw: Ppw,
    /// Whether the load met the configured deadline.
    pub met_deadline: bool,
    /// Whether the load was censored at the timeout.
    pub timed_out: bool,
    /// DVFS transitions during the measured load.
    pub switches: u64,
    /// Time-weighted mean core frequency over the load (kHz resolution).
    pub mean_frequency: Frequency,
    /// Die temperature at load completion.
    pub final_temp: Celsius,
    /// Shared-L2 MPKI over the load window (Table I X6).
    pub mean_mpki: Mpki,
    /// Co-runner core utilization over the load window (Table I X9).
    pub corun_utilization: Utilization,
    /// Instructions the co-runner retired during the load window (used by
    /// the Fig. 2(b) energy attribution).
    pub corun_instructions: f64,
}

/// A browsing-shaped endless task pair used only for thermal warm-up.
fn warmup_tasks() -> (LoopTask, LoopTask) {
    let main = LoopTask::new(
        "warmup-browse",
        PhaseProfile {
            base_cpi: 1.25,
            l2_apki: 14.0,
            working_set_bytes: 1.2 * 1024.0 * 1024.0,
            reuse_fraction: 0.80,
            duty_cycle: 0.85,
        },
    );
    let aux = LoopTask::new(
        "warmup-aux",
        PhaseProfile {
            base_cpi: 1.1,
            l2_apki: 10.0,
            working_set_bytes: 512.0 * 1024.0,
            reuse_fraction: 0.70,
            duty_cycle: 0.55,
        },
    );
    (main, aux)
}

/// Builds a [`GovernorObservation`] from a counter delta.
fn observation(
    board: &Board,
    delta: &dora_soc::counters::CounterSet,
    interval: SimDuration,
) -> GovernorObservation {
    let per_core_utilization: Vec<Utilization> = delta
        .cores()
        .iter()
        .map(dora_soc::counters::CoreCounters::utilization)
        .collect();
    // The governor governs the browser: it observes the cluster the
    // browser's main core is bound to and that cluster's current clock
    // (on homogeneous boards this is cluster 0 / `board.frequency()`).
    let cluster = board.cluster_of(BROWSER_MAIN_CORE);
    GovernorObservation {
        now: board.time(),
        interval,
        frequency: board.cluster_frequency(cluster),
        cluster: cluster.index(),
        per_core_utilization,
        shared_l2_mpki: delta.shared_l2_mpki(),
        corun_utilization: delta.core(CORUN_CORE).utilization(),
        temperature: board.temperature(),
    }
}

/// Steps the board under governor control until `stop` fires or `until`
/// elapses. Returns the time-weighted mean frequency (GHz·s integral and
/// duration).
///
/// Every decision is mirrored onto the board's probe bus as a
/// [`ProbeEvent::GovernorDecision`] (with the predicted candidate curve
/// for model-based governors) — built only while a probe listens.
#[allow(clippy::expect_used)] // callers document the governor-bug panic
pub(crate) fn govern_until(
    board: &mut Board,
    governor: &mut dyn Governor,
    until: SimTime,
    stop: impl Fn(&Board) -> bool,
) -> (f64, f64) {
    let quantum = board.config().quantum;
    let interval = governor.decision_interval();
    let mut next_decision = board.time() + interval;
    let mut snap = board.counter_set().snapshot();
    let mut freq_integral = 0.0;
    let mut elapsed = 0.0;
    while board.time() < until && !stop(board) {
        let dt = quantum;
        // The integral tracks the governed (browser) cluster's clock; on
        // homogeneous boards that is exactly `board.frequency()`.
        freq_integral += board
            .cluster_frequency(board.cluster_of(BROWSER_MAIN_CORE))
            .as_ghz()
            * dt.as_secs_f64();
        elapsed += dt.as_secs_f64();
        board.step(dt);
        if board.time() >= next_decision {
            let now_snap = board.counter_set().snapshot();
            let delta = now_snap.delta(&snap);
            snap = now_snap;
            let obs = observation(board, &delta, interval);
            let point = governor.decide_point(&obs);
            if board.probes_active() {
                board.emit_event(ProbeEvent::GovernorDecision {
                    governor: governor.name().to_string(),
                    cluster: point.cluster.index(),
                    chosen_khz: point.frequency.as_khz(),
                    curve: governor.decision_curve().unwrap_or_default(),
                });
            }
            if point.cluster.index() != obs.cluster {
                // The governor moved the browser: rebind its cores. The
                // co-runner stays put — only the governed task migrates.
                board
                    .migrate(BROWSER_MAIN_CORE, point.cluster)
                    .expect("governors must return board clusters");
                board
                    .migrate(BROWSER_AUX_CORE, point.cluster)
                    .expect("governors must return board clusters");
            }
            board
                .set_cluster_frequency(point.cluster, point.frequency)
                .expect("governors must return table frequencies");
            next_decision = board.time() + interval;
        }
    }
    (freq_integral, elapsed)
}

/// Runs one workload under one governor and measures the page load.
///
/// # Panics
///
/// Panics if the governor returns a frequency outside the board's DVFS
/// table (a policy bug, not an environmental condition).
pub fn run_scenario(
    workload: &Workload,
    governor: &mut dyn Governor,
    config: &ScenarioConfig,
) -> RunResult {
    run_page(&workload.page, Some(&workload.kernel), governor, config)
}

/// [`run_scenario`] with a probe observing the measured window: the board
/// is warmed first, the probe attached, then the load measured — so the
/// probe sees exactly the events behind the returned [`RunResult`]
/// (e.g. its `DvfsSwitch` count equals [`RunResult::switches`]).
///
/// # Panics
///
/// Panics if the governor returns a frequency outside the board's DVFS
/// table.
pub fn run_scenario_observed(
    workload: &Workload,
    governor: &mut dyn Governor,
    config: &ScenarioConfig,
    probe: Rc<RefCell<dyn Probe>>,
) -> RunResult {
    run_page_observed(
        &workload.page,
        Some(&workload.kernel),
        governor,
        config,
        probe,
    )
}

/// Runs a page load with an optional co-runner (pass `None` to measure
/// the browser alone, as the paper's "running alone" baselines do).
///
/// # Panics
///
/// Panics if the governor returns a frequency outside the board's DVFS
/// table.
pub fn run_page(
    page: &dora_browser::catalog::CatalogPage,
    kernel: Option<&dora_coworkloads::Kernel>,
    governor: &mut dyn Governor,
    config: &ScenarioConfig,
) -> RunResult {
    let mut board = warmed_board(kernel, governor, config);
    measured_load(&mut board, page, kernel, governor, config)
}

/// [`run_page`] with a probe attached for the measured window only.
///
/// # Panics
///
/// Panics if the governor returns a frequency outside the board's DVFS
/// table.
pub fn run_page_observed(
    page: &dora_browser::catalog::CatalogPage,
    kernel: Option<&dora_coworkloads::Kernel>,
    governor: &mut dyn Governor,
    config: &ScenarioConfig,
    probe: Rc<RefCell<dyn Probe>>,
) -> RunResult {
    let mut board = warmed_board(kernel, governor, config);
    let probe_id = board.attach_probe(probe);
    let result = measured_load(&mut board, page, kernel, governor, config);
    board.detach_probe(probe_id);
    result
}

/// Builds a fresh board, assigns the co-runner, and runs the thermal
/// warm-up per the configured [`WarmupPolicy`]. The returned board is
/// ready for a measured load (browser cores cleared).
#[allow(clippy::expect_used)] // fresh-board invariants: documented panic
pub(crate) fn warmed_board(
    kernel: Option<&dora_coworkloads::Kernel>,
    governor: &mut dyn Governor,
    config: &ScenarioConfig,
) -> Board {
    let mut board = Board::new(config.board.clone(), config.seed);
    if let Some(kernel) = kernel {
        board
            .assign(CORUN_CORE, Box::new(kernel.spawn(config.seed)))
            .expect("corun core free on a fresh board");
    }
    if !config.warmup.is_zero() {
        let (wm, wa) = warmup_tasks();
        board
            .assign(BROWSER_MAIN_CORE, Box::new(wm))
            .expect("main core free");
        board
            .assign(BROWSER_AUX_CORE, Box::new(wa))
            .expect("aux core free");
        let until = board.time() + config.warmup;
        match config.warmup_policy {
            WarmupPolicy::Measured => {
                let _ = govern_until(&mut board, governor, until, |_| false);
            }
            WarmupPolicy::Pinned(f) => {
                let mut pin = PinnedGovernor::new("warmup-pin", f);
                let _ = govern_until(&mut board, &mut pin, until, |_| false);
            }
        }
        board.clear_core(BROWSER_MAIN_CORE).expect("core id valid");
        board.clear_core(BROWSER_AUX_CORE).expect("core id valid");
    }
    board
}

/// Measures one page load on an already warmed board.
#[allow(clippy::expect_used)] // warmed-board invariants: documented panic
pub(crate) fn measured_load(
    board: &mut Board,
    page: &dora_browser::catalog::CatalogPage,
    kernel: Option<&dora_coworkloads::Kernel>,
    governor: &mut dyn Governor,
    config: &ScenarioConfig,
) -> RunResult {
    let engine = RenderEngine::default();
    let job = engine.spawn(page, config.seed);
    board
        .assign(BROWSER_MAIN_CORE, Box::new(job.main))
        .expect("main core cleared above");
    board
        .assign(BROWSER_AUX_CORE, Box::new(job.aux))
        .expect("aux core cleared above");

    let t0 = board.time();
    let e0 = board.energy();
    let switches0 = board.switch_count();
    let snap0 = board.counter_set().snapshot();

    let deadline_wall = t0 + config.timeout;
    let (freq_integral, governed_s) = govern_until(board, governor, deadline_wall, |b| {
        b.task_finished(BROWSER_MAIN_CORE)
    });

    let timed_out = !board.task_finished(BROWSER_MAIN_CORE);
    let load_time = if timed_out {
        Seconds::new(config.timeout.as_secs_f64())
    } else {
        Seconds::new(
            board
                .finish_time(BROWSER_MAIN_CORE)
                .expect("finished")
                .duration_since(t0)
                .as_secs_f64(),
        )
    };

    let wall = Seconds::new(board.time().duration_since(t0).as_secs_f64().max(1e-9));
    let energy = board.energy() - e0;
    let mean_power = energy / wall;
    let delta = board.counter_set().snapshot().delta(&snap0);

    RunResult {
        workload_id: match kernel {
            Some(k) => format!("{}+{}", page.name, k.name()),
            None => format!("{}+alone", page.name),
        },
        page: page.name.to_string(),
        kernel: kernel.map_or("alone".to_string(), |k| k.name().to_string()),
        intensity: kernel.map(|k| k.intensity()),
        training: page.training,
        governor: PolicyName::from(governor.name()),
        load_time,
        mean_power,
        energy,
        ppw: Ppw::from_time_power(load_time, mean_power),
        met_deadline: !timed_out && load_time <= config.deadline,
        timed_out,
        switches: board.switch_count() - switches0,
        mean_frequency: if governed_s > 0.0 {
            Frequency::from_mhz(freq_integral / governed_s * 1000.0)
        } else {
            board.frequency()
        },
        final_temp: board.temperature(),
        mean_mpki: delta.shared_l2_mpki(),
        corun_utilization: delta.core(CORUN_CORE).utilization(),
        corun_instructions: delta.core(CORUN_CORE).instructions,
    }
}

/// One point of a frequency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The pinned frequency.
    pub frequency: Frequency,
    /// The measured outcome at that frequency.
    pub result: RunResult,
}

/// Measures one pinned-frequency point of a sweep, warm-up included.
fn sweep_point(workload: &Workload, config: &ScenarioConfig, f: Frequency) -> SweepPoint {
    let mut pinned = PinnedGovernor::new("pinned", f);
    let result = run_scenario(workload, &mut pinned, config);
    SweepPoint {
        frequency: f,
        result,
    }
}

/// Measures a workload at each pinned frequency (the paper's per-figure
/// frequency sweeps and the `Offline_opt` enumeration).
pub fn sweep_frequencies(
    workload: &Workload,
    config: &ScenarioConfig,
    frequencies: &[Frequency],
) -> Vec<SweepPoint> {
    sweep_frequencies_with(workload, config, frequencies, &Executor::sequential())
}

/// [`sweep_frequencies`] with the points fanned out across `executor`.
///
/// Each point is an independent seeded simulation, so the returned sweep
/// is bit-identical to the sequential one, in frequency order.
///
/// Under [`WarmupPolicy::Pinned`] the warm-up prefix is
/// frequency-invariant, so it is simulated **once**, snapshotted, and
/// every point continues from a fork of the snapshot — bit-identical to
/// (but much cheaper than) re-running the warm-up per point, which
/// [`sweep_frequencies_rerun_with`] does and which this function falls
/// back to under [`WarmupPolicy::Measured`].
pub fn sweep_frequencies_with(
    workload: &Workload,
    config: &ScenarioConfig,
    frequencies: &[Frequency],
    executor: &Executor,
) -> Vec<SweepPoint> {
    let WarmupPolicy::Pinned(warmup_f) = config.warmup_policy else {
        // The warm-up depends on the measured (pinned) frequency: no
        // shared prefix exists, so every point re-runs in full.
        return sweep_frequencies_rerun_with(workload, config, frequencies, executor);
    };
    // Simulate the shared, frequency-invariant prefix exactly once.
    let mut warm_gov = PinnedGovernor::new("warmup-pin", warmup_f);
    let warmed = warmed_board(Some(&workload.kernel), &mut warm_gov, config);
    let snapshot = warmed.snapshot();
    executor.map(frequencies, |&f| {
        let mut fork = Board::new(config.board.clone(), config.seed);
        if fork.restore(&snapshot).is_err() {
            // Defensive: a structural mismatch means the prefix cannot be
            // reused; measure this point the slow, always-correct way.
            return sweep_point(workload, config, f);
        }
        let mut pinned = PinnedGovernor::new("pinned", f);
        let result = measured_load(
            &mut fork,
            &workload.page,
            Some(&workload.kernel),
            &mut pinned,
            config,
        );
        SweepPoint {
            frequency: f,
            result,
        }
    })
}

/// [`sweep_frequencies_with`] without fork-at-warmup: every point is an
/// independent full simulation, warm-up included. This is the reference
/// implementation sweeps are checked against (and benchmarked against in
/// `benches/forksweep.rs`).
pub fn sweep_frequencies_rerun_with(
    workload: &Workload,
    config: &ScenarioConfig,
    frequencies: &[Frequency],
    executor: &Executor,
) -> Vec<SweepPoint> {
    executor.map(frequencies, |&f| sweep_point(workload, config, f))
}

/// The oracle frequencies of Section II-C / Equation 1 for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleFrequencies {
    /// `fD` — the lowest frequency whose measured load time meets the
    /// deadline; `None` when even `fmax` misses it.
    pub fd: Option<Frequency>,
    /// `fE` — the measured PPW-optimal frequency, deadline ignored.
    pub fe: Frequency,
    /// `fopt` per Equation 1 (`fE` if `fD ≤ fE`, else `fD`; `fmax` when
    /// infeasible).
    pub fopt: Frequency,
    /// The full sweep behind the verdicts.
    pub sweep: Vec<SweepPoint>,
}

/// Exhaustively determines `fD`, `fE` and `fopt` for a workload by
/// sweeping every frequency in the table.
#[deprecated(note = "use CampaignDriver::oracle")]
pub fn oracle(workload: &Workload, config: &ScenarioConfig) -> OracleFrequencies {
    oracle_impl(workload, config, &Executor::sequential())
}

/// [`oracle`] with the frequency sweep fanned out across `executor`.
#[deprecated(note = "use CampaignDriver::oracle with an executor")]
pub fn oracle_with(
    workload: &Workload,
    config: &ScenarioConfig,
    executor: &Executor,
) -> OracleFrequencies {
    oracle_impl(workload, config, executor)
}

/// The full-table oracle sweep behind
/// [`crate::driver::CampaignDriver::oracle`].
pub(crate) fn oracle_impl(
    workload: &Workload,
    config: &ScenarioConfig,
    executor: &Executor,
) -> OracleFrequencies {
    let freqs: Vec<Frequency> = config.board.dvfs.frequencies().collect();
    let sweep = sweep_frequencies_with(workload, config, &freqs, executor);
    oracle_from_sweep(sweep, config)
}

/// Derives the Section II-C verdicts from a completed full-table sweep.
pub(crate) fn oracle_from_sweep(
    sweep: Vec<SweepPoint>,
    config: &ScenarioConfig,
) -> OracleFrequencies {
    let fd = sweep
        .iter()
        .find(|p| p.result.met_deadline)
        .map(|p| p.frequency);
    let fe = sweep
        .iter()
        .max_by(|a, b| a.result.ppw.total_cmp(&b.result.ppw))
        .map_or_else(|| config.board.dvfs.max_frequency(), |p| p.frequency);
    let fopt = match fd {
        Some(fd) if fd <= fe => fe,
        Some(fd) => fd,
        None => config.board.dvfs.max_frequency(),
    };
    OracleFrequencies {
        fd,
        fe,
        fopt,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSet;
    use dora_coworkloads::Intensity;
    use dora_governors::{PerformanceGovernor, PinnedGovernor};
    use dora_soc::DvfsTable;

    fn fast_config() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(5))
            .build()
    }

    #[test]
    fn performance_governor_loads_low_page_fast() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        let r = run_scenario(w, &mut g, &fast_config());
        assert!(!r.timed_out);
        assert!(
            r.met_deadline,
            "Amazon+low must meet 3s: {:.2}s",
            r.load_time.value()
        );
        assert!(r.load_time < Seconds::new(2.0));
        assert!(
            (2.2..2.4).contains(&r.mean_frequency.as_ghz()),
            "{}",
            r.mean_frequency
        );
        assert!(r.mean_power > Watts::new(1.5) && r.mean_power < Watts::new(6.5));
        assert!((r.ppw.value() - 1.0 / (r.load_time.value() * r.mean_power.value())).abs() < 1e-12);
    }

    #[test]
    fn interference_class_orders_load_time() {
        let set = WorkloadSet::paper54();
        let config = fast_config();
        let mut times = Vec::new();
        for intensity in Intensity::ALL {
            let w = set.find_by_class("Reddit", intensity).expect("present");
            let mut g = PinnedGovernor::new("pin", Frequency::from_mhz(1190.4));
            let r = run_scenario(w, &mut g, &config);
            times.push((intensity, r.load_time));
        }
        assert!(
            times[0].1 < times[1].1 && times[1].1 < times[2].1,
            "interference must slow the load: {times:?}"
        );
    }

    #[test]
    fn low_frequency_pinned_can_miss_deadline() {
        let set = WorkloadSet::paper54();
        let w = set.find_by_class("IMDB", Intensity::High).expect("present");
        let config = fast_config();
        let mut slow = PinnedGovernor::new("pin", Frequency::from_mhz(729.6));
        let r = run_scenario(w, &mut slow, &config);
        assert!(
            !r.met_deadline,
            "IMDB+high at 0.73GHz: {:.2}s",
            r.load_time.value()
        );
        assert!(!r.timed_out);
    }

    #[test]
    fn runs_are_reproducible() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("MSN", Intensity::Medium)
            .expect("present");
        let config = fast_config();
        let mut a = PerformanceGovernor::new(DvfsTable::default());
        let mut b = PerformanceGovernor::new(DvfsTable::default());
        let ra = run_scenario(w, &mut a, &config);
        let rb = run_scenario(w, &mut b, &config);
        assert_eq!(ra, rb);
    }

    #[test]
    fn oracle_structure_holds() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let config = fast_config();
        let o = oracle_impl(w, &config, &Executor::sequential());
        assert_eq!(o.sweep.len(), 14);
        // Amazon+low is easy: some fD exists well below fmax.
        let fd = o.fd.expect("feasible");
        assert!(fd < Frequency::from_mhz(2265.6));
        // Equation 1.
        let expected = if fd <= o.fe { o.fe } else { fd };
        assert_eq!(o.fopt, expected);
        // PPW at fopt must be the best among deadline-meeting points.
        let best_feasible = o
            .sweep
            .iter()
            .filter(|p| p.result.met_deadline)
            .map(|p| p.result.ppw)
            .fold(Ppw::ZERO, Ppw::max);
        let at_fopt = o
            .sweep
            .iter()
            .find(|p| p.frequency == o.fopt)
            .expect("fopt in sweep")
            .result
            .ppw;
        assert!((at_fopt.value() - best_feasible.value()).abs() < 1e-12);
    }

    #[test]
    fn builder_sets_fields_and_derives_variants() {
        let base = ScenarioConfig::builder()
            .seed(7)
            .deadline(Seconds::new(2.5))
            .warmup(SimDuration::from_secs(1))
            .timeout(SimDuration::from_secs(30))
            .build();
        assert_eq!(base.seed, 7);
        assert_eq!(base.deadline, Seconds::new(2.5));
        assert_eq!(base.warmup, SimDuration::from_secs(1));
        assert_eq!(base.timeout, SimDuration::from_secs(30));
        let derived = base.to_builder().deadline(Seconds::new(4.0)).build();
        assert_eq!(derived.seed, 7, "to_builder keeps unset fields");
        assert_eq!(derived.deadline, Seconds::new(4.0));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let config = ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(2))
            .build();
        let freqs = [
            Frequency::from_mhz(729.6),
            Frequency::from_mhz(1497.6),
            Frequency::from_mhz(2265.6),
        ];
        let sequential = sweep_frequencies(w, &config, &freqs);
        let parallel = sweep_frequencies_with(
            w,
            &config,
            &freqs,
            &crate::executor::Executor::new(crate::executor::Parallelism::Fixed(3)),
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn fork_at_warmup_sweep_is_bit_identical_to_full_rerun() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let config = ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(2))
            .warmup_policy(WarmupPolicy::Pinned(Frequency::from_mhz(1190.4)))
            .build();
        let freqs = [
            Frequency::from_mhz(729.6),
            Frequency::from_mhz(1497.6),
            Frequency::from_mhz(2265.6),
        ];
        let rerun = sweep_frequencies_rerun_with(
            w,
            &config,
            &freqs,
            &crate::executor::Executor::sequential(),
        );
        let forked =
            sweep_frequencies_with(w, &config, &freqs, &crate::executor::Executor::sequential());
        assert_eq!(rerun, forked, "fork-at-warmup must not change results");
        let forked_parallel = sweep_frequencies_with(
            w,
            &config,
            &freqs,
            &crate::executor::Executor::new(crate::executor::Parallelism::Fixed(3)),
        );
        assert_eq!(forked, forked_parallel);
    }

    #[test]
    fn pinned_warmup_oracle_matches_rerun_oracle_on_full_table() {
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let config = ScenarioConfig::builder()
            .warmup(SimDuration::from_millis(500))
            .warmup_policy(WarmupPolicy::Pinned(Frequency::from_mhz(1190.4)))
            .build();
        let freqs: Vec<Frequency> = config.board.dvfs.frequencies().collect();
        let rerun = sweep_frequencies_rerun_with(
            w,
            &config,
            &freqs,
            &crate::executor::Executor::sequential(),
        );
        let forked = oracle_impl(w, &config, &crate::executor::Executor::sequential());
        assert_eq!(forked.sweep, rerun);
        assert_eq!(forked.sweep.len(), 14);
    }

    #[test]
    fn observed_run_sees_decisions_and_matching_switches() {
        use dora_sim_core::probe::ProbeRing;

        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let config = ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(1))
            .build();
        let mut g = dora_governors::InteractiveGovernor::new(DvfsTable::default());
        let ring = ProbeRing::shared(1 << 16);
        let r = run_scenario_observed(w, &mut g, &config, ring.clone());

        let events = ring.borrow().to_vec();
        assert_eq!(ring.borrow().dropped(), 0, "ring too small for the run");
        let switches = events
            .iter()
            .filter(|e| matches!(e.event, ProbeEvent::DvfsSwitch { .. }))
            .count() as u64;
        assert_eq!(
            switches, r.switches,
            "probe attaches after warmup, so counts must match the result"
        );
        let decisions: Vec<&dora_sim_core::probe::RecordedEvent> = events
            .iter()
            .filter(|e| matches!(e.event, ProbeEvent::GovernorDecision { .. }))
            .collect();
        assert!(!decisions.is_empty(), "decisions must be mirrored");
        for d in &decisions {
            let ProbeEvent::GovernorDecision {
                governor,
                cluster,
                chosen_khz,
                curve,
            } = &d.event
            else {
                unreachable!("filtered above");
            };
            assert_eq!(governor, "interactive");
            assert_eq!(*cluster, 0, "homogeneous boards decide on cluster 0");
            assert!(config
                .board
                .dvfs
                .frequencies()
                .any(|f| f.as_khz() == *chosen_khz));
            assert!(curve.is_empty(), "heuristic governors have no curve");
        }
    }

    #[test]
    fn ppw_curve_is_unimodal_enough_to_have_interior_peak_for_easy_page() {
        // The Fig. 3 phenomenon: for a low-complexity page the PPW-optimal
        // frequency is strictly inside the range.
        let set = WorkloadSet::paper54();
        let w = set
            .find_by_class("Amazon", Intensity::Low)
            .expect("present");
        let config = fast_config();
        let o = oracle_impl(w, &config, &Executor::sequential());
        assert!(
            o.fe > Frequency::from_mhz(300.0),
            "fE at the bottom: floor power should forbid this"
        );
        assert!(
            o.fe < Frequency::from_mhz(2265.6),
            "fE at the top: V²f should forbid this"
        );
    }
}
