//! The campaign driver: execution context for every campaign entry point.
//!
//! Historically each campaign function came in a pair — `evaluate` /
//! `evaluate_with(.., &Executor)`, `oracle` / `oracle_with`, and so on —
//! and probe attachment and warm-up policy were threaded separately
//! through [`ScenarioConfig`] and `*_observed` variants. Fleet-scale
//! work multiplies entry points, so the pairs collapse into one context
//! object: a [`CampaignDriver`] owns the executor (how wide to fan out),
//! an optional warm-up policy override (how boards are warmed), and an
//! optional probe (who watches single runs), and every campaign
//! operation is a method on it.
//!
//! The old free functions remain as thin deprecated shims for one
//! release; in-repo code uses the driver.
//!
//! # Example
//!
//! ```no_run
//! use dora_campaign::driver::CampaignDriver;
//! use dora_campaign::executor::{Executor, Parallelism};
//! use dora_campaign::policy::Policy;
//! use dora_campaign::runner::ScenarioConfig;
//! use dora_campaign::workload::WorkloadSet;
//!
//! let driver = CampaignDriver::new().executor(Executor::new(Parallelism::Auto));
//! let eval = driver
//!     .evaluate(
//!         &WorkloadSet::paper54(),
//!         &[Policy::Interactive, Policy::Performance],
//!         None,
//!         &ScenarioConfig::default(),
//!     )
//!     .expect("no models needed");
//! println!("{} runs", eval.results().len());
//! ```

use crate::evaluate::{evaluate_impl, EvaluateError, Evaluation};
use crate::executor::Executor;
use crate::fleet::{self, FleetConfig, FleetError, FleetReport};
use crate::policy::Policy;
use crate::runner::{
    oracle_impl, run_scenario, run_scenario_observed, sweep_frequencies_with, OracleFrequencies,
    RunResult, ScenarioConfig, SweepPoint, WarmupPolicy,
};
use crate::training::{leakage_calibration_impl, training_campaign_impl, TrainingCampaignConfig};
use crate::workload::{Workload, WorkloadSet};
use dora::trainer::TrainingObservation;
use dora::DoraModels;
use dora_governors::Governor;
use dora_modeling::leakage::LeakageObservation;
use dora_sim_core::probe::Probe;
use dora_sim_core::units::Celsius;
use dora_soc::board::BoardConfig;
use dora_soc::Frequency;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Execution context for campaign operations: executor, warm-up policy
/// and probe in one object. Construct with [`CampaignDriver::new`] and
/// chain the builder-style setters.
pub struct CampaignDriver {
    executor: Executor,
    warmup: Option<WarmupPolicy>,
    probe: Option<Rc<RefCell<dyn Probe>>>,
}

impl fmt::Debug for CampaignDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignDriver")
            .field("jobs", &self.executor.jobs())
            .field("warmup", &self.warmup)
            .field("probe", &self.probe.is_some())
            .finish()
    }
}

impl Default for CampaignDriver {
    fn default() -> Self {
        CampaignDriver::new()
    }
}

impl CampaignDriver {
    /// A sequential driver with no warm-up override and no probe — the
    /// behaviour of the old plain (non-`_with`) entry points.
    pub fn new() -> CampaignDriver {
        CampaignDriver {
            executor: Executor::sequential(),
            warmup: None,
            probe: None,
        }
    }

    /// Sets the executor campaign grids fan out across. The output of
    /// every method is bit-identical at any width, so this is purely a
    /// wall-clock knob.
    #[must_use]
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Overrides the warm-up policy of every [`ScenarioConfig`] passed to
    /// this driver (e.g. [`WarmupPolicy::Pinned`] to enable
    /// fork-at-warmup sweeps without editing each config).
    #[must_use]
    pub fn warmup_policy(mut self, policy: WarmupPolicy) -> Self {
        self.warmup = Some(policy);
        self
    }

    /// Attaches a probe to single-run methods ([`CampaignDriver::run`]).
    /// Grid methods ignore it: probes are not `Send`, and observing one
    /// run of a parallel grid is meaningless.
    #[must_use]
    pub fn probe(mut self, probe: Rc<RefCell<dyn Probe>>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The configured fan-out width.
    pub fn jobs(&self) -> usize {
        self.executor.jobs()
    }

    /// A copy of `config` with the driver's warm-up override applied.
    fn scenario(&self, config: &ScenarioConfig) -> ScenarioConfig {
        match self.warmup {
            Some(policy) => config.to_builder().warmup_policy(policy).build(),
            None => config.clone(),
        }
    }

    /// Runs every workload under every policy (the Section V comparison
    /// grid). Replaces `evaluate` / `evaluate_with`.
    ///
    /// # Errors
    ///
    /// [`EvaluateError::ModelsRequired`] when a DORA-family policy is
    /// requested without trained models.
    pub fn evaluate(
        &self,
        set: &WorkloadSet,
        policies: &[Policy],
        models: Option<&DoraModels>,
        config: &ScenarioConfig,
    ) -> Result<Evaluation, EvaluateError> {
        evaluate_impl(
            set,
            policies,
            models,
            &self.scenario(config),
            &self.executor,
        )
    }

    /// Exhaustively determines `fD`, `fE` and `fopt` for a workload by
    /// sweeping every table frequency. Replaces `oracle` / `oracle_with`.
    pub fn oracle(&self, workload: &Workload, config: &ScenarioConfig) -> OracleFrequencies {
        oracle_impl(workload, &self.scenario(config), &self.executor)
    }

    /// Measures a workload at each pinned frequency, with fork-at-warmup
    /// when the (possibly overridden) warm-up policy is pinned.
    pub fn sweep_frequencies(
        &self,
        workload: &Workload,
        config: &ScenarioConfig,
        frequencies: &[Frequency],
    ) -> Vec<SweepPoint> {
        sweep_frequencies_with(
            workload,
            &self.scenario(config),
            frequencies,
            &self.executor,
        )
    }

    /// The offline training sweep over the Webpage-Inclusive workloads.
    /// Replaces `training_campaign` / `training_campaign_with`.
    pub fn training_campaign(
        &self,
        set: &WorkloadSet,
        config: &TrainingCampaignConfig,
    ) -> Vec<TrainingObservation> {
        let config = TrainingCampaignConfig {
            scenario: self.scenario(&config.scenario),
            frequencies: config.frequencies.clone(),
        };
        training_campaign_impl(set, &config, &self.executor)
    }

    /// Idle thermal-soak leakage measurements across operating points and
    /// ambients. Replaces `leakage_calibration` /
    /// `leakage_calibration_with`.
    pub fn leakage_calibration(
        &self,
        base: &BoardConfig,
        ambients: &[Celsius],
    ) -> Vec<LeakageObservation> {
        leakage_calibration_impl(base, ambients, &self.executor)
    }

    /// Streams a fleet of sampled device sessions through the driver's
    /// executor and folds them into mergeable per-governor sketches (see
    /// [`crate::fleet`]). Memory is O(shards); the report is
    /// byte-identical at any executor width.
    ///
    /// Fleet warm-up is always pinned — that is what makes the
    /// warm-once/fork-per-session scheme sound — so a
    /// [`WarmupPolicy::Pinned`] driver override replaces
    /// [`FleetConfig::warmup_pin`], while a [`WarmupPolicy::Measured`]
    /// override is rejected. Probes are ignored, as for other grid
    /// methods.
    ///
    /// # Errors
    ///
    /// [`FleetError::ModelsRequired`] for a DORA-family policy without
    /// models, [`FleetError::NoPolicies`] for an empty comparison, and
    /// [`FleetError::MeasuredWarmup`] for a measured warm-up override.
    pub fn fleet(
        &self,
        config: &FleetConfig,
        models: Option<&DoraModels>,
    ) -> Result<FleetReport, FleetError> {
        let mut config = config.clone();
        match self.warmup {
            Some(WarmupPolicy::Pinned(f)) => config.warmup_pin = f,
            Some(WarmupPolicy::Measured) => return Err(FleetError::MeasuredWarmup),
            None => {}
        }
        fleet::run_fleet(&config, models, &self.executor)
    }

    /// Runs one workload under one governor. When a probe is attached it
    /// observes the measured window, exactly as `run_scenario_observed`
    /// did.
    ///
    /// # Panics
    ///
    /// Panics if the governor returns a frequency outside the board's
    /// DVFS table (a policy bug, not an environmental condition).
    pub fn run(
        &self,
        workload: &Workload,
        governor: &mut dyn Governor,
        config: &ScenarioConfig,
    ) -> RunResult {
        let config = self.scenario(config);
        match &self.probe {
            Some(probe) => run_scenario_observed(workload, governor, &config, probe.clone()),
            None => run_scenario(workload, governor, &config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Parallelism;
    use dora_coworkloads::Intensity;
    use dora_sim_core::probe::{ProbeEvent, ProbeRing};
    use dora_sim_core::SimDuration;

    fn small_set() -> WorkloadSet {
        let all = WorkloadSet::paper54();
        WorkloadSet::from_workloads(vec![all
            .find_by_class("Amazon", Intensity::Low)
            .expect("present")
            .clone()])
    }

    fn quick() -> ScenarioConfig {
        ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(2))
            .build()
    }

    #[test]
    fn driver_matches_across_widths() {
        let set = small_set();
        let policies = [Policy::Interactive, Policy::Performance];
        let sequential = CampaignDriver::new()
            .evaluate(&set, &policies, None, &quick())
            .expect("runs");
        let parallel = CampaignDriver::new()
            .executor(Executor::new(Parallelism::Fixed(4)))
            .evaluate(&set, &policies, None, &quick())
            .expect("runs");
        assert_eq!(sequential.results(), parallel.results());
    }

    #[test]
    fn warmup_override_applies_to_configs() {
        let set = small_set();
        let w = &set.workloads()[0];
        let pinned = WarmupPolicy::Pinned(Frequency::from_mhz(1190.4));
        let driver = CampaignDriver::new().warmup_policy(pinned);
        // Oracle through the driver (override) must equal oracle on a
        // config that sets the policy explicitly.
        let via_driver = driver.oracle(w, &quick());
        let explicit =
            CampaignDriver::new().oracle(w, &quick().to_builder().warmup_policy(pinned).build());
        assert_eq!(via_driver.fd, explicit.fd);
        assert_eq!(via_driver.fe, explicit.fe);
        assert_eq!(via_driver.fopt, explicit.fopt);
        assert_eq!(via_driver.sweep, explicit.sweep);
    }

    #[test]
    fn probe_observes_single_runs() {
        let set = small_set();
        let w = &set.workloads()[0];
        let ring = ProbeRing::shared(1 << 16);
        let driver = CampaignDriver::new().probe(ring.clone());
        let mut g = dora_governors::InteractiveGovernor::new(dora_soc::DvfsTable::default());
        let r = driver.run(w, &mut g, &quick());
        let switches = ring
            .borrow()
            .to_vec()
            .iter()
            .filter(|e| matches!(e.event, ProbeEvent::DvfsSwitch { .. }))
            .count() as u64;
        assert_eq!(switches, r.switches);
    }

    #[test]
    fn debug_shows_context() {
        let d = CampaignDriver::new().executor(Executor::new(Parallelism::Fixed(3)));
        let s = format!("{d:?}");
        assert!(s.contains("jobs: 3"), "{s}");
        assert!(s.contains("probe: false"), "{s}");
    }
}
