//! Result export.
//!
//! The experiment binaries print human-readable tables; for plotting and
//! downstream analysis the raw [`RunResult`] rows export to RFC-4180-style
//! CSV. Hand-rolled (quoting included) so the workspace carries no
//! serialization dependency.

use crate::runner::{RunResult, SweepPoint};
use std::fmt::Write as _;

/// Errors produced while serializing results.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExportError {
    /// A sweep point produced no CSV row (internal serialization bug).
    MissingRow {
        /// Index of the offending sweep point.
        index: usize,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::MissingRow { index } => {
                write!(f, "sweep point {index} produced no CSV row")
            }
        }
    }
}

impl std::error::Error for ExportError {}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The CSV header matching [`results_to_csv`] rows.
pub const RESULT_HEADER: &str = "workload_id,page,kernel,intensity,training,governor,\
load_time_s,mean_power_w,energy_j,ppw,met_deadline,timed_out,switches,\
mean_freq_ghz,final_temp_c,mean_mpki,corun_utilization,corun_instructions";

/// Serializes run results to CSV (header + one row per result).
///
/// # Example
///
/// ```
/// use dora_campaign::export::results_to_csv;
///
/// let csv = results_to_csv(&[]);
/// assert!(csv.starts_with("workload_id,page,kernel"));
/// assert_eq!(csv.lines().count(), 1); // header only
/// ```
pub fn results_to_csv(results: &[RunResult]) -> String {
    let mut out = String::from(RESULT_HEADER);
    out.push('\n');
    for r in results {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            field(&r.workload_id),
            field(&r.page),
            field(&r.kernel),
            r.intensity.map_or("none", |i| i.as_str()),
            r.training,
            field(r.governor.as_str()),
            r.load_time.value(),
            r.mean_power.value(),
            r.energy.value(),
            r.ppw.value(),
            r.met_deadline,
            r.timed_out,
            r.switches,
            r.mean_frequency.as_ghz(),
            r.final_temp.value(),
            r.mean_mpki.value(),
            r.corun_utilization.value(),
            r.corun_instructions,
        );
    }
    out
}

/// Serializes a frequency sweep to CSV, with the pinned frequency as the
/// leading column.
///
/// # Errors
///
/// Returns [`ExportError::MissingRow`] if a point fails to serialize —
/// impossible with the current writer, but surfaced rather than silently
/// emitting a short row.
pub fn sweep_to_csv(points: &[SweepPoint]) -> Result<String, ExportError> {
    let mut out = format!("freq_mhz,{RESULT_HEADER}\n");
    for (index, p) in points.iter().enumerate() {
        let rows = results_to_csv(std::slice::from_ref(&p.result));
        let row = rows
            .lines()
            .nth(1)
            .ok_or(ExportError::MissingRow { index })?;
        let _ = writeln!(out, "{},{}", p.frequency.as_mhz(), row);
    }
    Ok(out)
}

/// Parses one CSV line back into fields (inverse of the writer's quoting;
/// used by tests and external tooling that round-trips exports).
pub fn parse_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if !quoted && current.is_empty() => quoted = true,
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    quoted = false;
                }
            }
            ',' if !quoted => {
                fields.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scenario, ScenarioConfig};
    use crate::workload::WorkloadSet;
    use dora_coworkloads::Intensity;
    use dora_governors::PerformanceGovernor;
    use dora_sim_core::SimDuration;
    use dora_soc::DvfsTable;

    fn one_result() -> RunResult {
        let set = WorkloadSet::paper54();
        let w = set.find_by_class("Amazon", Intensity::Low).expect("exists");
        let mut g = PerformanceGovernor::new(DvfsTable::default());
        run_scenario(
            w,
            &mut g,
            &ScenarioConfig::builder()
                .warmup(SimDuration::from_secs(2))
                .build(),
        )
    }

    #[test]
    fn csv_has_header_and_one_row_per_result() {
        let r = one_result();
        let csv = results_to_csv(&[r.clone(), r]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], RESULT_HEADER);
        assert_eq!(lines[1], lines[2]);
        // Column count matches the header.
        let header_cols = parse_csv_line(lines[0]).len();
        assert_eq!(parse_csv_line(lines[1]).len(), header_cols);
    }

    #[test]
    fn numeric_fields_roundtrip() {
        let r = one_result();
        let csv = results_to_csv(std::slice::from_ref(&r));
        let row = parse_csv_line(csv.lines().nth(1).expect("row"));
        let header = parse_csv_line(RESULT_HEADER);
        let idx = |name: &str| header.iter().position(|h| h == name).expect("column");
        assert_eq!(row[idx("workload_id")], r.workload_id);
        assert_eq!(
            row[idx("load_time_s")].parse::<f64>().expect("float"),
            r.load_time.value()
        );
        assert_eq!(row[idx("met_deadline")], r.met_deadline.to_string());
        assert_eq!(
            row[idx("switches")].parse::<u64>().expect("int"),
            r.switches
        );
    }

    #[test]
    fn quoting_handles_awkward_strings() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        let parsed = parse_csv_line("\"a,b\",c,\"say \"\"hi\"\"\"");
        assert_eq!(parsed, vec!["a,b", "c", "say \"hi\""]);
    }

    #[test]
    fn sweep_csv_prefixes_frequency() {
        let set = WorkloadSet::paper54();
        let w = set.find_by_class("Amazon", Intensity::Low).expect("exists");
        let config = ScenarioConfig::builder()
            .warmup(SimDuration::from_secs(2))
            .build();
        let points =
            crate::runner::sweep_frequencies(w, &config, &[dora_soc::Frequency::from_mhz(729.6)]);
        let csv = sweep_to_csv(&points).expect("serializes");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("freq_mhz,"));
        assert!(lines[1].starts_with("729.6,"));
    }
}
