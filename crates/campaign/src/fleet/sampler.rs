//! Deterministic per-session sampling.
//!
//! Every session of a fleet is described by a [`SessionSpec`] derived
//! *only* from the fleet seed and the session's global index: each index
//! seeds its own [`Rng`], so specs are identical no matter how sessions
//! are later grouped into shards or which executor width runs them. That
//! independence is what lets the fleet report be byte-identical across
//! `--jobs 1/N` — sharding changes who *computes* a session, never *what*
//! the session is.

use super::archetype::DeviceArchetype;
use crate::workload::Workload;
use dora_browser::catalog::Catalog;
use dora_coworkloads::Kernel;
use dora_sim_core::Rng;

/// One sampled device session, fully determined by `(fleet seed, index)`.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Global session index in `0..sessions`.
    pub index: u64,
    /// Index into the fleet's archetype population.
    pub archetype: usize,
    /// The sampled page + co-runner pair.
    pub workload: Workload,
    /// Battery state of charge in `[0.35, 1.0)` at session start.
    pub charge: f64,
    /// Seed for the session's simulation (page jitter, co-runner phases).
    pub seed: u64,
}

/// The sampling space: the archetype population plus the page and
/// co-runner catalogs sessions draw from.
#[derive(Debug, Clone)]
pub struct SessionSampler {
    archetypes: Vec<DeviceArchetype>,
    cumulative_weights: Vec<f64>,
    workload_pool: Vec<Workload>,
}

impl SessionSampler {
    /// Builds the sampler over `archetypes` and the full built-in page ×
    /// kernel catalog.
    ///
    /// # Panics
    ///
    /// Panics if `archetypes` is empty or its weights do not sum to a
    /// positive finite value (a configuration bug, not a runtime
    /// condition).
    pub fn new(archetypes: Vec<DeviceArchetype>) -> SessionSampler {
        assert!(!archetypes.is_empty(), "fleet needs at least one archetype");
        let mut cumulative_weights = Vec::with_capacity(archetypes.len());
        let mut total = 0.0;
        for archetype in &archetypes {
            total += archetype.weight;
            cumulative_weights.push(total);
        }
        assert!(
            total.is_finite() && total > 0.0,
            "archetype weights must sum to a positive finite value, got {total}"
        );
        let catalog = Catalog::alexa18();
        let mut workload_pool = Vec::new();
        for page in catalog.pages() {
            for kernel in Kernel::all() {
                workload_pool.push(Workload {
                    page: page.clone(),
                    kernel: kernel.clone(),
                });
            }
        }
        SessionSampler {
            archetypes,
            cumulative_weights,
            workload_pool,
        }
    }

    /// The archetype population.
    pub fn archetypes(&self) -> &[DeviceArchetype] {
        &self.archetypes
    }

    /// Every distinct workload a session can draw.
    pub fn workload_pool(&self) -> &[Workload] {
        &self.workload_pool
    }

    /// Samples session `index` of the fleet seeded by `fleet_seed`.
    pub fn sample(&self, fleet_seed: u64, index: u64) -> SessionSpec {
        // A per-index generator (not a shared stream) keeps the spec
        // independent of evaluation order. The multiplier is the 64-bit
        // golden-ratio constant; seed_from_u64 then splitmixes, so
        // adjacent indices land far apart in state space.
        let mut rng = Rng::seed_from_u64(
            fleet_seed ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let pick = rng.f64() * self.cumulative_weights[self.cumulative_weights.len() - 1];
        let archetype = self
            .cumulative_weights
            .iter()
            .position(|&c| pick < c)
            .unwrap_or(self.archetypes.len() - 1);
        let workload =
            self.workload_pool[rng.below(self.workload_pool.len() as u64) as usize].clone();
        let charge = rng.range_f64(0.35, 1.0);
        SessionSpec {
            index,
            archetype,
            workload,
            charge,
            seed: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sampler() -> SessionSampler {
        SessionSampler::new(DeviceArchetype::default_population())
    }

    #[test]
    fn specs_depend_only_on_seed_and_index() {
        let s = sampler();
        for index in [0u64, 1, 17, 999_983] {
            let a = s.sample(42, index);
            let b = s.sample(42, index);
            assert_eq!(a.archetype, b.archetype);
            assert_eq!(a.workload.id(), b.workload.id());
            assert_eq!(a.charge, b.charge);
            assert_eq!(a.seed, b.seed);
        }
        assert_ne!(s.sample(42, 0).seed, s.sample(43, 0).seed);
        assert_ne!(s.sample(42, 0).seed, s.sample(42, 1).seed);
    }

    #[test]
    fn population_mixes_archetypes_pages_and_kernels() {
        let s = sampler();
        let mut archetypes = BTreeSet::new();
        let mut pages = BTreeSet::new();
        let mut kernels = BTreeSet::new();
        for index in 0..2000 {
            let spec = s.sample(7, index);
            archetypes.insert(spec.archetype);
            pages.insert(spec.workload.page.name.to_string());
            kernels.insert(spec.workload.kernel.name().to_string());
            assert!((0.35..1.0).contains(&spec.charge), "{}", spec.charge);
        }
        assert_eq!(archetypes.len(), s.archetypes().len());
        assert_eq!(pages.len(), 18, "all catalog pages should appear");
        assert_eq!(kernels.len(), 9, "all co-run kernels should appear");
    }

    #[test]
    fn archetype_shares_track_weights() {
        let s = sampler();
        let n = 20_000u64;
        let mut counts = vec![0u64; s.archetypes().len()];
        for index in 0..n {
            counts[s.sample(1, index).archetype] += 1;
        }
        let total: f64 = s.archetypes().iter().map(|a| a.weight).sum();
        for (archetype, &count) in s.archetypes().iter().zip(&counts) {
            let expected = archetype.weight / total;
            let got = count as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.02,
                "{}: weight {expected:.2}, sampled {got:.3}",
                archetype.name
            );
        }
    }
}
