//! Streaming fleet aggregation: mergeable per-governor sketches.
//!
//! A fleet run never materializes per-session results. Each shard folds
//! its sessions into a [`FleetReport`] — fixed-bin histograms, counters
//! and running sums, all O(bins) — and shard reports merge left-to-right
//! in shard order. Histogram merges add exact bin counts, and every
//! floating-point sum is folded in the same fixed order regardless of
//! executor width, so the merged report (and its [`FleetReport::digest`])
//! is byte-identical across `--jobs 1/N`.

use crate::runner::RunResult;
use dora_sim_core::sketch::{Digest64, FixedHistogram, SketchError};
use dora_sim_core::units::{Joules, Seconds, WattHours};

/// Load-time histogram shape: 96 × 0.125 s bins over `[0, 12)` s; slower
/// loads (including timeouts) land in the overflow bucket.
const LOAD_TIME_BINS: usize = 96;
const LOAD_TIME_HI: f64 = 12.0;

/// PPW histogram shape: 100 bins over `[0, 1)` 1/(J·s)·s⁻¹ — browsing
/// PPW on this platform sits well inside `[0.05, 0.6]`.
const PPW_BINS: usize = 100;
const PPW_HI: f64 = 1.0;

/// The streamed aggregate of one governor's sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorSheet {
    /// Governor name (a [`crate::policy::Policy::name`]).
    pub governor: String,
    /// Sessions folded in.
    pub sessions: u64,
    /// Sessions whose load met the deadline.
    pub deadline_met: u64,
    /// Sessions censored at the timeout.
    pub timed_out: u64,
    /// DVFS transitions across all sessions.
    pub switches: u64,
    /// Load-time distribution (the deadline-hit CDF).
    pub load_time: FixedHistogram,
    /// Energy-efficiency (PPW) distribution.
    pub ppw: FixedHistogram,
    /// Total measured energy.
    pub energy: Joules,
    /// Sum over sessions of projected battery life at the session's
    /// sampled state of charge (hours).
    pub battery_hours_sum: f64,
}

impl GovernorSheet {
    /// An empty sheet for `governor`.
    ///
    /// # Panics
    ///
    /// Never: the histogram shapes are compile-time constants.
    #[allow(clippy::expect_used)]
    pub fn new(governor: &str) -> GovernorSheet {
        GovernorSheet {
            governor: governor.to_string(),
            sessions: 0,
            deadline_met: 0,
            timed_out: 0,
            switches: 0,
            load_time: FixedHistogram::new(LOAD_TIME_BINS, 0.0, LOAD_TIME_HI)
                .expect("constant shape is valid"),
            ppw: FixedHistogram::new(PPW_BINS, 0.0, PPW_HI).expect("constant shape is valid"),
            energy: Joules::ZERO,
            battery_hours_sum: 0.0,
        }
    }

    /// Folds one session's outcome in. `battery` is the session device's
    /// pack scaled to its sampled state of charge.
    pub fn record(&mut self, result: &RunResult, battery: WattHours) {
        self.sessions += 1;
        self.deadline_met += u64::from(result.met_deadline);
        self.timed_out += u64::from(result.timed_out);
        self.switches += result.switches;
        self.load_time.record(result.load_time.value());
        self.ppw.record(result.ppw.value());
        self.energy += result.energy;
        self.battery_hours_sum += battery.hours_at(result.mean_power);
    }

    /// Merges another sheet of the same governor into this one.
    ///
    /// # Errors
    ///
    /// [`SketchError::ShapeMismatch`] if the histogram shapes differ.
    ///
    /// # Panics
    ///
    /// Panics if the sheets aggregate different governors — shard sheets
    /// are built from one shared governor list, so this is a construction
    /// bug, not a data condition.
    pub fn merge(&mut self, other: &GovernorSheet) -> Result<(), SketchError> {
        assert_eq!(
            self.governor, other.governor,
            "sheets of different governors cannot merge"
        );
        self.load_time.merge(&other.load_time)?;
        self.ppw.merge(&other.ppw)?;
        self.sessions += other.sessions;
        self.deadline_met += other.deadline_met;
        self.timed_out += other.timed_out;
        self.switches += other.switches;
        self.energy += other.energy;
        // merge: shards fold in fixed shard-index order (FleetReport::merge
        // iterates sheets in governor order), so this addition sequence is
        // identical across --jobs 1/N/auto; byte-stability is pinned by the
        // golden fleet digest.
        self.battery_hours_sum += other.battery_hours_sum;
        Ok(())
    }

    /// Fraction of sessions that met the deadline.
    pub fn deadline_met_fraction(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.deadline_met as f64 / self.sessions as f64
        }
    }

    /// The deadline-hit CDF evaluated at `seconds`.
    pub fn load_time_cdf_at(&self, seconds: f64) -> f64 {
        self.load_time.cdf_at(seconds)
    }

    /// Mean projected battery life per session, in hours.
    pub fn mean_battery_hours(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.battery_hours_sum / self.sessions as f64
        }
    }

    /// Mean energy per session.
    pub fn mean_energy(&self) -> Joules {
        if self.sessions == 0 {
            Joules::ZERO
        } else {
            Joules::new(self.energy.value() / self.sessions as f64)
        }
    }

    fn digest_into(&self, digest: &mut Digest64) {
        digest.write_str(&self.governor);
        digest.write_u64(self.sessions);
        digest.write_u64(self.deadline_met);
        digest.write_u64(self.timed_out);
        digest.write_u64(self.switches);
        self.load_time.digest_into(digest);
        self.ppw.digest_into(digest);
        digest.write_f64(self.energy.value());
        digest.write_f64(self.battery_hours_sum);
    }
}

/// The merged outcome of a fleet run: one [`GovernorSheet`] per policy,
/// in the configured policy order (first policy = the baseline deltas
/// are quoted against).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Sessions aggregated (per governor).
    pub sessions: u64,
    /// The fleet seed.
    pub seed: u64,
    /// Shards merged into this report.
    pub shards: u64,
    sheets: Vec<GovernorSheet>,
}

impl FleetReport {
    /// An empty report carrying one sheet per governor name, in order.
    pub fn empty(seed: u64, governors: &[&str]) -> FleetReport {
        FleetReport {
            sessions: 0,
            seed,
            shards: 0,
            sheets: governors.iter().map(|g| GovernorSheet::new(g)).collect(),
        }
    }

    /// Per-governor sheets, in policy order.
    pub fn sheets(&self) -> &[GovernorSheet] {
        &self.sheets
    }

    /// Mutable sheets, for shard-local recording.
    pub(crate) fn sheets_mut(&mut self) -> &mut [GovernorSheet] {
        &mut self.sheets
    }

    /// The sheet of one governor.
    pub fn sheet(&self, governor: &str) -> Option<&GovernorSheet> {
        self.sheets.iter().find(|s| s.governor == governor)
    }

    /// Merges `other` (the next shard, in shard order) into this report.
    ///
    /// # Errors
    ///
    /// [`SketchError::ShapeMismatch`] if sketch shapes differ.
    ///
    /// # Panics
    ///
    /// Panics if the reports carry different governor lists or seeds —
    /// all shard reports are built by one fleet run, so a mismatch is a
    /// construction bug.
    pub fn merge(&mut self, other: &FleetReport) -> Result<(), SketchError> {
        assert_eq!(self.seed, other.seed, "reports of different fleets");
        assert_eq!(
            self.sheets.len(),
            other.sheets.len(),
            "reports of different governor lists"
        );
        for (mine, theirs) in self.sheets.iter_mut().zip(&other.sheets) {
            mine.merge(theirs)?;
        }
        self.sessions += other.sessions;
        self.shards += other.shards;
        Ok(())
    }

    /// Mean battery-life delta of `governor` against `baseline`, in
    /// hours per session (positive = `governor` lasts longer).
    pub fn battery_delta_hours(&self, governor: &str, baseline: &str) -> Option<f64> {
        let g = self.sheet(governor)?;
        let b = self.sheet(baseline)?;
        Some(g.mean_battery_hours() - b.mean_battery_hours())
    }

    /// An order-sensitive FNV-1a digest of every aggregate in the report.
    /// Two runs produce the same digest iff they folded the same sessions
    /// into the same sketches in the same merge order.
    pub fn digest(&self) -> u64 {
        let mut digest = Digest64::new();
        digest.write_str("fleet-v1");
        digest.write_u64(self.sessions);
        digest.write_u64(self.seed);
        digest.write_u64(self.shards);
        for sheet in &self.sheets {
            sheet.digest_into(&mut digest);
        }
        digest.finish()
    }

    /// Renders the per-governor comparison as an aligned text table with
    /// the digest trailer. The baseline row (first policy) anchors the
    /// battery-life delta column.
    pub fn render(&self, deadline: Seconds) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} sessions, seed {}, {} shards\n",
            self.sessions, self.seed, self.shards
        ));
        out.push_str(&format!(
            "{:<14} {:>8} {:>9} {:>9} {:>9} {:>11} {:>11} {:>11}\n",
            "governor", "met %", "p50 s", "p90 s", "mean PPW", "energy J", "battery h", "delta h"
        ));
        let baseline = self.sheets.first().map(GovernorSheet::mean_battery_hours);
        for sheet in &self.sheets {
            let delta = baseline.map_or(0.0, |b| sheet.mean_battery_hours() - b);
            out.push_str(&format!(
                "{:<14} {:>8.1} {:>9.3} {:>9.3} {:>9.4} {:>11.1} {:>11.2} {:>+11.2}\n",
                sheet.governor,
                sheet.load_time_cdf_at(deadline.value()) * 100.0,
                sheet.load_time.quantile(0.5),
                sheet.load_time.quantile(0.9),
                sheet.ppw.mean(),
                sheet.energy.value(),
                sheet.mean_battery_hours(),
                delta,
            ));
        }
        out.push_str(&format!("digest: {:016x}\n", self.digest()));
        out
    }

    /// Renders the same comparison as CSV (one row per governor).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "governor,sessions,met_fraction,timed_out,switches,\
             p50_load_s,p90_load_s,mean_ppw,energy_j,mean_battery_h,digest\n",
        );
        for sheet in &self.sheets {
            out.push_str(&format!(
                "{},{},{:.6},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:016x}\n",
                sheet.governor,
                sheet.sessions,
                sheet.deadline_met_fraction(),
                sheet.timed_out,
                sheet.switches,
                sheet.load_time.quantile(0.5),
                sheet.load_time.quantile(0.9),
                sheet.ppw.mean(),
                sheet.energy.value(),
                sheet.mean_battery_hours(),
                self.digest(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyName;
    use dora_coworkloads::Intensity;
    use dora_sim_core::units::{Celsius, Mpki, Ppw, Seconds, Utilization, Watts};
    use dora_soc::Frequency;

    fn result(load_s: f64, power_w: f64, met: bool) -> RunResult {
        let load_time = Seconds::new(load_s);
        let mean_power = Watts::new(power_w);
        RunResult {
            workload_id: "Amazon+bfs".into(),
            page: "Amazon".into(),
            kernel: "bfs".into(),
            intensity: Some(Intensity::Low),
            training: true,
            governor: PolicyName::from("interactive"),
            load_time,
            mean_power,
            energy: mean_power * load_time,
            ppw: Ppw::from_time_power(load_time, mean_power),
            met_deadline: met,
            timed_out: false,
            switches: 3,
            mean_frequency: Frequency::from_mhz(1190.4),
            final_temp: Celsius::new(45.0),
            mean_mpki: Mpki::clamped(3.0),
            corun_utilization: Utilization::clamped(0.5),
            corun_instructions: 1.0e9,
        }
    }

    #[test]
    fn record_accumulates_and_summarizes() {
        let mut sheet = GovernorSheet::new("interactive");
        sheet.record(&result(1.0, 2.0, true), WattHours::new(8.0));
        sheet.record(&result(5.0, 4.0, false), WattHours::new(8.0));
        assert_eq!(sheet.sessions, 2);
        assert_eq!(sheet.deadline_met, 1);
        assert_eq!(sheet.switches, 6);
        assert_eq!(sheet.deadline_met_fraction(), 0.5);
        assert_eq!(sheet.energy, Joules::new(1.0 * 2.0 + 5.0 * 4.0));
        // 8 Wh at 2 W = 4 h; at 4 W = 2 h; mean 3 h.
        assert!((sheet.mean_battery_hours() - 3.0).abs() < 1e-12);
        assert!(sheet.load_time_cdf_at(3.0) > 0.0);
    }

    #[test]
    fn shard_merge_equals_single_fold() {
        let sessions = [
            (0.8, 2.1, true),
            (2.9, 3.0, true),
            (4.4, 3.8, false),
            (1.7, 2.6, true),
            (6.2, 4.1, false),
        ];
        let mut whole = FleetReport::empty(9, &["interactive", "DORA"]);
        whole.sessions = sessions.len() as u64;
        whole.shards = 1;
        for &(t, p, met) in &sessions {
            for sheet in whole.sheets_mut() {
                sheet.record(&result(t, p, met), WattHours::new(8.74));
            }
        }
        let mut merged = FleetReport::empty(9, &["interactive", "DORA"]);
        for chunk in sessions.chunks(2) {
            let mut shard = FleetReport::empty(9, &["interactive", "DORA"]);
            shard.sessions = chunk.len() as u64;
            shard.shards = 1;
            for &(t, p, met) in chunk {
                for sheet in shard.sheets_mut() {
                    sheet.record(&result(t, p, met), WattHours::new(8.74));
                }
            }
            merged.merge(&shard).expect("same shapes");
        }
        assert_eq!(merged.sessions, whole.sessions);
        assert_eq!(merged.sheets(), whole.sheets());
        // Shard count differs (3 vs 1) and is part of the digest; zero it
        // out to compare the aggregates themselves.
        let mut merged_one = merged.clone();
        merged_one.shards = whole.shards;
        assert_eq!(merged_one.digest(), whole.digest());
    }

    #[test]
    fn digest_separates_different_fleets() {
        let mut a = FleetReport::empty(1, &["interactive"]);
        let mut b = FleetReport::empty(1, &["interactive"]);
        assert_eq!(a.digest(), b.digest());
        a.sheets_mut()[0].record(&result(1.0, 2.0, true), WattHours::new(8.74));
        a.sessions = 1;
        b.sheets_mut()[0].record(&result(1.0, 2.5, true), WattHours::new(8.74));
        b.sessions = 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn battery_delta_is_signed_difference() {
        let mut report = FleetReport::empty(0, &["interactive", "DORA"]);
        report.sheets_mut()[0].record(&result(2.0, 4.0, true), WattHours::new(8.0)); // 2 h
        report.sheets_mut()[1].record(&result(2.0, 2.0, true), WattHours::new(8.0)); // 4 h
        let delta = report
            .battery_delta_hours("DORA", "interactive")
            .expect("both present");
        assert!((delta - 2.0).abs() < 1e-12);
        assert!(report.battery_delta_hours("EE", "interactive").is_none());
    }

    #[test]
    fn render_and_csv_name_every_governor() {
        let mut report = FleetReport::empty(3, &["interactive", "DORA"]);
        for sheet in report.sheets_mut() {
            sheet.record(&result(1.5, 2.5, true), WattHours::new(8.74));
        }
        report.sessions = 1;
        report.shards = 1;
        let text = report.render(Seconds::new(3.0));
        let csv = report.to_csv();
        for g in ["interactive", "DORA"] {
            assert!(text.contains(g), "{text}");
            assert!(csv.contains(g), "{csv}");
        }
        assert!(text.contains(&format!("{:016x}", report.digest())));
        assert_eq!(csv.lines().count(), 3);
    }
}
