//! Fleet-scale simulation: millions of device sessions, streamed.
//!
//! Where [`crate::driver::CampaignDriver::evaluate`] answers "how do
//! these governors compare on the paper's 54 workloads", the fleet layer
//! answers the deployment question: across a *population* of devices —
//! mixed hardware tiers, ambient temperatures, battery states, page and
//! co-runner mixes — how much battery life does each governor buy?
//!
//! Three design rules keep that tractable at 10⁴–10⁶ sessions:
//!
//! 1. **Streaming aggregation.** No per-session results are kept. Each
//!    shard of sessions folds into mergeable sketches
//!    ([`report::GovernorSheet`]), so memory is O(shards), not
//!    O(sessions).
//! 2. **Warm once per archetype.** The thermal warm-up is driven by a
//!    pinned governor ([`WarmupPolicy::Pinned`]) with no co-runner, so
//!    the prefix is archetype-invariant: it is simulated once per
//!    [`DeviceArchetype`], snapshotted, and every session forks the
//!    snapshot before attaching its own sampled co-runner and page.
//! 3. **Fixed merge order.** Sessions are sampled independently by
//!    global index, grouped into shards by index, and shard reports are
//!    folded left-to-right in shard order. The executor reassembles
//!    results in input order, so the merged report — including every
//!    floating-point sum — is byte-identical at any `--jobs` width.
//!
//! The layer is deliberately consumable by future online-learning
//! telemetry: sheets are plain mergeable sketches, and
//! [`report::FleetReport::digest`] gives a cheap fingerprint for
//! cross-run comparison.

pub mod archetype;
pub mod report;
pub mod sampler;

pub use archetype::{DeviceArchetype, DeviceClass};
pub use report::{FleetReport, GovernorSheet};
pub use sampler::{SessionSampler, SessionSpec};

use crate::evaluate::{make_governor, EvaluateError};
use crate::executor::Executor;
use crate::policy::Policy;
use crate::runner::{
    measured_load, oracle_impl, warmed_board, OracleFrequencies, ScenarioConfig, WarmupPolicy,
    CORUN_CORE,
};
use dora::DoraModels;
use dora_governors::PinnedGovernor;
use dora_sim_core::sketch::SketchError;
use dora_sim_core::units::Seconds;
use dora_sim_core::SimDuration;
use dora_soc::board::Board;
use dora_soc::Frequency;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Device sessions to simulate.
    pub sessions: u64,
    /// Fleet seed: fixes the sampled population and every session's
    /// jitter.
    pub seed: u64,
    /// Sessions per shard (the unit of work distribution and of
    /// aggregation memory).
    pub shard_size: u64,
    /// Governors to compare; the first is the baseline deltas are quoted
    /// against.
    pub policies: Vec<Policy>,
    /// The device population.
    pub archetypes: Vec<DeviceArchetype>,
    /// QoS deadline for the met/missed verdict.
    pub deadline: Seconds,
    /// Thermal warm-up simulated once per archetype.
    pub warmup: SimDuration,
    /// The pinned frequency driving that warm-up.
    pub warmup_pin: Frequency,
    /// Per-session load timeout.
    pub timeout: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sessions: 1000,
            seed: 42,
            shard_size: 256,
            policies: vec![Policy::Interactive, Policy::Performance],
            archetypes: DeviceArchetype::default_population(),
            deadline: Seconds::new(3.0),
            warmup: SimDuration::from_secs(20),
            warmup_pin: Frequency::from_mhz(1190.4),
            timeout: SimDuration::from_secs(60),
        }
    }
}

/// Fleet-run failures.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A DORA-family policy was requested without trained models.
    ModelsRequired(&'static str),
    /// The policy list was empty.
    NoPolicies,
    /// A warmed-archetype snapshot failed to restore onto a session
    /// board (structural mismatch).
    Snapshot(String),
    /// A session board rejected the sampled co-runner assignment.
    Assign(String),
    /// Sketch shapes diverged during the shard merge.
    Sketch(SketchError),
    /// The fleet warm-up must be pinned (fork-at-warmup requires a
    /// governor-independent prefix); a `Measured` override was supplied.
    MeasuredWarmup,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::ModelsRequired(name) => {
                write!(f, "policy {name} requires trained DORA models")
            }
            FleetError::NoPolicies => write!(f, "fleet needs at least one policy"),
            FleetError::Snapshot(e) => write!(f, "archetype snapshot fork failed: {e}"),
            FleetError::Assign(e) => write!(f, "co-runner assignment failed: {e}"),
            FleetError::Sketch(e) => write!(f, "shard merge failed: {e}"),
            FleetError::MeasuredWarmup => {
                write!(f, "fleet warm-up must be pinned, not governor-measured")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<SketchError> for FleetError {
    fn from(e: SketchError) -> FleetError {
        FleetError::Sketch(e)
    }
}

impl From<EvaluateError> for FleetError {
    fn from(e: EvaluateError) -> FleetError {
        match e {
            EvaluateError::ModelsRequired(name) | EvaluateError::MissingOracle(name) => {
                FleetError::ModelsRequired(name)
            }
        }
    }
}

/// The base scenario of one archetype (fleet seed; per-session runs
/// derive from it with the session's own seed). The warm-up pin is
/// snapped to the archetype's own primary-cluster table, so one fleet
/// config can span SoC profiles whose OPP grids differ (the default
/// 1190.4 MHz pin is already on the MSM8974 grid, so the snap is a
/// no-op there).
fn archetype_scenario(config: &FleetConfig, archetype: &DeviceArchetype) -> ScenarioConfig {
    ScenarioConfig::builder()
        .seed(config.seed)
        .board(archetype.board.clone())
        .deadline(config.deadline)
        .warmup(config.warmup)
        .warmup_policy(WarmupPolicy::Pinned(
            archetype.board.dvfs.nearest(config.warmup_pin),
        ))
        .timeout(config.timeout)
        .build()
}

/// The oracle table: `fopt`/`fd`/`fe` per (archetype index, workload id),
/// computed at the fleet seed. Sessions jitter around that seed, so the
/// table plays the role it would in deployment — an offline lookup, not a
/// per-session re-enumeration. Sweeps are dropped after the verdicts are
/// extracted to keep the table O(combinations).
fn oracle_table(
    config: &FleetConfig,
    sampler: &SessionSampler,
    scenarios: &[ScenarioConfig],
    executor: &Executor,
) -> Vec<BTreeMap<String, OracleFrequencies>> {
    // Distinct (archetype, workload) combinations actually sampled. The
    // scan is O(sessions) time but O(combinations) memory, and stops
    // early once the pool is saturated.
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut combos: Vec<(usize, crate::workload::Workload)> = Vec::new();
    let saturated = sampler.archetypes().len() * sampler.workload_pool().len();
    for index in 0..config.sessions {
        let spec = sampler.sample(config.seed, index);
        if seen.insert((spec.archetype, spec.workload.id())) {
            combos.push((spec.archetype, spec.workload));
        }
        if combos.len() == saturated {
            break;
        }
    }
    let verdicts = executor.map(&combos, |(archetype, workload)| {
        let mut o = oracle_impl(workload, &scenarios[*archetype], &Executor::sequential());
        o.sweep.clear();
        o
    });
    let mut table: Vec<BTreeMap<String, OracleFrequencies>> =
        vec![BTreeMap::new(); sampler.archetypes().len()];
    for ((archetype, workload), verdict) in combos.into_iter().zip(verdicts) {
        table[archetype].insert(workload.id(), verdict);
    }
    table
}

/// Runs the fleet. Called through
/// [`crate::driver::CampaignDriver::fleet`], which owns the executor and
/// warm-up override.
pub(crate) fn run_fleet(
    config: &FleetConfig,
    models: Option<&DoraModels>,
    executor: &Executor,
) -> Result<FleetReport, FleetError> {
    if config.policies.is_empty() {
        return Err(FleetError::NoPolicies);
    }
    for policy in &config.policies {
        if policy.needs_models() && models.is_none() {
            return Err(FleetError::ModelsRequired(policy.name()));
        }
    }
    let sampler = SessionSampler::new(config.archetypes.clone());
    let scenarios: Vec<ScenarioConfig> = sampler
        .archetypes()
        .iter()
        .map(|a| archetype_scenario(config, a))
        .collect();

    // Phase 1 — one warm board per archetype, snapshotted. No co-runner
    // participates, so the prefix is shared by every session of the
    // archetype regardless of its sampled kernel.
    let snapshots: Vec<dora_soc::BoardSnapshot> = executor.map(&scenarios, |scenario| {
        let WarmupPolicy::Pinned(pin_f) = scenario.warmup_policy else {
            unreachable!("archetype_scenario always pins the warm-up");
        };
        let mut pin = PinnedGovernor::new("warmup-pin", pin_f);
        warmed_board(None, &mut pin, scenario).snapshot()
    });

    // Phase 2 — the offline oracle table, only when a pinned-oracle
    // policy is in the comparison.
    let oracles = if config.policies.iter().any(|p| p.needs_oracle()) {
        oracle_table(config, &sampler, &scenarios, executor)
    } else {
        vec![BTreeMap::new(); sampler.archetypes().len()]
    };

    // Phase 3 — shards. Each shard streams its sessions into a local
    // report; the executor returns shard reports in shard-index order.
    let governor_names: Vec<&str> = config.policies.iter().map(|p| p.name()).collect();
    let shard_size = config.shard_size.max(1);
    let shards: Vec<(u64, u64)> = (0..config.sessions)
        .step_by(usize::try_from(shard_size).unwrap_or(usize::MAX))
        .map(|start| (start, (start + shard_size).min(config.sessions)))
        .collect();
    let shard_reports = executor.try_map(
        &shards,
        |&(start, end)| -> Result<FleetReport, FleetError> {
            let mut report = FleetReport::empty(config.seed, &governor_names);
            report.shards = 1;
            for index in start..end {
                let spec = sampler.sample(config.seed, index);
                let archetype = &sampler.archetypes()[spec.archetype];
                let scenario = scenarios[spec.archetype]
                    .to_builder()
                    .seed(spec.seed)
                    .build();
                let oracle = oracles[spec.archetype].get(&spec.workload.id());
                let battery = archetype.battery.at_charge(spec.charge);
                for (sheet, policy) in report.sheets_mut().iter_mut().zip(&config.policies) {
                    let mut governor =
                        make_governor(*policy, &spec.workload, models, oracle, &scenario)?;
                    let mut board = Board::new(archetype.board.clone(), config.seed);
                    board
                        .restore(&snapshots[spec.archetype])
                        .map_err(|e| FleetError::Snapshot(e.to_string()))?;
                    board
                        .assign(CORUN_CORE, Box::new(spec.workload.kernel.spawn(spec.seed)))
                        .map_err(|e| FleetError::Assign(e.to_string()))?;
                    let result = measured_load(
                        &mut board,
                        &spec.workload.page,
                        Some(&spec.workload.kernel),
                        governor.as_mut(),
                        &scenario,
                    );
                    sheet.record(&result, battery);
                }
                report.sessions += 1;
            }
            Ok(report)
        },
    )?;

    // Phase 4 — the deterministic left fold, in shard-index order.
    let mut merged = FleetReport::empty(config.seed, &governor_names);
    for shard in &shard_reports {
        merged.merge(shard)?;
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CampaignDriver;
    use crate::executor::Parallelism;

    fn tiny_config() -> FleetConfig {
        FleetConfig {
            sessions: 12,
            shard_size: 5,
            warmup: SimDuration::from_secs(2),
            archetypes: vec![
                DeviceArchetype::new(
                    DeviceClass::Mainstream,
                    dora_sim_core::units::Celsius::new(25.0),
                    0.7,
                ),
                DeviceArchetype::new(
                    DeviceClass::Budget,
                    dora_sim_core::units::Celsius::new(35.0),
                    0.3,
                ),
            ],
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_streams_and_reports_per_governor() {
        let report = CampaignDriver::new()
            .fleet(&tiny_config(), None)
            .expect("baseline policies need no models");
        assert_eq!(report.sessions, 12);
        assert_eq!(report.shards, 3, "ceil(12 / 5)");
        let interactive = report.sheet("interactive").expect("baseline present");
        assert_eq!(interactive.sessions, 12);
        assert!(interactive.mean_battery_hours() > 0.0);
        let perf = report.sheet("performance").expect("present");
        assert_eq!(perf.sessions, 12);
        let delta = report
            .battery_delta_hours("performance", "interactive")
            .expect("both ran");
        assert_eq!(
            delta,
            perf.mean_battery_hours() - interactive.mean_battery_hours()
        );
    }

    #[test]
    fn fleet_is_bit_identical_across_widths() {
        let config = tiny_config();
        let sequential = CampaignDriver::new().fleet(&config, None).expect("runs");
        let parallel = CampaignDriver::new()
            .executor(Executor::new(Parallelism::Fixed(4)))
            .fleet(&config, None)
            .expect("runs");
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.digest(), parallel.digest());
    }

    #[test]
    fn shard_size_does_not_change_sessions_only_grouping() {
        let mut a = tiny_config();
        a.shard_size = 3;
        let mut b = tiny_config();
        b.shard_size = 12;
        let ra = CampaignDriver::new().fleet(&a, None).expect("runs");
        let rb = CampaignDriver::new().fleet(&b, None).expect("runs");
        // Shard layout is part of the merge-order contract, so float
        // partial sums may differ in the last ULP between layouts — only
        // the fixed layout is byte-stable. Everything discrete must
        // match exactly, and the sums to near machine precision.
        for (sa, sb) in ra.sheets().iter().zip(rb.sheets()) {
            assert_eq!(sa.governor, sb.governor);
            assert_eq!(sa.sessions, sb.sessions);
            assert_eq!(sa.deadline_met, sb.deadline_met);
            assert_eq!(sa.switches, sb.switches);
            assert_eq!(sa.load_time.bin_counts(), sb.load_time.bin_counts());
            assert_eq!(sa.ppw.bin_counts(), sb.ppw.bin_counts());
            let rel =
                (sa.mean_battery_hours() - sb.mean_battery_hours()).abs() / sa.mean_battery_hours();
            assert!(rel < 1e-12, "battery sums drifted: {rel}");
        }
    }

    #[test]
    fn oracle_policy_runs_from_the_precomputed_table() {
        let mut config = tiny_config();
        config.sessions = 4;
        config.policies = vec![Policy::Interactive, Policy::OfflineOpt];
        let report = CampaignDriver::new().fleet(&config, None).expect("runs");
        let oracle = report.sheet("offline_opt").expect("present");
        assert_eq!(oracle.sessions, 4);
        // The offline oracle maximizes feasible PPW; its mean PPW must
        // at least match the interactive baseline's.
        let interactive = report.sheet("interactive").expect("present");
        assert!(oracle.ppw.mean() >= interactive.ppw.mean() * 0.98);
    }

    #[test]
    fn models_are_validated_up_front() {
        let mut config = tiny_config();
        config.policies = vec![Policy::Dora];
        let err = CampaignDriver::new().fleet(&config, None).unwrap_err();
        assert_eq!(err, FleetError::ModelsRequired("DORA"));
        assert!(err.to_string().contains("DORA"));
    }

    #[test]
    fn empty_policy_list_is_rejected() {
        let mut config = tiny_config();
        config.policies.clear();
        assert_eq!(
            CampaignDriver::new().fleet(&config, None).unwrap_err(),
            FleetError::NoPolicies
        );
    }
}
