//! Device-class archetypes: the hardware population of a fleet.
//!
//! A fleet is not one phone — it is a weighted population of device
//! classes sitting in different thermal environments. Each
//! [`DeviceArchetype`] pins down one (class, ambient) cell of that
//! population: a board configuration, a battery pack, and the share of
//! sessions it contributes. Archetypes are what the fleet warms once and
//! snapshots — every session of an archetype forks the same warmed board,
//! so the archetype count (not the session count) bounds warm-up cost.

use dora_sim_core::units::{Celsius, WattHours};
use dora_soc::board::BoardConfig;

/// A hardware tier of the fleet population.
///
/// All tiers share the MSM8974 DVFS table (so board snapshots stay
/// structurally compatible and DORA's models transfer); they differ in
/// chassis thermals and battery capacity, the two knobs that move
/// battery-life and throttling behaviour without retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Large chassis, good heat spreading, big battery.
    Flagship,
    /// The paper's Nexus 5 itself.
    Mainstream,
    /// Cramped chassis (higher junction-to-ambient resistance), small
    /// battery.
    Budget,
}

impl DeviceClass {
    /// Every class, in tier order.
    pub const ALL: [DeviceClass; 3] = [
        DeviceClass::Flagship,
        DeviceClass::Mainstream,
        DeviceClass::Budget,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Flagship => "flagship",
            DeviceClass::Mainstream => "mainstream",
            DeviceClass::Budget => "budget",
        }
    }

    /// The class's battery pack.
    pub fn battery(self) -> WattHours {
        match self {
            DeviceClass::Flagship => WattHours::new(11.55),
            // 2300 mAh at 3.8 V — the Nexus 5 pack.
            DeviceClass::Mainstream => WattHours::new(8.74),
            DeviceClass::Budget => WattHours::new(7.22),
        }
    }

    /// The class's board at room ambient.
    pub fn board(self) -> BoardConfig {
        let mut board = BoardConfig::nexus5();
        // Chassis quality scales the junction-to-ambient resistance: a
        // budget phone runs the same silicon hotter at the same power.
        board.thermal.resistance_k_per_w *= match self {
            DeviceClass::Flagship => 0.85,
            DeviceClass::Mainstream => 1.0,
            DeviceClass::Budget => 1.25,
        };
        board
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell of the fleet population: a device class at an ambient
/// temperature, holding a share of the fleet's sessions.
#[derive(Debug, Clone)]
pub struct DeviceArchetype {
    /// Stable label, e.g. `budget@35C`.
    pub name: String,
    /// The hardware tier.
    pub class: DeviceClass,
    /// The board configuration (class board re-anchored at the ambient).
    pub board: BoardConfig,
    /// The battery pack.
    pub battery: WattHours,
    /// Relative population weight (any positive scale; normalized when
    /// sampling).
    pub weight: f64,
}

impl DeviceArchetype {
    /// Builds the archetype for `class` sitting at `ambient`.
    pub fn new(class: DeviceClass, ambient: Celsius, weight: f64) -> DeviceArchetype {
        DeviceArchetype {
            name: format!("{}@{:.0}C", class.name(), ambient.value()),
            class,
            board: class.board().with_ambient(ambient),
            battery: class.battery(),
            weight,
        }
    }

    /// The default population: three tiers across room, cold and hot
    /// ambients, weighted toward mainstream devices indoors.
    pub fn default_population() -> Vec<DeviceArchetype> {
        vec![
            DeviceArchetype::new(DeviceClass::Flagship, Celsius::new(25.0), 0.20),
            DeviceArchetype::new(DeviceClass::Mainstream, Celsius::new(25.0), 0.35),
            DeviceArchetype::new(DeviceClass::Mainstream, Celsius::new(10.0), 0.15),
            DeviceArchetype::new(DeviceClass::Budget, Celsius::new(25.0), 0.20),
            DeviceArchetype::new(DeviceClass::Budget, Celsius::new(35.0), 0.10),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_share_the_dvfs_table() {
        let reference = BoardConfig::nexus5();
        for class in DeviceClass::ALL {
            let board = class.board();
            assert_eq!(board.dvfs.len(), reference.dvfs.len(), "{class}");
            assert_eq!(board.num_cores, reference.num_cores, "{class}");
            board.validate().expect("class boards must validate");
        }
    }

    #[test]
    fn ambient_reanchors_the_thermal_node() {
        let hot = DeviceArchetype::new(DeviceClass::Budget, Celsius::new(35.0), 1.0);
        assert_eq!(hot.board.thermal.ambient, Celsius::new(35.0));
        assert_eq!(hot.name, "budget@35C");
        hot.board
            .validate()
            .expect("ambient within plausible range");
    }

    #[test]
    fn default_population_weights_are_normalizable() {
        let population = DeviceArchetype::default_population();
        let total: f64 = population.iter().map(|a| a.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(population.iter().all(|a| a.weight > 0.0));
    }

    #[test]
    fn batteries_order_by_tier() {
        assert!(DeviceClass::Flagship.battery() > DeviceClass::Mainstream.battery());
        assert!(DeviceClass::Mainstream.battery() > DeviceClass::Budget.battery());
    }
}
