//! Device-class archetypes: the hardware population of a fleet.
//!
//! A fleet is not one phone — it is a weighted population of device
//! classes sitting in different thermal environments. Each
//! [`DeviceArchetype`] pins down one (class, ambient) cell of that
//! population: a board configuration, a battery pack, and the share of
//! sessions it contributes. Archetypes are what the fleet warms once and
//! snapshots — every session of an archetype forks the same warmed board,
//! so the archetype count (not the session count) bounds warm-up cost.

use dora_sim_core::units::{Celsius, WattHours};
use dora_soc::board::BoardConfig;
use dora_soc::SocProfile;

/// A hardware tier of the fleet population.
///
/// All tiers of one population share a [`SocProfile`] (so board
/// snapshots stay structurally compatible and DORA's models transfer);
/// they differ in chassis thermals and battery capacity, the two knobs
/// that move battery-life and throttling behaviour without retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Large chassis, good heat spreading, big battery.
    Flagship,
    /// The paper's Nexus 5 itself.
    Mainstream,
    /// Cramped chassis (higher junction-to-ambient resistance), small
    /// battery.
    Budget,
}

impl DeviceClass {
    /// Every class, in tier order.
    pub const ALL: [DeviceClass; 3] = [
        DeviceClass::Flagship,
        DeviceClass::Mainstream,
        DeviceClass::Budget,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Flagship => "flagship",
            DeviceClass::Mainstream => "mainstream",
            DeviceClass::Budget => "budget",
        }
    }

    /// The class's battery pack.
    pub fn battery(self) -> WattHours {
        match self {
            DeviceClass::Flagship => WattHours::new(11.55),
            // 2300 mAh at 3.8 V — the Nexus 5 pack.
            DeviceClass::Mainstream => WattHours::new(8.74),
            DeviceClass::Budget => WattHours::new(7.22),
        }
    }

    /// The class's board at room ambient, on the paper's MSM8974.
    pub fn board(self) -> BoardConfig {
        self.board_for(&SocProfile::msm8974())
    }

    /// The class's board at room ambient, on an arbitrary SoC profile.
    pub fn board_for(self, profile: &SocProfile) -> BoardConfig {
        let mut board = profile.board_config();
        // Chassis quality scales the junction-to-ambient resistance: a
        // budget phone runs the same silicon hotter at the same power.
        board.thermal.resistance_k_per_w *= match self {
            DeviceClass::Flagship => 0.85,
            DeviceClass::Mainstream => 1.0,
            DeviceClass::Budget => 1.25,
        };
        board
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell of the fleet population: a device class at an ambient
/// temperature, holding a share of the fleet's sessions.
#[derive(Debug, Clone)]
pub struct DeviceArchetype {
    /// Stable label, e.g. `budget@35C` (profile-prefixed off the default
    /// SoC, e.g. `biglittle-a15a7/budget@35C`).
    pub name: String,
    /// The hardware tier.
    pub class: DeviceClass,
    /// Name of the [`SocProfile`] the board was built from.
    pub soc: String,
    /// The board configuration (class board re-anchored at the ambient).
    pub board: BoardConfig,
    /// The battery pack.
    pub battery: WattHours,
    /// Relative population weight (any positive scale; normalized when
    /// sampling).
    pub weight: f64,
}

impl DeviceArchetype {
    /// Builds the archetype for `class` sitting at `ambient`, on the
    /// paper's MSM8974.
    pub fn new(class: DeviceClass, ambient: Celsius, weight: f64) -> DeviceArchetype {
        DeviceArchetype::with_profile(class, &SocProfile::msm8974(), ambient, weight)
    }

    /// Builds the archetype for `class` sitting at `ambient`, on an
    /// arbitrary SoC profile. The default profile keeps the historical
    /// unprefixed label so existing fleet digests are unchanged.
    pub fn with_profile(
        class: DeviceClass,
        profile: &SocProfile,
        ambient: Celsius,
        weight: f64,
    ) -> DeviceArchetype {
        let label = format!("{}@{:.0}C", class.name(), ambient.value());
        let name = if profile.name() == SocProfile::msm8974().name() {
            label
        } else {
            format!("{}/{}", profile.name(), label)
        };
        DeviceArchetype {
            name,
            class,
            soc: profile.name().to_string(),
            board: class.board_for(profile).with_ambient(ambient),
            battery: class.battery(),
            weight,
        }
    }

    /// The default population: three tiers across room, cold and hot
    /// ambients, weighted toward mainstream devices indoors.
    pub fn default_population() -> Vec<DeviceArchetype> {
        DeviceArchetype::population_for(&SocProfile::msm8974())
    }

    /// The default tier/ambient/weight mix on an arbitrary SoC profile;
    /// `population_for(&SocProfile::msm8974())` is byte-identical to the
    /// historical [`DeviceArchetype::default_population`].
    pub fn population_for(profile: &SocProfile) -> Vec<DeviceArchetype> {
        vec![
            DeviceArchetype::with_profile(DeviceClass::Flagship, profile, Celsius::new(25.0), 0.20),
            DeviceArchetype::with_profile(
                DeviceClass::Mainstream,
                profile,
                Celsius::new(25.0),
                0.35,
            ),
            DeviceArchetype::with_profile(
                DeviceClass::Mainstream,
                profile,
                Celsius::new(10.0),
                0.15,
            ),
            DeviceArchetype::with_profile(DeviceClass::Budget, profile, Celsius::new(25.0), 0.20),
            DeviceArchetype::with_profile(DeviceClass::Budget, profile, Celsius::new(35.0), 0.10),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_share_the_dvfs_table() {
        let reference = SocProfile::msm8974().board_config();
        for class in DeviceClass::ALL {
            let board = class.board();
            assert_eq!(board.dvfs.len(), reference.dvfs.len(), "{class}");
            assert_eq!(board.num_cores, reference.num_cores, "{class}");
            board.validate().expect("class boards must validate");
        }
    }

    #[test]
    fn biglittle_population_is_the_same_mix_on_two_clusters() {
        let profile = SocProfile::biglittle_a15a7();
        let population = DeviceArchetype::population_for(&profile);
        let default = DeviceArchetype::default_population();
        assert_eq!(population.len(), default.len());
        for (bl, msm) in population.iter().zip(&default) {
            assert_eq!(bl.name, format!("biglittle-a15a7/{}", msm.name));
            assert_eq!(bl.soc, "biglittle-a15a7");
            assert_eq!(bl.class, msm.class);
            assert_eq!(bl.weight, msm.weight);
            assert_eq!(bl.battery, msm.battery);
            assert_eq!(bl.board.clusters.len(), 2, "{}", bl.name);
            bl.board.validate().expect("big.LITTLE boards validate");
        }
    }

    #[test]
    fn default_population_is_byte_stable_under_profile_parameterization() {
        let explicit = DeviceArchetype::population_for(&SocProfile::msm8974());
        let default = DeviceArchetype::default_population();
        for (a, b) in explicit.iter().zip(&default) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.soc, "msm8974");
            assert_eq!(a.board.dvfs.len(), b.board.dvfs.len());
        }
    }

    #[test]
    fn ambient_reanchors_the_thermal_node() {
        let hot = DeviceArchetype::new(DeviceClass::Budget, Celsius::new(35.0), 1.0);
        assert_eq!(hot.board.thermal.ambient, Celsius::new(35.0));
        assert_eq!(hot.name, "budget@35C");
        hot.board
            .validate()
            .expect("ambient within plausible range");
    }

    #[test]
    fn default_population_weights_are_normalizable() {
        let population = DeviceArchetype::default_population();
        let total: f64 = population.iter().map(|a| a.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(population.iter().all(|a| a.weight > 0.0));
    }

    #[test]
    fn batteries_order_by_tier() {
        assert!(DeviceClass::Flagship.battery() > DeviceClass::Mainstream.battery());
        assert!(DeviceClass::Mainstream.battery() > DeviceClass::Budget.battery());
    }
}
