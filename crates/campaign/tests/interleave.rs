//! Model-check suite for the campaign executor.
//!
//! Compiled only under `--cfg interleave`, when [`dora_campaign`]'s sync
//! facade resolves to the model checker's primitives:
//!
//! ```text
//! RUSTFLAGS="--cfg interleave" cargo test -p dora-campaign --test interleave
//! ```
//!
//! Each test wraps an executor call in [`interleave::check`], so its
//! assertions run under **every** interleaving of the worker threads up
//! to the preemption bound — the bit-identical-to-sequential guarantee
//! becomes a proved property of the cursor protocol instead of an
//! observation about whichever schedules the OS produced.
#![cfg(interleave)]

use dora_campaign::executor::{Executor, Parallelism};
use std::panic::{catch_unwind, AssertUnwindSafe};
// Instrumentation inside worker closures uses *std* atomics on purpose:
// model execution is serialized, so they are exact counters that add no
// scheduling points and keep the explored state space small.
use std::sync::atomic::{AtomicUsize, Ordering};

/// `map` returns input-ordered results and runs the closure exactly
/// once per item, under every explored schedule — and the exploration
/// visits more than one schedule, so the guarantee is non-vacuous.
#[test]
fn map_is_exactly_once_and_input_ordered_under_every_schedule() {
    let report = interleave::check(2, || {
        let items: Vec<usize> = vec![0, 1, 2];
        let calls: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        let results = Executor::new(Parallelism::Fixed(2)).map(&items, |&x| {
            calls[x].fetch_add(1, Ordering::SeqCst);
            x * 10
        });
        assert_eq!(results, vec![0, 10, 20], "input order");
        for (idx, count) in calls.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "item {idx} ran exactly once"
            );
        }
    });
    assert!(
        report.schedules > 1,
        "two workers over three items must interleave in more than one way, got {report:?}"
    );
}

/// `try_map` reports the smallest erroring index under every schedule,
/// even though a later error may race it to the stop flag.
#[test]
fn try_map_error_is_deterministic_under_every_schedule() {
    interleave::check(2, || {
        let items: Vec<usize> = vec![0, 1, 2];
        let result = Executor::new(Parallelism::Fixed(2)).try_map(&items, |&x| {
            if x == 0 {
                Ok(x)
            } else {
                Err(x)
            }
        });
        assert_eq!(
            result,
            Err(1),
            "smallest erroring index wins on every schedule"
        );
    });
}

/// `try_map` without errors matches the sequential loop under every
/// schedule.
#[test]
fn try_map_ok_matches_sequential_under_every_schedule() {
    interleave::check(2, || {
        let items: Vec<usize> = vec![0, 1, 2];
        let result = Executor::new(Parallelism::Fixed(2)).try_map(&items, |&x| Ok::<_, ()>(x + 1));
        assert_eq!(result, Ok(vec![1, 2, 3]));
    });
}

/// A worker panic reaches the caller under every explored schedule.
#[test]
fn worker_panics_propagate_under_every_schedule() {
    interleave::check(2, || {
        let items: Vec<usize> = vec![0, 1, 2];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            Executor::new(Parallelism::Fixed(2)).map(&items, |&x| {
                assert!(x != 1, "boom");
                x
            })
        }));
        assert!(caught.is_err(), "the worker panic must reach the caller");
    });
}

/// The protocol the executor deliberately does *not* use: claiming work
/// with a load-then-store instead of `fetch_add`. The checker finds the
/// double-claim schedule and hands back its step trace — the regression
/// test for why the cursor must be a read-modify-write.
#[test]
fn racy_load_store_cursor_is_caught_with_a_trace() {
    use interleave::sync::atomic::{AtomicUsize as ModelUsize, Ordering as ModelOrdering};

    let failure = interleave::check_result(2, || {
        let items = 2usize;
        let cursor = ModelUsize::new(0);
        let claimed: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        interleave::thread::scope(|s| {
            let claim = || loop {
                // The bug under test: not atomic, so two threads can
                // read the same cursor value and claim the same index.
                let idx = cursor.load(ModelOrdering::SeqCst);
                if idx >= items {
                    break;
                }
                cursor.store(idx + 1, ModelOrdering::SeqCst);
                claimed[idx].fetch_add(1, Ordering::SeqCst);
            };
            let h = s.spawn(claim);
            claim();
            h.join().expect("no panic");
        });
        for (idx, count) in claimed.iter().enumerate() {
            assert!(
                count.load(Ordering::SeqCst) <= 1,
                "index {idx} claimed twice"
            );
        }
    })
    .expect_err("the load/store claim must double-claim under some schedule");

    assert!(failure.message.contains("claimed twice"), "{failure}");
    let rendered = failure.to_string();
    assert!(
        rendered.contains("AtomicUsize::load") && rendered.contains("AtomicUsize::store"),
        "the trace names the racing operations:\n{rendered}"
    );
}
