//! Model-checked drop-ins for the `std::sync` primitives the campaign
//! executor uses.
//!
//! Each type mirrors the `std` API shape exactly (so a facade module can
//! swap it in with a `use` flip) and carries the same data semantics,
//! but every operation first yields to the active [`crate::check`]
//! scheduler, turning it into an explorable interleaving point. Outside
//! a `check` run the types degrade to thin wrappers over their `std`
//! counterparts, so code compiled with `--cfg interleave` still runs
//! normally in ordinary tests.
//!
//! Modeling scope: the checker explores *interleavings* under sequential
//! consistency. Weak-memory reorderings permitted by `Relaxed`/`Acquire`
//! /`Release` are **not** modeled — orderings are forwarded to the inner
//! `std` atomic (preserving std's invalid-ordering panics) but add no
//! extra behaviors. See DESIGN.md §9 for the consequences.

use crate::scheduler::{self, Status};

pub use std::sync::{LockResult, PoisonError, TryLockError};

/// Yields to the scheduler at one named operation, when a check is
/// active on this thread.
fn yield_op(op: &str) {
    if let Some((exec, me)) = scheduler::current() {
        exec.switch(me, op, None);
    }
}

/// Model-checked atomic types; mirrors `std::sync::atomic`.
pub mod atomic {
    use super::yield_op;

    pub use std::sync::atomic::Ordering;

    /// A `std::sync::atomic::AtomicUsize` whose every access is an
    /// interleaving point under [`crate::check`].
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        /// An atomic holding `value`.
        pub const fn new(value: usize) -> Self {
            AtomicUsize {
                inner: std::sync::atomic::AtomicUsize::new(value),
            }
        }

        /// Loads the value.
        pub fn load(&self, order: Ordering) -> usize {
            yield_op("AtomicUsize::load");
            self.inner.load(order)
        }

        /// Stores `value`.
        pub fn store(&self, value: usize, order: Ordering) {
            yield_op("AtomicUsize::store");
            self.inner.store(value, order);
        }

        /// Adds `value`, returning the previous value.
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            yield_op("AtomicUsize::fetch_add");
            self.inner.fetch_add(value, order)
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> usize {
            self.inner.into_inner()
        }
    }

    /// A `std::sync::atomic::AtomicBool` whose every access is an
    /// interleaving point under [`crate::check`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// An atomic holding `value`.
        pub const fn new(value: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value.
        pub fn load(&self, order: Ordering) -> bool {
            yield_op("AtomicBool::load");
            self.inner.load(order)
        }

        /// Stores `value`.
        pub fn store(&self, value: bool, order: Ordering) {
            yield_op("AtomicBool::store");
            self.inner.store(value, order);
        }

        /// Stores `value`, returning the previous value.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            yield_op("AtomicBool::swap");
            self.inner.swap(value, order)
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }
}

/// Wakes blocked model threads when the guard releases the lock. Field
/// order in [`MutexGuard`] makes this run strictly after the inner
/// `std` guard has dropped.
#[derive(Debug)]
struct Unlock {
    ctx: Option<(std::sync::Arc<crate::scheduler::Execution>, usize)>,
}

impl Drop for Unlock {
    fn drop(&mut self) {
        if let Some((exec, me)) = &self.ctx {
            exec.resource_released(*me, "Mutex::unlock");
        }
    }
}

/// A `std::sync::MutexGuard` equivalent for the model [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // Declaration order is load-bearing: `inner` must drop (releasing
    // the std lock) before `unlock` wakes the scheduler's waiters.
    inner: std::sync::MutexGuard<'a, T>,
    _unlock: Unlock,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A `std::sync::Mutex` whose acquisition is an interleaving point and
/// whose contention is visible to the deadlock detector.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, parking the model thread while it is held
    /// elsewhere. Mirrors `std`: a poisoned lock still hands back a
    /// guard inside the error.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let Some((exec, me)) = scheduler::current() else {
            return match self.data.lock() {
                Ok(inner) => Ok(MutexGuard {
                    inner,
                    _unlock: Unlock { ctx: None },
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: poisoned.into_inner(),
                    _unlock: Unlock { ctx: None },
                })),
            };
        };
        loop {
            exec.switch(me, "Mutex::lock", None);
            match self.data.try_lock() {
                Ok(inner) => {
                    return Ok(MutexGuard {
                        inner,
                        _unlock: Unlock {
                            ctx: Some((exec, me)),
                        },
                    })
                }
                Err(TryLockError::Poisoned(poisoned)) => {
                    return Err(PoisonError::new(MutexGuard {
                        inner: poisoned.into_inner(),
                        _unlock: Unlock {
                            ctx: Some((exec, me)),
                        },
                    }))
                }
                Err(TryLockError::WouldBlock) => {
                    exec.switch(me, "Mutex::lock (contended)", Some(Status::Blocked));
                }
            }
        }
    }

    /// Consumes the mutex, returning the value (or the poison error
    /// wrapping it, as in `std`).
    pub fn into_inner(self) -> LockResult<T> {
        self.data.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::Mutex;

    #[test]
    fn primitives_degrade_to_std_outside_a_check() {
        let n = AtomicUsize::new(3);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 3);
        assert_eq!(n.load(Ordering::SeqCst), 5);
        n.store(9, Ordering::SeqCst);
        assert_eq!(n.into_inner(), 9);

        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
        b.store(false, Ordering::SeqCst);
        assert!(!b.into_inner());

        let m = Mutex::new(vec![1]);
        m.lock().expect("unpoisoned").push(2);
        assert_eq!(m.into_inner().expect("unpoisoned"), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_still_hands_back_the_data() {
        let m = std::sync::Arc::new(Mutex::new(7usize));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        let err = m.lock().expect_err("poisoned");
        assert_eq!(**err.get_ref(), 7);
    }
}
