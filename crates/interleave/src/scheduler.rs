//! The cooperative scheduler behind one model-checked execution.
//!
//! Model threads are real OS threads, but at most one of them runs at a
//! time: every synchronization operation (an atomic access, a mutex
//! acquisition, a spawn, a join) first calls [`Execution::switch`], which
//! records the step in the trace, consults the exploration prefix to pick
//! the next thread, and parks the caller until it is scheduled again.
//! Serializing execution this way makes the interleaving — not the OS —
//! the only source of concurrency, so the DFS driver in the crate root
//! can enumerate interleavings exhaustively and replay any of them.
//!
//! Blocking is modeled explicitly: a thread that cannot make progress
//! (mutex held, join target still running) moves to [`Status::Blocked`]
//! and is excluded from scheduling until a release or exit wakes it. If
//! every live thread is blocked the execution is a deadlock; the
//! scheduler records the failure and aborts the run by unwinding every
//! model thread with a sentinel panic that [`crate::check_result`]
//! recognizes and converts into a [`crate::Failure`].

use crate::Step;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// The panic payload used to unwind model threads out of a cancelled
/// execution (deadlock or replay divergence). Never user-visible:
/// `check_result` reports the recorded failure instead.
pub(crate) const ABORT: &str = "interleave: execution aborted";

/// Unwinds the calling model thread out of a cancelled execution.
#[allow(clippy::panic)] // the one sanctioned unwind channel of the checker
fn bail() -> ! {
    // Budgeted in xtask.toml: the sentinel is caught by `check_result`
    // (or by std's scope machinery) and never escapes `check`.
    panic!("{ABORT}")
}

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting on a mutex release or a thread exit; woken (made
    /// runnable) by the next release/exit, after which it re-checks its
    /// condition and either proceeds or blocks again.
    Blocked,
    /// Returned or panicked; never scheduled again.
    Finished,
}

/// Mutable scheduler state, behind the execution's big lock.
#[derive(Debug)]
struct ExecState {
    /// Per-thread status, indexed by model thread id.
    status: Vec<Status>,
    /// The thread currently allowed to run.
    current: usize,
    /// Choice indices to replay before exploring fresh ground.
    prefix: Vec<usize>,
    /// `(chosen index, candidate count)` at every choice point so far.
    choices: Vec<(usize, usize)>,
    /// Context switches taken while the switching thread was runnable.
    preemptions: usize,
    /// Maximum preemptions allowed in this execution.
    bound: usize,
    /// Set on deadlock/divergence: every scheduler entry point unwinds.
    abort: bool,
    /// The failure recorded for this execution, if any.
    failure: Option<String>,
    /// Every scheduling step taken, for failure reports.
    trace: Vec<Step>,
}

/// One model-checked execution: the big lock plus the wakeup channel.
#[derive(Debug)]
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    /// The execution and model thread id of the calling OS thread, when
    /// it is participating in a model-checked run.
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling OS thread's `(execution, thread id)`, if it is a model
/// thread of an active `check`.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Marks the calling OS thread as model thread `tid` of `exec`.
pub(crate) fn install(exec: Arc<Execution>, tid: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// Detaches the calling OS thread from its execution.
pub(crate) fn clear() {
    CONTEXT.with(|c| *c.borrow_mut() = None);
}

impl Execution {
    /// A fresh execution replaying `prefix` under `bound` preemptions,
    /// with the driver registered as thread 0.
    pub(crate) fn new(bound: usize, prefix: Vec<usize>) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                status: vec![Status::Runnable],
                current: 0,
                prefix,
                choices: Vec::new(),
                preemptions: 0,
                bound,
                abort: false,
                failure: None,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// The big lock. Poisoning is impossible to exploit here — state is
    /// plain data — so a poisoned lock is simply re-entered.
    fn locked(&self) -> StdMutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a newly spawned model thread and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.locked();
        st.status.push(Status::Runnable);
        st.status.len() - 1
    }

    /// Whether model thread `tid` has exited.
    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.locked().status[tid] == Status::Finished
    }

    /// `(choices, trace, failure)` of this execution so far.
    pub(crate) fn snapshot(&self) -> (Vec<(usize, usize)>, Vec<Step>, Option<String>) {
        let st = self.locked();
        (st.choices.clone(), st.trace.clone(), st.failure.clone())
    }

    /// Wakes every blocked thread so it can re-check its condition.
    fn wake_blocked(st: &mut ExecState) {
        for s in &mut st.status {
            if *s == Status::Blocked {
                *s = Status::Runnable;
            }
        }
    }

    /// Records the failure, cancels the execution and unwinds the caller.
    fn abort_with(&self, mut st: StdMutexGuard<'_, ExecState>, message: String) -> ! {
        st.failure = Some(message);
        st.abort = true;
        self.cv.notify_all();
        drop(st);
        bail()
    }

    /// One scheduling point: records `op` in the trace, applies the
    /// caller's status transition, picks the next thread to run (a DFS
    /// choice point whenever more than one candidate is eligible) and, if
    /// another thread was picked, parks the caller until rescheduled.
    pub(crate) fn switch(&self, me: usize, op: &str, new_status: Option<Status>) {
        let mut st = self.locked();
        if st.abort {
            drop(st);
            bail();
        }
        st.trace.push(Step {
            thread: me,
            op: op.to_string(),
        });
        if let Some(s) = new_status {
            st.status[me] = s;
            if s == Status::Finished {
                // Joiners and scope drains re-check on any exit.
                Self::wake_blocked(&mut st);
            }
        }

        let runnable: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                // Nothing left to schedule; the execution is over.
                return;
            }
            let live = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Blocked)
                .map(|(i, _)| format!("t{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            self.abort_with(
                st,
                format!(
                    "deadlock: every live thread is blocked ({live}), detected at t{me} `{op}`"
                ),
            );
        }

        let me_runnable = st.status[me] == Status::Runnable;
        let candidates = if me_runnable && st.preemptions >= st.bound {
            // Preemption budget spent: a runnable thread keeps running.
            vec![me]
        } else {
            runnable
        };
        let pick = if candidates.len() == 1 {
            0
        } else {
            let k = st.choices.len();
            let chosen = if k < st.prefix.len() {
                let c = st.prefix[k];
                if c >= candidates.len() {
                    self.abort_with(
                        st,
                        format!(
                            "nondeterministic execution: replay choice {k} wants candidate {c} \
                             of {}; the closure under check must be deterministic",
                            candidates.len()
                        ),
                    );
                }
                c
            } else {
                0
            };
            st.choices.push((chosen, candidates.len()));
            chosen
        };
        let next = candidates[pick];
        if next != me && me_runnable {
            st.preemptions += 1;
        }
        st.current = next;
        self.cv.notify_all();
        if next != me && st.status[me] != Status::Finished {
            self.wait_for_turn(st, me);
        }
    }

    /// Parks until this thread is both runnable and scheduled.
    fn wait_for_turn(&self, mut st: StdMutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                bail();
            }
            if st.current == me && st.status[me] == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Parks a freshly spawned thread until its first scheduling.
    pub(crate) fn wait_first(&self, me: usize) {
        let st = self.locked();
        self.wait_for_turn(st, me);
    }

    /// Notes a resource release (mutex unlock) and wakes blocked threads
    /// to re-check. Deliberately not a scheduling point, and deliberately
    /// panic-free: it runs from guard `Drop` impls, possibly mid-unwind.
    pub(crate) fn resource_released(&self, me: usize, op: &str) {
        let mut st = self.locked();
        if st.abort {
            return;
        }
        st.trace.push(Step {
            thread: me,
            op: op.to_string(),
        });
        Self::wake_blocked(&mut st);
        self.cv.notify_all();
    }

    /// Blocks thread `me` until every thread in `tids` has exited. Used
    /// by `thread::scope` so std's real joins never wait on a thread the
    /// model scheduler still owns.
    pub(crate) fn drain(&self, me: usize, tids: &[usize]) {
        loop {
            {
                let st = self.locked();
                if st.abort {
                    drop(st);
                    bail();
                }
                if tids.iter().all(|&t| st.status[t] == Status::Finished) {
                    return;
                }
            }
            self.switch(me, "scope: await children", Some(Status::Blocked));
        }
    }
}

/// Whether a caught panic payload is the scheduler's abort sentinel.
pub(crate) fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<&str>().is_some_and(|s| *s == ABORT)
        || payload.downcast_ref::<String>().is_some_and(|s| s == ABORT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_installs_and_clears() {
        assert!(current().is_none());
        let exec = Arc::new(Execution::new(0, Vec::new()));
        install(exec.clone(), 0);
        let (got, tid) = current().expect("installed");
        assert_eq!(tid, 0);
        assert!(Arc::ptr_eq(&got, &exec));
        clear();
        assert!(current().is_none());
    }

    #[test]
    fn register_assigns_sequential_ids() {
        let exec = Execution::new(0, Vec::new());
        assert_eq!(exec.register_thread(), 1);
        assert_eq!(exec.register_thread(), 2);
        assert!(!exec.is_finished(2));
    }

    #[test]
    fn abort_payload_is_recognized() {
        let payload = std::panic::catch_unwind(|| bail()).expect_err("bails");
        assert!(is_abort(payload.as_ref()));
        assert!(!is_abort(Box::new("other").as_ref()));
    }
}
