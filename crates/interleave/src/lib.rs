//! # interleave (in-tree model checker)
//!
//! A dependency-free, offline implementation of the slice of the
//! [loom](https://docs.rs/loom) idea this workspace needs: drop-in
//! [`sync`]/[`thread`] primitives plus a **preemption-bounded DFS
//! scheduler** ([`check`]) that exhaustively explores the thread
//! interleavings of a closure, up to a bound on context switches taken
//! while the switching thread could still run.
//!
//! The campaign executor routes all of its synchronization through a
//! facade that resolves to these types under `--cfg interleave`, so its
//! bit-identical-to-sequential guarantee is checked under *every*
//! explored schedule instead of whichever one the OS happened to pick.
//!
//! ```
//! use interleave::sync::atomic::{AtomicUsize, Ordering};
//!
//! let report = interleave::check(2, || {
//!     let hits = AtomicUsize::new(0);
//!     interleave::thread::scope(|s| {
//!         let h = s.spawn(|| hits.fetch_add(1, Ordering::SeqCst));
//!         hits.fetch_add(1, Ordering::SeqCst);
//!         h.join().expect("no panic");
//!     });
//!     assert_eq!(hits.into_inner(), 2);
//! });
//! assert!(report.schedules >= 1);
//! ```
//!
//! Differences from loom are deliberate:
//!
//! * **Interleavings, not weak memory.** Execution is serialized and
//!   sequentially consistent; `Relaxed`/`Acquire`/`Release` orderings
//!   are forwarded but add no reordering behaviors. The checker proves
//!   schedule-independence of the protocol, not fence correctness.
//! * **Preemption bounding, not partial-order reduction.** Exploration
//!   is exhaustive up to `bound` preemptions (the CHESS result: almost
//!   all real concurrency bugs manifest within two), and the explored
//!   schedule count is reported so tests can assert real coverage.
//! * **Failures replay deterministically.** A failing run reports the
//!   exact choice sequence and a step trace; [`replay`] re-executes it.
//!
//! Model threads are real OS threads gated by a cooperative scheduler,
//! so the primitives also work *outside* a check (degrading to `std`
//! behavior) — a `--cfg interleave` build still runs its ordinary tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod sync;
pub mod thread;

mod scheduler;

use scheduler::Execution;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Hard cap on schedules explored by one [`check`] call. Exceeding it is
/// reported as a [`Failure`] (never a silent truncation): lower the
/// preemption bound or the thread/operation count.
pub const MAX_SCHEDULES: usize = 100_000;

/// One scheduling step of an execution: which model thread performed
/// which synchronization operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Model thread id (0 is the closure under check).
    pub thread: usize,
    /// The operation that reached the scheduler.
    pub op: String,
}

/// Statistics from a completed, failure-free exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Deepest choice-point count over all schedules.
    pub max_depth: usize,
    /// The preemption bound the exploration ran under.
    pub bound: usize,
}

/// A failing schedule: what went wrong, the exact choices that reach it,
/// and the step trace of the execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The panic message, deadlock report, or budget overrun.
    pub message: String,
    /// Choice indices reproducing the failure (see [`replay`]).
    pub schedule: Vec<usize>,
    /// Every scheduling step of the failing execution, in order.
    pub trace: Vec<Step>,
    /// Schedules executed up to and including the failing one.
    pub schedules: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model check failed on schedule #{}: {}",
            self.schedules, self.message
        )?;
        writeln!(f, "schedule (choice indices): {:?}", self.schedule)?;
        writeln!(f, "step trace of the failing schedule:")?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. t{} {}", i + 1, step.thread, step.op)?;
        }
        Ok(())
    }
}

/// The outcome of one execution, extracted after the run.
struct Outcome {
    choices: Vec<(usize, usize)>,
    trace: Vec<Step>,
    failure: Option<String>,
}

/// Renders a caught panic payload as a message.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs `f` once under the scheduler, replaying `prefix` and taking the
/// first candidate at any fresh choice point.
fn run_once<F: Fn()>(bound: usize, prefix: Vec<usize>, f: &F) -> Outcome {
    let exec = Arc::new(Execution::new(bound, prefix));
    scheduler::install(exec.clone(), 0);
    let result = catch_unwind(AssertUnwindSafe(f));
    scheduler::clear();
    let (choices, trace, recorded) = exec.snapshot();
    let failure = recorded.or_else(|| match result {
        Ok(()) => None,
        Err(payload) if scheduler::is_abort(payload.as_ref()) => {
            // The sentinel without a recorded failure cannot happen, but
            // degrade to an explicit message rather than swallowing it.
            Some("execution aborted".to_string())
        }
        Err(payload) => Some(payload_message(payload.as_ref())),
    });
    Outcome {
        choices,
        trace,
        failure,
    }
}

/// Exhaustively explores the interleavings of `f` up to `bound`
/// preemptions, returning exploration statistics on success or the
/// first failing schedule.
///
/// `f` runs once per schedule and must be deterministic apart from
/// scheduling; replay divergence is itself reported as a failure.
///
/// # Errors
///
/// A [`Failure`] carrying the failing schedule's choice sequence and
/// step trace when any explored schedule panics, deadlocks, diverges
/// under replay, or the [`MAX_SCHEDULES`] budget is exhausted.
pub fn check_result<F: Fn()>(bound: usize, f: F) -> Result<Report, Failure> {
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    let mut max_depth = 0usize;
    loop {
        let outcome = run_once(bound, prefix.clone(), &f);
        schedules += 1;
        max_depth = max_depth.max(outcome.choices.len());
        if let Some(message) = outcome.failure {
            return Err(Failure {
                message,
                schedule: outcome.choices.iter().map(|&(c, _)| c).collect(),
                trace: outcome.trace,
                schedules,
            });
        }
        // Depth-first backtrack: advance the deepest choice point that
        // still has an unexplored candidate, drop everything below it.
        let mut next = outcome.choices;
        loop {
            match next.last().copied() {
                None => {
                    return Ok(Report {
                        schedules,
                        max_depth,
                        bound,
                    })
                }
                Some((chosen, candidates)) if chosen + 1 < candidates => {
                    let last = next.len() - 1;
                    next[last] = (chosen + 1, candidates);
                    break;
                }
                Some(_) => {
                    next.pop();
                }
            }
        }
        if schedules >= MAX_SCHEDULES {
            return Err(Failure {
                message: format!(
                    "exploration budget exhausted after {MAX_SCHEDULES} schedules; \
                     lower the preemption bound or the thread/operation count"
                ),
                schedule: Vec::new(),
                trace: outcome.trace,
                schedules,
            });
        }
        prefix = next.iter().map(|&(c, _)| c).collect();
    }
}

/// [`check_result`], panicking with the rendered failing schedule — the
/// form model-check tests call.
///
/// # Panics
///
/// When any explored schedule fails; the panic message contains the
/// step trace of the failing schedule.
#[allow(clippy::panic)] // reporting a failed model check IS this API
pub fn check<F: Fn()>(bound: usize, f: F) -> Report {
    match check_result(bound, f) {
        Ok(report) => report,
        // Budgeted in xtask.toml: the whole point of `check` is to fail
        // the surrounding test with the schedule trace attached.
        Err(failure) => panic!("interleave: {failure}"),
    }
}

/// Re-executes exactly one schedule — typically [`Failure::schedule`] —
/// and reports whether it still fails. The deterministic-replay half of
/// the checker: a printed schedule is enough to reproduce a bug.
///
/// # Errors
///
/// The reproduced [`Failure`] when the replayed schedule still fails.
pub fn replay<F: Fn()>(bound: usize, schedule: &[usize], f: F) -> Result<(), Failure> {
    let outcome = run_once(bound, schedule.to_vec(), &f);
    match outcome.failure {
        None => Ok(()),
        Some(message) => Err(Failure {
            message,
            schedule: outcome.choices.iter().map(|&(c, _)| c).collect(),
            trace: outcome.trace,
            schedules: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_closure_explores_one_schedule() {
        let report = check(2, || {
            let x = sync::atomic::AtomicUsize::new(0);
            x.store(7, sync::atomic::Ordering::SeqCst);
            assert_eq!(x.load(sync::atomic::Ordering::SeqCst), 7);
        });
        assert_eq!(report.schedules, 1);
        assert_eq!(report.max_depth, 0);
    }

    #[test]
    fn failure_renders_a_step_trace() {
        let failure = Failure {
            message: "boom".into(),
            schedule: vec![1, 0],
            trace: vec![
                Step {
                    thread: 0,
                    op: "spawn".into(),
                },
                Step {
                    thread: 1,
                    op: "AtomicUsize::load".into(),
                },
            ],
            schedules: 4,
        };
        let text = failure.to_string();
        assert!(text.contains("schedule #4"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert!(text.contains("[1, 0]"), "{text}");
        assert!(text.contains("1. t0 spawn"), "{text}");
        assert!(text.contains("2. t1 AtomicUsize::load"), "{text}");
    }

    #[test]
    fn payload_messages_degrade_gracefully() {
        assert_eq!(payload_message(&"boom"), "boom");
        assert_eq!(payload_message(&"boom".to_string()), "boom");
        assert_eq!(payload_message(&42u8), "panicked with a non-string payload");
    }
}
