//! A model-checked `std::thread::scope` equivalent.
//!
//! Mirrors the `std` shape — `scope(|s| { s.spawn(..) })`, handles with
//! `join() -> thread::Result<T>` — so the campaign's sync facade can
//! swap it in with a `use` flip. Under an active [`crate::check`] every
//! spawn registers a model thread with the scheduler, the spawned
//! closure waits for its first scheduling slot, and `join` parks the
//! caller until the target has exited *in the model*, so std's real
//! joins never wait on a thread the scheduler still owns. Outside a
//! check the module is a thin pass-through over `std::thread::scope`.

use crate::scheduler::{self, Execution, Status};
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub use std::thread::available_parallelism;

/// A scope for spawning model-checked scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Option<(Arc<Execution>, usize)>,
    /// Model thread ids spawned through this scope, drained on exit.
    spawned: RefCell<Vec<usize>>,
}

/// An owned permission to join on a scoped model thread.
pub struct JoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> JoinHandle<'_, T> {
    /// Waits for the thread to finish, returning `Err` with the panic
    /// payload if it panicked — exactly like `std`.
    ///
    /// # Errors
    ///
    /// The spawned closure's panic payload, when it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some((exec, target)), Some((_, me))) = (&self.model, scheduler::current()) {
            loop {
                exec.switch(me, "join", None);
                if exec.is_finished(*target) {
                    break;
                }
                exec.switch(me, "join (blocked)", Some(Status::Blocked));
            }
        }
        // The model thread has exited the scheduler; the OS thread is
        // at most a few instructions from returning, so this real join
        // is brief and cannot deadlock.
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread, mirroring `std::thread::Scope::spawn`.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let Some((exec, parent)) = &self.ctx else {
            return JoinHandle {
                inner: self.inner.spawn(f),
                model: None,
            };
        };
        let tid = exec.register_thread();
        self.spawned.borrow_mut().push(tid);
        let child = exec.clone();
        let inner = self.inner.spawn(move || {
            scheduler::install(child.clone(), tid);
            child.wait_first(tid);
            let out = catch_unwind(AssertUnwindSafe(f));
            child.switch(
                tid,
                if out.is_ok() {
                    "exit"
                } else {
                    "exit (panicked)"
                },
                Some(Status::Finished),
            );
            scheduler::clear();
            match out {
                Ok(value) => value,
                // Re-raise so std's scope and our join observe the
                // panic exactly as they would a raw std thread's.
                Err(payload) => resume_unwind(payload),
            }
        });
        // The spawn itself is an interleaving point: the child may run
        // immediately or the parent may continue.
        exec.switch(*parent, "spawn", None);
        JoinHandle {
            inner,
            model: Some((exec.clone(), tid)),
        }
    }
}

/// Creates a scope for spawning scoped threads, mirroring
/// `std::thread::scope`. Under an active [`crate::check`] the scope
/// body's panics are held back until every child thread has run to
/// completion in the model, preserving std's all-children-join-on-exit
/// guarantee without wedging the scheduler.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let ctx = scheduler::current();
    std::thread::scope(|inner| {
        let scope = Scope {
            inner,
            ctx: ctx.clone(),
            spawned: RefCell::new(Vec::new()),
        };
        match &ctx {
            None => f(&scope),
            Some((exec, me)) => {
                let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
                // Whether the body returned or panicked, every model
                // thread spawned here must finish before std's scope
                // exit joins the OS threads for real.
                let tids = scope.spawned.borrow().clone();
                exec.drain(*me, &tids);
                match out {
                    Ok(value) => value,
                    Err(payload) => resume_unwind(payload),
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_passes_through_outside_a_check() {
        let items = [1u64, 2, 3];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = items.iter().map(|&x| s.spawn(move || x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        });
        assert_eq!(total, 60);
    }

    #[test]
    fn join_surfaces_panics_outside_a_check() {
        let caught = std::panic::catch_unwind(|| {
            scope(|s| {
                let h = s.spawn(|| panic!("boom"));
                h.join()
            })
        })
        .expect("join returns the Err instead of unwinding");
        assert!(caught.is_err());
    }
}
